"""Pytest bootstrap: make the src/ layout importable without installation.

``pip install -e .`` (or ``python setup.py develop``) is the supported way to
install the package, but adding ``src/`` to ``sys.path`` here keeps the test
and benchmark suites runnable in environments where an editable install is
not possible (e.g. offline machines without wheel support).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
