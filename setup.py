"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks wheel support (legacy editable
installs go through ``setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of DeepRecSys: optimizing end-to-end at-scale neural "
        "recommendation inference (ISCA 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
