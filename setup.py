"""Setuptools entry point.

Project metadata canonically lives in ``pyproject.toml``; it is duplicated
here (values must match) because the audience of this shim is offline
machines with pre-61 setuptools, whose legacy ``setup.py develop`` editable
install cannot read the ``[project]`` table at all.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of DeepRecSys: optimizing end-to-end at-scale neural "
        "recommendation inference (ISCA 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
)
