"""Tests for ``tools/reprolint``: every rule, suppressions, baseline, CLI.

Each rule gets a bad fixture (must trigger) and a good fixture (must stay
clean) linted through :func:`tools.reprolint.lint_text` under a virtual
repo-relative path, so scoping (``include``/``exclude`` prefixes) is
exercised too.  The suite ends with the dogfood checks: the real tree lints
clean, and the docs-citation manifest matches the live test tree.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import Baseline, Finding, default_rules, lint_text
from tools.reprolint.__main__ import repo_root, run
from tools.reprolint.docs_rule import check_doc_citations
from tools.reprolint.docs_rule import test_manifest as build_test_manifest
from tools.reprolint.engine import META_RULE, parse_suppressions

REPO_ROOT = repo_root()


def rules_fired(source, relpath):
    """The sorted rule ids reprolint raises for ``source`` at ``relpath``."""
    return sorted({f.rule for f in lint_text(source, relpath, default_rules())})


class TestRL001BuiltinHash:
    def test_hash_call_flagged_everywhere(self):
        assert rules_fired("key = hash((name, 1))\n", "src/repro/x.py") == ["RL001"]
        assert rules_fired("key = hash(value)\n", "tests/test_x.py") == ["RL001"]

    def test_crc32_digest_is_clean(self):
        src = "import zlib\nkey = zlib.crc32(name.encode('utf-8'))\n"
        assert rules_fired(src, "src/repro/x.py") == []

    def test_dunder_hash_definition_is_clean(self):
        src = "class C:\n    def __hash__(self):\n        return 7\n"
        assert rules_fired(src, "src/repro/x.py") == []


class TestRL002UnseededRng:
    def test_argless_default_rng_flagged(self):
        src = "import numpy as np\ngen = np.random.default_rng()\n"
        assert rules_fired(src, "src/repro/serving/x.py") == ["RL002"]

    def test_seeded_default_rng_clean(self):
        for call in ("np.random.default_rng(7)", "np.random.default_rng(seed=7)"):
            src = f"import numpy as np\ngen = {call}\n"
            assert rules_fired(src, "src/repro/serving/x.py") == []

    def test_global_samplers_flagged(self):
        np_src = "import numpy as np\nx = np.random.rand(3)\n"
        py_src = "import random\nx = random.random()\n"
        assert rules_fired(np_src, "src/repro/x.py") == ["RL002"]
        assert rules_fired(py_src, "src/repro/x.py") == ["RL002"]

    def test_argless_seed_flagged_but_explicit_seed_allowed(self):
        flagged = "import random\nrandom.seed()\n"
        pinned = "import random\nrandom.seed(20200530)\n"
        assert rules_fired(flagged, "benchmarks/conftest.py") == ["RL002"]
        assert rules_fired(pinned, "benchmarks/conftest.py") == []

    def test_local_variable_named_random_is_clean(self):
        src = "random = make_thing()\nx = random.random()\n"
        assert rules_fired(src, "src/repro/x.py") == []

    def test_rng_module_itself_is_exempt(self):
        src = "import numpy as np\ngen = np.random.default_rng()\n"
        assert rules_fired(src, "src/repro/utils/rng.py") == []


class TestRL003WallClock:
    def test_wall_clock_in_simulator_flagged(self):
        src = "import time\nstart = time.time()\n"
        assert rules_fired(src, "src/repro/serving/simulator.py") == ["RL003"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nstamp = datetime.now()\n"
        assert rules_fired(src, "src/repro/faults/plan.py") == ["RL003"]

    def test_sleep_is_not_a_clock_read(self):
        src = "import time\ntime.sleep(0.1)\n"
        assert rules_fired(src, "src/repro/serving/simulator.py") == []

    def test_ingest_and_checkpoint_are_out_of_scope(self):
        src = "import time\nstart = time.time()\n"
        assert rules_fired(src, "src/repro/service/ingest.py") == []
        assert rules_fired(src, "src/repro/service/checkpoint.py") == []


class TestRL004PickleSafeSubmit:
    def test_lambda_to_submit_flagged(self):
        src = "future = pool.submit(lambda item: item + 1, 3)\n"
        assert rules_fired(src, "src/repro/runtime/x.py") == ["RL004"]

    def test_lambda_to_map_flagged(self):
        src = "results = pool.map(lambda item: item * 2, items)\n"
        assert rules_fired(src, "tests/test_x.py") == ["RL004"]

    def test_locally_defined_function_flagged(self):
        src = (
            "def driver(pool):\n"
            "    def task(item):\n"
            "        return item + 1\n"
            "    return pool.submit(task, 3)\n"
        )
        assert rules_fired(src, "src/repro/x.py") == ["RL004"]

    def test_module_level_function_clean(self):
        src = (
            "def task(item):\n"
            "    return item + 1\n"
            "def driver(pool):\n"
            "    return pool.submit(task, 3)\n"
        )
        assert rules_fired(src, "src/repro/x.py") == []


class TestRL005UnorderedIteration:
    def test_dict_values_loop_flagged_in_serving(self):
        src = "for state in states.values():\n    total += state\n"
        assert rules_fired(src, "src/repro/serving/x.py") == ["RL005"]

    def test_set_literal_comprehension_flagged(self):
        src = "out = [x for x in {3, 1, 2}]\n"
        assert rules_fired(src, "src/repro/experiments/x.py") == ["RL005"]

    def test_sorted_wrapper_is_clean(self):
        src = "for state in sorted(states.values()):\n    total += state\n"
        assert rules_fired(src, "src/repro/serving/x.py") == []

    def test_rule_scoped_to_result_layers(self):
        src = "for state in states.values():\n    total += state\n"
        assert rules_fired(src, "src/repro/runtime/pool.py") == []


class TestRL006RegistryContract:
    GOOD = (
        "@register_experiment('fig-x')\n"
        "def fig_x(jobs=1, capacity_cache_dir=None, fidelity='full'):\n"
        "    return None\n"
    )

    def test_good_driver_clean(self):
        assert rules_fired(self.GOOD, "src/repro/experiments/x.py") == []

    def test_kwargs_catchall_flagged(self):
        src = "@register_experiment('fig-x')\ndef fig_x(**kwargs):\n    return None\n"
        assert rules_fired(src, "src/repro/experiments/x.py") == ["RL006"]

    def test_parameter_without_default_flagged(self):
        src = "@register_experiment('fig-x')\ndef fig_x(fidelity):\n    return None\n"
        assert rules_fired(src, "src/repro/experiments/x.py") == ["RL006"]

    def test_jobs_without_cache_dir_flagged(self):
        src = "@register_experiment('fig-x')\ndef fig_x(jobs=1):\n    return None\n"
        assert rules_fired(src, "src/repro/experiments/x.py") == ["RL006"]

    def test_unregistered_helper_ignored(self):
        src = "def helper(jobs):\n    return jobs\n"
        assert rules_fired(src, "src/repro/experiments/x.py") == []


class TestRL007FloatEquality:
    def test_float_literal_equality_flagged_in_src(self):
        assert rules_fired("ok = x == 1.0\n", "src/repro/x.py") == ["RL007"]
        assert rules_fired("ok = x != -2.5\n", "src/repro/x.py") == ["RL007"]

    def test_int_equality_clean(self):
        assert rules_fired("ok = x == 1\n", "src/repro/x.py") == []

    def test_tests_exempt_for_bit_identity_assertions(self):
        assert rules_fired("assert qps == 12.5\n", "tests/test_x.py") == []


class TestRL008SwallowedException:
    def test_silent_broad_handler_flagged(self):
        src = "try:\n    work()\nexcept Exception:\n    pass\n"
        assert rules_fired(src, "src/repro/runtime/x.py") == ["RL008"]

    def test_bare_except_flagged(self):
        src = "try:\n    work()\nexcept:\n    pass\n"
        assert rules_fired(src, "src/repro/service/x.py") == ["RL008"]

    def test_reraise_clean(self):
        src = "try:\n    work()\nexcept Exception:\n    raise\n"
        assert rules_fired(src, "src/repro/runtime/x.py") == []

    def test_bound_and_routed_error_clean(self):
        src = (
            "try:\n"
            "    work()\n"
            "except BaseException as error:\n"
            "    future._reject(error)\n"
        )
        assert rules_fired(src, "src/repro/runtime/pool.py") == []

    def test_scoped_to_runtime_and_service(self):
        src = "try:\n    work()\nexcept Exception:\n    pass\n"
        assert rules_fired(src, "src/repro/serving/x.py") == []


class TestRL010SocketTimeout:
    def test_bare_accept_flagged(self):
        src = (
            "def serve(sock):\n"
            "    conn, addr = sock.accept()\n"
            "    return conn\n"
        )
        assert rules_fired(src, "src/repro/runtime/x.py") == ["RL010"]

    def test_accept_with_settimeout_clean(self):
        src = (
            "def serve(sock):\n"
            "    sock.settimeout(5.0)\n"
            "    conn, addr = sock.accept()\n"
            "    return conn\n"
        )
        assert rules_fired(src, "src/repro/runtime/x.py") == []

    def test_bare_recv_flagged(self):
        src = "def pull(sock):\n    return sock.recv(4096)\n"
        assert rules_fired(src, "src/repro/service/x.py") == ["RL010"]

    def test_settimeout_none_does_not_count(self):
        src = (
            "def pull(sock):\n"
            "    sock.settimeout(None)\n"
            "    return sock.recv(4096)\n"
        )
        assert rules_fired(src, "src/repro/runtime/x.py") == ["RL010"]

    def test_module_level_default_timeout_covers_functions(self):
        src = (
            "import socket\n"
            "socket.setdefaulttimeout(30.0)\n"
            "def pull(sock):\n"
            "    return sock.recv(4096)\n"
        )
        assert rules_fired(src, "src/repro/runtime/x.py") == []

    def test_outer_settimeout_does_not_cover_nested_function(self):
        src = (
            "def outer(sock):\n"
            "    sock.settimeout(5.0)\n"
            "    def inner(other):\n"
            "        return other.recv(1)\n"
            "    return inner\n"
        )
        assert rules_fired(src, "src/repro/runtime/x.py") == ["RL010"]

    def test_create_connection_without_timeout_flagged(self):
        src = (
            "import socket\n"
            "def dial(addr):\n"
            "    return socket.create_connection(addr)\n"
        )
        assert rules_fired(src, "src/repro/runtime/x.py") == ["RL010"]

    def test_create_connection_with_timeout_clean(self):
        src = (
            "import socket\n"
            "def dial(addr):\n"
            "    return socket.create_connection(addr, timeout=3.0)\n"
        )
        assert rules_fired(src, "src/repro/runtime/x.py") == []

    def test_scoped_to_runtime_and_service(self):
        src = "def pull(sock):\n    return sock.recv(4096)\n"
        assert rules_fired(src, "src/repro/serving/x.py") == []
        assert rules_fired(src, "tests/test_x.py") == []


class TestSuppressions:
    def test_justified_suppression_silences_finding(self):
        src = "key = hash((1, 2))  # reprolint: disable=RL001 -- ints only\n"
        assert rules_fired(src, "src/repro/x.py") == []

    def test_missing_justification_is_its_own_finding(self):
        src = "key = hash((1, 2))  # reprolint: disable=RL001\n"
        fired = rules_fired(src, "src/repro/x.py")
        assert fired == [META_RULE, "RL001"]  # original finding NOT silenced

    def test_unused_suppression_is_flagged(self):
        src = "x = 1  # reprolint: disable=RL001 -- nothing here\n"
        assert rules_fired(src, "src/repro/x.py") == [META_RULE]

    def test_disable_file_covers_all_lines(self):
        src = (
            "# reprolint: disable-file=RL001 -- fixture module, ints only\n"
            "a = hash((1,))\n"
            "b = hash((2,))\n"
        )
        assert rules_fired(src, "src/repro/x.py") == []

    def test_suppression_in_docstring_is_not_a_directive(self):
        src = '"""Docs: use # reprolint: disable=RL001 -- why."""\nx = 1\n'
        assert rules_fired(src, "src/repro/x.py") == []

    def test_multi_rule_suppression_parses(self):
        (sup,) = parse_suppressions(
            "x = 1  # reprolint: disable=RL001,RL005 -- both justified\n"
        )
        assert sup.rules == ("RL001", "RL005") and sup.why == "both justified"


class TestBaseline:
    def _finding(self, line, rule="RL001"):
        return Finding(path="src/repro/old.py", line=line, col=1, rule=rule, message="m")

    def test_round_trip_absorbs_exactly_the_grandfathered_count(self, tmp_path):
        findings = [self._finding(1), self._finding(5)]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        assert loaded.filter(findings) == []
        # A third finding of the same kind exceeds the grandfathered count.
        extra = findings + [self._finding(9)]
        assert loaded.filter(extra) == [self._finding(9)]

    def test_meta_findings_never_grandfathered(self, tmp_path):
        meta = self._finding(3, rule=META_RULE)
        baseline = Baseline.from_findings([meta])
        assert baseline.entries == {}
        assert baseline.filter([meta]) == [meta]

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}


class TestSyntaxErrors:
    def test_unparseable_file_is_a_meta_finding(self):
        findings = lint_text("def broken(:\n", "src/repro/x.py", default_rules())
        assert [f.rule for f in findings] == [META_RULE]
        assert "does not parse" in findings[0].message


class TestDocsRuleRL009:
    def test_manifest_matches_live_test_tree(self):
        manifest = build_test_manifest(REPO_ROOT)
        nodes = manifest["tests/test_reprolint.py"]
        assert "TestDocsRuleRL009::test_manifest_matches_live_test_tree" in nodes
        assert "TestDocsRuleRL009" in nodes  # class-level citations are valid

    def test_bad_citation_detected(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_real.py").write_text(
            "def test_exists():\n    pass\n"
        )
        (tmp_path / "docs" / "guide.md").write_text(
            "Good: `tests/test_real.py::test_exists`.\n"
            "Rot: `tests/test_real.py::test_renamed`.\n"
            "Gone: `tests/test_missing.py::test_exists`.\n"
        )
        findings = check_doc_citations(tmp_path)
        assert [(f.line, f.rule) for f in findings] == [(2, "RL009"), (3, "RL009")]

    def test_parametrised_citation_suffix_ignored(self, tmp_path):
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_p.py").write_text("def test_case():\n    pass\n")
        (tmp_path / "README.md").write_text("See `tests/test_p.py::test_case[3-x]`.\n")
        assert check_doc_citations(tmp_path) == []

    def test_real_docs_citations_all_resolve(self):
        assert check_doc_citations(REPO_ROOT) == []


class TestSelfRun:
    def test_whole_tree_lints_clean(self):
        """The acceptance gate: the repository has zero unsuppressed findings."""
        argv = [
            str(REPO_ROOT / part)
            for part in ("src", "tests", "benchmarks", "examples", "tools")
            if (REPO_ROOT / part).exists()
        ]
        assert run(argv) == 0

    def test_findings_fail_the_run(self, tmp_path, capsys):
        bad = tmp_path / "src"
        bad.mkdir()
        (bad / "mod.py").write_text("key = hash((name,))\n")
        assert run([str(bad), "--no-docs-rule"]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "mod.py:1:7" in out

    def test_json_format_reports_summary(self, tmp_path, capsys):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "mod.py").write_text("import random\nx = random.random()\n")
        assert run([str(bad), "--format=json", "--no-docs-rule"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1
        assert payload["findings"][0]["rule"] == "RL002"

    def test_select_and_disable_scope_the_rule_set(self, tmp_path, capsys):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "mod.py").write_text("key = hash((name,))\n")
        assert run([str(bad), "--select", "RL002", "--no-docs-rule"]) == 0
        capsys.readouterr()
        assert run([str(bad), "--disable", "RL001", "--no-docs-rule"]) == 0

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "mod.py").write_text("key = hash((name,))\n")
        baseline = tmp_path / "baseline.json"
        assert run(
            [str(bad), "--baseline", str(baseline), "--write-baseline", "--no-docs-rule"]
        ) == 0
        capsys.readouterr()
        # Grandfathered: the same tree now passes against its baseline...
        assert run([str(bad), "--baseline", str(baseline), "--no-docs-rule"]) == 0
        capsys.readouterr()
        # ...but a second violation of the same kind exceeds the count.
        (bad / "mod.py").write_text("a = hash((name,))\nb = hash((name,))\n")
        assert run([str(bad), "--baseline", str(baseline), "--no-docs-rule"]) == 1

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert run([str(tmp_path / "nope")]) == 2


class TestRegistryCrossCheck:
    def test_linter_contract_matches_runner_introspection(self):
        """RL006's static contract agrees with the registry's live one.

        ``run_experiment`` routes ``jobs``/``capacity_cache_dir`` into any
        driver whose signature accepts them (``experiment_parameters``); the
        lint rule enforces the same pairing statically.  If this test fails,
        a driver changed shape without the linter noticing — tighten RL006.
        """
        from repro.experiments.registry import (
            available_experiments,
            experiment_parameters,
        )

        for experiment_id in available_experiments():
            params = set(experiment_parameters(experiment_id))
            assert ("jobs" in params) == ("capacity_cache_dir" in params), experiment_id


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
class TestMypyGate:
    def test_typed_core_passes_mypy(self):
        """The CI mypy command succeeds on the determinism/concurrency core."""
        result = subprocess.run(
            [
                sys.executable, "-m", "mypy",
                "src/repro/utils", "src/repro/faults", "src/repro/runtime",
                "src/repro/service/windows.py", "src/repro/service/shadow.py",
                "src/repro/service/checkpoint.py", "tools/reprolint",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
