"""Tests for the service's event-time window manager."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries.query import Query
from repro.service.windows import Window, WindowManager, WindowRollup

SETTINGS = settings(max_examples=60, deadline=None)


def make_queries(times):
    return [Query(i, t, 16) for i, t in enumerate(times)]


class TestWindowAssignment:
    def test_window_index_and_bounds(self):
        manager = WindowManager(window_s=10.0)
        assert manager.window_index(0.0) == 0
        assert manager.window_index(9.999) == 0
        assert manager.window_index(10.0) == 1
        assert manager.window_bounds(2) == (20.0, 30.0)

    def test_start_offset_shifts_windows(self):
        manager = WindowManager(window_s=5.0, start_s=100.0)
        assert manager.window_index(101.0) == 0
        assert manager.window_bounds(1) == (105.0, 110.0)
        with pytest.raises(ValueError):
            manager.window_index(99.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WindowManager(window_s=0.0)
        with pytest.raises(ValueError):
            WindowManager(window_s=1.0, allowed_lateness_s=-0.1)

    def test_in_order_stream_closes_windows_on_boundary_crossing(self):
        manager = WindowManager(window_s=10.0)
        assert manager.add(Query(0, 1.0, 16)) == []
        assert manager.add(Query(1, 9.0, 16)) == []
        closed = manager.add(Query(2, 10.0, 16))
        assert [w.index for w in closed] == [0]
        assert [q.query_id for q in closed[0].queries] == [0, 1]
        assert closed[0].mean_rate_qps == pytest.approx(0.2)

    def test_flush_closes_remaining_windows_in_order(self):
        manager = WindowManager(window_s=5.0, allowed_lateness_s=100.0)
        # The generous watermark keeps every window open until flush.
        assert manager.extend(make_queries([1.0, 7.0, 13.0])) == []
        flushed = manager.flush()
        assert [w.index for w in flushed] == [0, 1, 2]
        assert manager.open_windows == []

    def test_gap_windows_never_materialise(self):
        manager = WindowManager(window_s=1.0)
        closed = manager.extend(make_queries([0.5, 10.5]))
        assert [w.index for w in closed] == [0]  # windows 1..9 had no events


class TestLatenessPolicy:
    def test_strict_watermark_drops_late_event(self):
        manager = WindowManager(window_s=10.0)
        manager.extend(make_queries([1.0, 12.0]))  # window 0 closed
        assert manager.add(Query(9, 2.0, 16)) == []
        assert manager.late_events == 1
        assert manager.accepted_events == 2

    def test_allowed_lateness_holds_window_open(self):
        manager = WindowManager(window_s=10.0, allowed_lateness_s=5.0)
        # Event at 12 leaves the watermark at 7: window 0 stays open and
        # the out-of-order event at 2.0 still lands in its true window.
        assert manager.extend(make_queries([1.0, 12.0])) == []
        assert manager.add(Query(2, 2.0, 16)) == []
        closed = manager.add(Query(3, 16.0, 16))  # watermark 11 passes 10
        assert [w.index for w in closed] == [0]
        assert sorted(q.query_id for q in closed[0].queries) == [0, 2]
        assert manager.late_events == 0

    def test_event_into_skipped_window_behind_watermark_still_accepted(self):
        manager = WindowManager(window_s=10.0)
        # First event opens window 2 only; windows 0/1 never existed, so an
        # event for window 0 is not late — it closes immediately instead.
        assert manager.add(Query(0, 25.0, 16)) == []
        closed = manager.add(Query(1, 5.0, 16))
        assert [w.index for w in closed] == [0]
        # ...but once something at or below that index has been emitted,
        # the region is sealed.
        assert manager.add(Query(2, 6.0, 16)) == []
        assert manager.late_events == 1


class TestWindowingProperties:
    @SETTINGS
    @given(
        times=st.lists(
            st.floats(0.0, 500.0, allow_nan=False, width=32), min_size=1, max_size=80
        ),
        window_s=st.floats(0.5, 60.0, allow_nan=False),
    )
    def test_every_event_lands_in_its_event_time_window(self, times, window_s):
        manager = WindowManager(window_s=window_s, allowed_lateness_s=1e9)
        queries = make_queries(sorted(times))
        closed = manager.extend(queries) + manager.flush()
        slack = 4 * math.ulp(max(max(times), window_s) + window_s)
        for window in closed:
            assert (window.start_s, window.end_s) == manager.window_bounds(
                window.index
            )
            for query in window.queries:
                assert window.index == manager.window_index(query.arrival_time)
                # Bounds hold up to float rounding in index * window_s.
                assert window.start_s - slack <= query.arrival_time
                assert query.arrival_time < window.end_s + slack

    @SETTINGS
    @given(
        times=st.lists(
            st.floats(0.0, 300.0, allow_nan=False, width=32), min_size=1, max_size=80
        ),
        window_s=st.floats(0.5, 30.0, allow_nan=False),
        lateness_s=st.floats(0.0, 400.0, allow_nan=False),
    )
    def test_conservation_and_ordering(self, times, window_s, lateness_s):
        """No event is lost or duplicated, and windows close in index order."""
        manager = WindowManager(window_s=window_s, allowed_lateness_s=lateness_s)
        queries = make_queries(times)
        closed = manager.extend(queries) + manager.flush()
        emitted = [q.query_id for w in closed for q in w.queries]
        assert len(emitted) == len(set(emitted))  # never duplicated
        assert len(emitted) + manager.late_events == len(queries)
        assert manager.accepted_events == len(emitted)
        indices = [w.index for w in closed]
        assert indices == sorted(indices)
        assert len(indices) == len(set(indices))

    @SETTINGS
    @given(
        times=st.lists(
            st.floats(0.0, 300.0, allow_nan=False, width=32), min_size=1, max_size=80
        ),
        window_s=st.floats(0.5, 30.0, allow_nan=False),
    )
    def test_in_order_streams_never_drop_events(self, times, window_s):
        manager = WindowManager(window_s=window_s)  # strictest watermark
        closed = manager.extend(make_queries(sorted(times))) + manager.flush()
        assert sum(len(w.queries) for w in closed) == len(times)
        assert manager.late_events == 0

    @SETTINGS
    @given(
        times=st.lists(
            st.floats(0.0, 100.0, allow_nan=False, width=32), min_size=2, max_size=60
        ),
        window_s=st.floats(0.5, 20.0, allow_nan=False),
    )
    def test_lateness_covering_disorder_drops_nothing(self, times, window_s):
        """With the watermark lagging by the stream's true disorder, the
        out-of-order stream emits exactly the in-order stream's windows."""
        disorder = max(
            (max(times[: i + 1]) - t for i, t in enumerate(times)), default=0.0
        )
        manager = WindowManager(window_s=window_s, allowed_lateness_s=disorder)
        closed = manager.extend(make_queries(times)) + manager.flush()
        assert manager.late_events == 0
        ordered = WindowManager(window_s=window_s)
        ordered_closed = (
            ordered.extend(make_queries(sorted(times))) + ordered.flush()
        )
        got = {w.index: sorted(q.arrival_time for q in w.queries) for w in closed}
        want = {
            w.index: sorted(q.arrival_time for q in w.queries)
            for w in ordered_closed
        }
        assert got == want


class TestWindowDataclass:
    def test_window_is_immutable(self):
        window = Window(index=0, start_s=0.0, end_s=5.0, queries=(Query(0, 1.0, 8),))
        with pytest.raises(AttributeError):
            window.index = 1
        assert window.duration_s == 5.0


class TestWindowRollup:
    def test_exact_mode_matches_flat_buffer_bit_for_bit(self):
        import numpy as np

        from repro.utils.stats import PercentileTracker

        rng = np.random.default_rng(1)
        folds = [rng.random(200) * 10.0 for _ in range(5)]
        rollup = WindowRollup()
        flat = PercentileTracker()
        for samples in folds:
            rollup.fold(samples)
            flat.extend(samples)
        assert rollup.windows_folded == 5
        assert rollup.count == flat.count
        for pct in (50.0, 95.0, 99.0):
            assert rollup.percentile(pct) == flat.percentile(pct)

    def test_sketch_mode_footprint_is_constant(self):
        import numpy as np

        from repro.utils.sketch import DEFAULT_K

        rng = np.random.default_rng(2)
        exact = WindowRollup()
        sketch = WindowRollup(latency_stats="sketch")
        for _ in range(20):
            samples = rng.random(10_000)
            exact.fold(samples)
            sketch.fold(samples)
        assert exact.footprint() == 200_000  # retains every sample
        assert sketch.footprint() <= 3 * DEFAULT_K + 8 * 64
        assert sketch.count == exact.count == 200_000

    def test_sketch_mode_percentiles_track_exact(self):
        import numpy as np

        rng = np.random.default_rng(3)
        exact = WindowRollup()
        sketch = WindowRollup(latency_stats="sketch")
        for _ in range(10):
            samples = rng.pareto(1.5, 5_000) + 1.0
            exact.fold(samples)
            sketch.fold(samples)
        # Sketch p95 sits between the exact p94 and p96 (the documented
        # rank-error contract).
        assert exact.percentile(94.0) <= sketch.percentile(95.0) <= exact.percentile(96.0)

    def test_mode_property_and_validation(self):
        assert WindowRollup().latency_stats == "exact"
        assert WindowRollup(latency_stats="sketch").latency_stats == "sketch"
        with pytest.raises(ValueError, match="mode"):
            WindowRollup(latency_stats="bogus")

    def test_empty_fold_counts_window_but_adds_no_samples(self):
        rollup = WindowRollup()
        rollup.fold([])
        rollup.fold([1.0, 2.0, 3.0])
        assert rollup.windows_folded == 2
        assert rollup.count == 3
