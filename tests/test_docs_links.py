"""Tier-1 docs integrity: every intra-repo markdown link must resolve.

Runs the same checker CI's docs job runs (``tools/check_docs.py``) over the
repo's actual docs, plus unit tests for the checker's slug/anchor rules so
a checker bug cannot silently wave broken docs through.
"""

import importlib.util
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRepoDocs:
    def test_docs_exist_and_are_linked_from_readme(self):
        assert (REPO_ROOT / "docs" / "architecture.md").is_file()
        assert (REPO_ROOT / "docs" / "capacity-search.md").is_file()
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/capacity-search.md" in readme

    def test_all_repo_doc_links_resolve(self):
        files = check_docs.doc_files(REPO_ROOT)
        assert len(files) >= 3  # README + the two docs pages
        seen, problems = check_docs.check_paths(files)
        assert problems == []
        assert seen > 0

    def test_docs_cite_only_existing_test_names(self):
        """Every ``tests/...py::test_name`` citation in the docs is real."""
        cited = set()
        for doc in (REPO_ROOT / "docs").glob("*.md"):
            for match in re.finditer(
                r"(tests/\w+\.py)::(?:\w+::)?(test_\w+)", doc.read_text()
            ):
                cited.add(match.groups())
        assert cited, "the contract docs lost their test citations"
        for test_file, test_name in sorted(cited):
            source = (REPO_ROOT / test_file).read_text()
            assert f"def {test_name}(" in source, (
                f"docs cite {test_file}::{test_name}, which does not exist"
            )


class TestCheckerRules:
    def test_heading_slugs_follow_github_rules(self):
        slug = check_docs.heading_slug
        assert slug("The layer stack") == "the-layer-stack"
        assert slug("Warm starts: two tiers") == "warm-starts-two-tiers"
        assert slug("`CapacityCache.stats` counters") == "capacitycachestats-counters"
        assert slug("**Result** neutrality") == "result-neutrality"

    def test_broken_path_reported(self, tmp_path):
        doc = tmp_path / "a.md"
        doc.write_text("[gone](missing.md)")
        seen, problems = check_docs.check_paths([doc])
        assert seen == 1
        assert len(problems) == 1
        assert "missing.md" in problems[0]

    def test_valid_relative_path_and_anchor_pass(self, tmp_path):
        target = tmp_path / "sub" / "b.md"
        target.parent.mkdir()
        target.write_text("# Deep Dive\n\n## The Contract\n")
        doc = tmp_path / "a.md"
        doc.write_text("[ok](sub/b.md) and [anchor](sub/b.md#the-contract)")
        _, problems = check_docs.check_paths([doc])
        assert problems == []

    def test_missing_anchor_reported(self, tmp_path):
        target = tmp_path / "b.md"
        target.write_text("# Only Heading\n")
        doc = tmp_path / "a.md"
        doc.write_text("[bad](b.md#no-such-heading)")
        _, problems = check_docs.check_paths([doc])
        assert len(problems) == 1
        assert "no-such-heading" in problems[0]

    def test_same_file_anchor_checked(self, tmp_path):
        doc = tmp_path / "a.md"
        doc.write_text("# Top\n\n[up](#top) [broken](#nope)\n")
        _, problems = check_docs.check_paths([doc])
        assert len(problems) == 1
        assert "#nope" in problems[0]

    def test_external_links_ignored(self, tmp_path):
        doc = tmp_path / "a.md"
        doc.write_text(
            "[x](https://example.com/gone) [y](http://x.test) [z](mailto:a@b.c)"
        )
        seen, problems = check_docs.check_paths([doc])
        assert seen == 3
        assert problems == []

    def test_fenced_code_blocks_do_not_contribute(self, tmp_path):
        doc = tmp_path / "a.md"
        doc.write_text(
            "# Real\n\n```text\n[fake](nowhere.md)\n## Not A Heading\n```\n"
        )
        target = tmp_path / "b.md"
        target.write_text("```\n# Fenced\n```\n# Actual\n")
        doc2 = tmp_path / "c.md"
        doc2.write_text("[bad](b.md#fenced) [good](b.md#actual)")
        _, problems = check_docs.check_paths([doc, doc2])
        assert len(problems) == 1
        assert "#fenced" in problems[0]
