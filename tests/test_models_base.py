"""Tests for the generalised RecommendationModel (analytic graph + forward pass)."""

import numpy as np
import pytest

from repro.models.base import RecommendationModel
from repro.models.ops import OperatorCategory
from repro.models.zoo import MODEL_NAMES, get_config, get_model


@pytest.fixture(scope="module")
def runnable_models():
    """One runnable instance per zoo model (small materialised tables)."""
    return {
        name: get_model(name, rng=0, materialized_rows=512) for name in MODEL_NAMES
    }


class TestOperatorGraph:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_every_model_has_embedding_and_fc_ops(self, name):
        model = get_model(name, build_executable=False)
        categories = {op.category for op in model.operators()}
        assert OperatorCategory.EMBEDDING in categories
        assert OperatorCategory.FC in categories

    def test_dense_stack_present_only_when_configured(self):
        dlrm = get_model("dlrm-rmc1", build_executable=False)
        ncf = get_model("ncf", build_executable=False)
        dlrm_fc_names = [op.name for op in dlrm.operators() if op.name.startswith("dense")]
        ncf_fc_names = [op.name for op in ncf.operators() if op.name.startswith("dense")]
        assert dlrm_fc_names
        assert not ncf_fc_names

    def test_mtwnd_has_parallel_predictor_stacks(self):
        wnd = get_model("wnd", build_executable=False)
        mt = get_model("mt-wnd", build_executable=False)
        wnd_predict = [op for op in wnd.operators() if op.name.startswith("predict")]
        mt_predict = [op for op in mt.operators() if op.name.startswith("predict")]
        assert len(mt_predict) == 4 * len(wnd_predict)

    def test_dien_has_gru_and_attention(self):
        dien = get_model("dien", build_executable=False)
        categories = {op.category for op in dien.operators()}
        assert OperatorCategory.RECURRENT in categories
        assert OperatorCategory.ATTENTION in categories

    def test_din_has_attention_but_no_gru(self):
        din = get_model("din", build_executable=False)
        categories = {op.category for op in din.operators()}
        assert OperatorCategory.ATTENTION in categories
        assert OperatorCategory.RECURRENT not in categories


class TestAnalyticCosts:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_costs_scale_with_batch(self, name):
        model = get_model(name, build_executable=False)
        assert model.flops(64) > model.flops(8)
        assert model.dram_bytes(64) > model.dram_bytes(8)

    def test_cost_by_category_sums_to_total(self):
        model = get_model("dlrm-rmc2", build_executable=False)
        total = model.cost(32)
        by_category = model.cost_by_category(32)
        assert sum(c.flops for c in by_category.values()) == pytest.approx(total.flops)
        assert sum(c.total_bytes for c in by_category.values()) == pytest.approx(
            total.total_bytes
        )

    def test_embedding_storage_dominates_model_size(self):
        model = get_model("dlrm-rmc2", build_executable=False)
        emb_bytes = get_config("dlrm-rmc2").embedding.storage_bytes
        assert model.model_storage_bytes() >= emb_bytes
        assert emb_bytes / model.model_storage_bytes() > 0.95

    def test_recommendation_models_have_low_operational_intensity(self):
        # The Fig. 1 claim: recommendation models are memory bound on CPUs.
        for name in MODEL_NAMES:
            model = get_model(name, build_executable=False)
            assert model.operational_intensity(64) < 45.0

    def test_embedding_models_lower_intensity_than_mlp_models(self):
        rmc1 = get_model("dlrm-rmc1", build_executable=False)
        rmc3 = get_model("dlrm-rmc3", build_executable=False)
        assert rmc1.operational_intensity(64) < rmc3.operational_intensity(64)

    def test_input_bytes_scale_linearly(self):
        model = get_model("wnd", build_executable=False)
        assert model.input_bytes(128) == pytest.approx(2 * model.input_bytes(64))


class TestForwardPass:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_ctr_predictions_are_probabilities(self, runnable_models, name):
        model = runnable_models[name]
        batch = model.sample_batch(6, rng=1)
        ctr = model.predict_ctr(batch)
        assert ctr.shape == (6,)
        assert np.all((ctr > 0) & (ctr < 1))

    def test_multitask_output_width(self, runnable_models):
        model = runnable_models["mt-wnd"]
        outputs = model.forward(model.sample_batch(3, rng=2))
        assert outputs.shape == (3, 4)

    def test_single_task_output_width(self, runnable_models):
        model = runnable_models["dlrm-rmc1"]
        outputs = model.forward(model.sample_batch(3, rng=2))
        assert outputs.shape == (3, 1)

    def test_forward_deterministic(self, runnable_models):
        model = runnable_models["ncf"]
        batch = model.sample_batch(4, rng=5)
        assert np.allclose(model.forward(batch), model.forward(batch))

    def test_different_inputs_different_outputs(self, runnable_models):
        model = runnable_models["dlrm-rmc3"]
        a = model.predict_ctr(model.sample_batch(8, rng=1))
        b = model.predict_ctr(model.sample_batch(8, rng=2))
        assert not np.allclose(a, b)

    def test_wrong_table_count_raises(self, runnable_models):
        model = runnable_models["ncf"]
        other = runnable_models["dlrm-rmc1"]
        with pytest.raises(ValueError):
            model.forward(other.sample_batch(2, rng=0))

    def test_analytic_only_model_rejects_forward(self):
        model = get_model("ncf", build_executable=False)
        batch = model.sample_batch(2, rng=0)
        with pytest.raises(RuntimeError):
            model.forward(batch)

    def test_attention_models_runnable(self, runnable_models):
        for name in ("din", "dien"):
            model = runnable_models[name]
            ctr = model.predict_ctr(model.sample_batch(2, rng=3))
            assert np.all(np.isfinite(ctr))
