"""Tests for the service CLI entry point, line protocol, and transports."""

import asyncio
import io
import json

import pytest

from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.queries.trace import QueryTrace
from repro.service.__main__ import build_parser, build_pipeline, main
from repro.service.ingest import (
    MAX_LINE_BYTES,
    IngestPipeline,
    parse_event,
    serve_tcp,
)
from repro.service.shadow import FleetSpec
from repro.service.twin import DigitalTwin
from repro.service.windows import WindowManager

WHAT_IF = FleetSpec(
    name="what-if",
    model="ncf",
    platform="broadwell",
    num_servers=1,
    batch_size=128,
    num_cores=2,
)

#: CLI arguments selecting a small, fast real fleet for end-to-end runs.
FAST_FLEET_ARGS = [
    "--model", "ncf",
    "--platform", "broadwell",
    "--servers", "2",
    "--batch-size", "128",
    "--num-cores", "4",
]


def save_trace(tmp_path, num_queries=300, rate_qps=60.0, seed=3):
    queries = LoadGenerator(seed=seed).with_rate(rate_qps).generate(num_queries)
    path = tmp_path / "trace.json"
    QueryTrace(queries=queries).save(path)
    return path, queries


def save_what_if(tmp_path):
    path = tmp_path / "what_if.json"
    path.write_text(json.dumps(WHAT_IF.to_dict()))
    return path


def make_pipeline(window_s=2.0, **twin_kwargs):
    params = dict(
        real=FleetSpec(
            name="real",
            model="ncf",
            platform="broadwell",
            num_servers=2,
            batch_size=128,
            num_cores=4,
        ),
        sla_latency_s=0.1,
        load_generator=LoadGenerator(seed=5),
        search_num_queries=80,
        search_iterations=3,
        search_max_queries=240,
    )
    params.update(twin_kwargs)
    return IngestPipeline(WindowManager(window_s=window_s), DigitalTwin(**params))


class TestParseEvent:
    def test_json_and_csv_forms_agree(self):
        json_query = parse_event('{"query_id": 5, "arrival_time": 1.5, "size": 64}')
        csv_query = parse_event("5,1.5,64")
        assert json_query == csv_query == Query(5, 1.5, 64)

    def test_blank_and_comment_lines_skipped(self):
        assert parse_event("") is None
        assert parse_event("   \n") is None
        assert parse_event("# header") is None

    @pytest.mark.parametrize(
        "line",
        [
            "garbage",
            "1,2",  # missing field
            "1,2,3,4",  # extra field
            '{"query_id": 1}',  # missing keys
            '{"query_id": "x", "arrival_time": 0, "size": 1}',
            "{broken json",
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ValueError, match="unparseable"):
            parse_event(line)

    def test_pipeline_counts_malformed_instead_of_raising(self):
        pipeline = make_pipeline()
        assert pipeline.feed_line("not an event") == []
        assert pipeline.feed_line("# fine") == []
        assert pipeline.malformed_lines == 1

    def test_trace_round_trips_through_the_protocol(self):
        queries = LoadGenerator(seed=9).with_rate(50.0).generate(40)
        lines = [
            json.dumps(
                {"query_id": q.query_id, "arrival_time": q.arrival_time, "size": q.size}
            )
            for q in queries
        ]
        assert [parse_event(line) for line in lines] == queries


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.port == 0
        assert not args.stdin
        assert args.replay == ""
        assert args.window_s == 60.0
        assert args.lateness_s == 0.0
        assert args.what_if_config == ""
        assert args.model == "dlrm-rmc1"
        assert args.sla_ms == 100.0
        assert args.jobs == 1
        assert not args.one_shot
        assert not args.report

    def test_service_knobs_parse(self):
        args = build_parser().parse_args(
            ["--port", "9900", "--window-s", "30", "--what-if-config", "wi.json"]
        )
        assert args.port == 9900
        assert args.window_s == 30.0
        assert args.what_if_config == "wi.json"

    def test_event_sources_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--stdin", "--replay", "trace.json"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_unknown_policy_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--policy", "psychic"])
        capsys.readouterr()


class TestMainValidation:
    def test_no_event_source_is_an_error(self, capsys):
        assert main([]) == 2
        assert "pick an event source" in capsys.readouterr().err

    def test_non_positive_window_rejected(self, capsys):
        assert main(["--stdin", "--window-s", "0"]) == 2
        assert "--window-s" in capsys.readouterr().err

    def test_zero_jobs_rejected(self, capsys):
        assert main(["--stdin", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_negative_idle_timeout_rejected(self, capsys):
        assert main(["--stdin", "--idle-timeout-s", "-1"]) == 2
        assert "--idle-timeout-s" in capsys.readouterr().err


class TestBuildPipeline:
    def test_real_spec_reflects_arguments(self, tmp_path):
        what_if_path = save_what_if(tmp_path)
        args = build_parser().parse_args(
            [
                "--replay", "unused",
                "--window-s", "5",
                "--lateness-s", "1.5",
                "--what-if-config", str(what_if_path),
                *FAST_FLEET_ARGS,
                "--policy", "round-robin",
                "--sla-ms", "80",
            ]
        )
        pipeline = build_pipeline(args)
        with pipeline.twin:
            real, what_if = pipeline.twin.specs()
            assert real == FleetSpec(
                name="real",
                model="ncf",
                platform="broadwell",
                num_servers=2,
                batch_size=128,
                num_cores=4,
                policy="round-robin",
            )
            assert what_if == WHAT_IF
            assert pipeline.twin.sla_latency_s == pytest.approx(0.08)
            assert pipeline.windows.window_s == 5.0
            assert pipeline.windows.allowed_lateness_s == 1.5


class TestReplayEndToEnd:
    def test_replay_streams_trace_and_reports_shadow(self, tmp_path, capsys):
        trace_path, queries = save_trace(tmp_path)
        what_if_path = save_what_if(tmp_path)
        exit_code = main(
            [
                "--replay", str(trace_path),
                "--window-s", "2",
                "--what-if-config", str(what_if_path),
                *FAST_FLEET_ARGS,
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        out_lines = [line for line in captured.out.splitlines() if line]
        summaries = [line for line in out_lines if line.startswith("w0")]
        assert len(summaries) >= 2  # one per closed window
        assert "real=" in summaries[0] and "what-if=" in summaries[0]
        assert "shadow mode:" in captured.out
        assert "last verdict:" in captured.out

    def test_replay_without_what_if_prints_plain_summaries(self, tmp_path, capsys):
        trace_path, _ = save_trace(tmp_path, num_queries=150)
        assert main(
            ["--replay", str(trace_path), "--window-s", "2", *FAST_FLEET_ARGS]
        ) == 0
        captured = capsys.readouterr()
        assert "shadow mode:" not in captured.out
        assert "real=" in captured.out

    def test_report_flag_prints_full_tables(self, tmp_path, capsys):
        trace_path, _ = save_trace(tmp_path, num_queries=150)
        assert main(
            [
                "--replay", str(trace_path),
                "--window-s", "2",
                "--report",
                *FAST_FLEET_ARGS,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "capacity-qps" in out  # the verdict table headers
        assert "headroom" in out


class TestStdinTransport:
    def test_stdin_lines_drive_the_pipeline(self, tmp_path, capsys, monkeypatch):
        _, queries = save_trace(tmp_path, num_queries=150)
        lines = [
            f"{q.query_id},{q.arrival_time},{q.size}\n" for q in queries
        ] + ["bogus line\n"]
        monkeypatch.setattr("sys.stdin", io.StringIO("".join(lines)))
        assert main(["--stdin", "--window-s", "2", *FAST_FLEET_ARGS]) == 0
        captured = capsys.readouterr()
        assert "real=" in captured.out
        assert "1 malformed lines" in captured.err


class TestTcpTransport:
    def run_client_session(self, pipeline, lines):
        """Serve one one-shot TCP session, stream ``lines``, return replies."""

        async def scenario():
            bound = asyncio.get_running_loop().create_future()
            server = asyncio.create_task(
                serve_tcp(pipeline, port=0, one_shot=True, on_listening=bound.set_result)
            )
            port = await asyncio.wait_for(bound, timeout=10)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write("".join(lines).encode())
            await writer.drain()
            writer.write_eof()
            replies = [line async for line in reader]
            writer.close()
            await asyncio.wait_for(server, timeout=30)
            return [reply.decode().rstrip("\n") for reply in replies]

        return asyncio.run(scenario())

    def test_tcp_session_reports_closed_windows(self):
        pipeline = make_pipeline(window_s=2.0)
        queries = LoadGenerator(seed=5).with_rate(60.0).generate(200)
        lines = [f"{q.query_id},{q.arrival_time},{q.size}\n" for q in queries]
        with pipeline.twin:
            replies = self.run_client_session(pipeline, lines)
        assert replies, "no window summaries came back over the socket"
        assert all(reply.startswith("w0") for reply in replies)
        # The flush on disconnect reported the final partial window too.
        assert len(pipeline.reports) == len(replies) + 1
        assert pipeline.twin.cumulative_queries == len(queries)

    def test_oversized_and_malformed_lines_are_counted_not_fatal(self):
        pipeline = make_pipeline(window_s=2.0)
        queries = LoadGenerator(seed=5).with_rate(60.0).generate(120)
        lines = (
            ["x" * (MAX_LINE_BYTES + 1) + "\n", "gibberish\n"]
            + [f"{q.query_id},{q.arrival_time},{q.size}\n" for q in queries]
        )
        with pipeline.twin:
            self.run_client_session(pipeline, lines)
        assert pipeline.malformed_lines == 2
        assert pipeline.twin.cumulative_queries == len(queries)

    def test_half_open_client_disconnected_after_idle_timeout(self):
        # A client that connects and then goes silent — a crashed producer
        # or dropped NAT mapping, never sending EOF — must not hold the
        # one-shot server forever: the idle bound drops it, counts it, and
        # the events it did deliver are still flushed and reported.
        pipeline = make_pipeline(window_s=2.0)

        async def scenario():
            bound = asyncio.get_running_loop().create_future()
            server = asyncio.create_task(
                serve_tcp(
                    pipeline,
                    port=0,
                    one_shot=True,
                    on_listening=bound.set_result,
                    idle_timeout_s=0.2,
                )
            )
            port = await asyncio.wait_for(bound, timeout=10)
            _reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"1,0.5,64\n")
            await writer.drain()
            # No EOF, no more lines: the server must disconnect us.
            await asyncio.wait_for(server, timeout=30)
            writer.close()

        with pipeline.twin:
            asyncio.run(scenario())
        assert pipeline.idle_disconnects == 1
        assert pipeline.twin.cumulative_queries == 1  # flushed on disconnect


class _InterruptedStream:
    """Iterable of event lines that raises KeyboardInterrupt mid-stream."""

    def __init__(self, lines, interrupt_after):
        self._lines = lines
        self._interrupt_after = interrupt_after

    def __iter__(self):
        for index, line in enumerate(self._lines):
            if index == self._interrupt_after:
                raise KeyboardInterrupt
            yield line


class TestGracefulShutdown:
    """SIGINT/SIGTERM flush the final partial window and exit 130 — no
    traceback, no lost report."""

    def test_stdin_interrupt_flushes_partial_window(self, tmp_path, capsys, monkeypatch):
        _, queries = save_trace(tmp_path, num_queries=150)
        lines = [f"{q.query_id},{q.arrival_time},{q.size}\n" for q in queries]
        monkeypatch.setattr(
            "sys.stdin", _InterruptedStream(lines, interrupt_after=len(lines) - 10)
        )
        exit_code = main(["--stdin", "--window-s", "2", *FAST_FLEET_ARGS])
        captured = capsys.readouterr()
        assert exit_code == 130
        # The flush reported windows — including the final partial one.
        assert "real=" in captured.out
        assert "interrupted" in captured.err

    def test_replay_interrupt_flushes_partial_window(self, tmp_path, capsys, monkeypatch):
        trace_path, queries = save_trace(tmp_path, num_queries=150)

        class InterruptingTrace:
            @staticmethod
            def load(path):
                return _InterruptedStream(queries, interrupt_after=len(queries) - 10)

        monkeypatch.setattr("repro.service.__main__.QueryTrace", InterruptingTrace)
        exit_code = main(["--replay", str(trace_path), "--window-s", "2", *FAST_FLEET_ARGS])
        captured = capsys.readouterr()
        assert exit_code == 130
        assert "real=" in captured.out
        assert "interrupted" in captured.err


class TestGracefulShutdownSignals:
    """Real signals against a real service subprocess."""

    def spawn_service(self, extra_args, tmp_path):
        import os
        import subprocess
        import sys as _sys

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(root, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [_sys.executable, "-m", "repro.service", *extra_args],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=root,
            text=True,
        )

    def test_sigterm_on_stdin_service_exits_cleanly(self, tmp_path):
        import signal as _signal
        import time as _time

        queries = LoadGenerator(seed=3).with_rate(60.0).generate(200)
        lines = "".join(
            f"{q.query_id},{q.arrival_time},{q.size}\n" for q in queries
        )
        proc = self.spawn_service(
            ["--stdin", "--window-s", "2", *FAST_FLEET_ARGS], tmp_path
        )
        try:
            proc.stdin.write(lines)
            proc.stdin.flush()
            deadline = _time.time() + 60
            while _time.time() < deadline and proc.poll() is None:
                _time.sleep(0.5)
                proc.send_signal(_signal.SIGTERM)
                break
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "Traceback" not in stderr
        assert "interrupted" in stderr

    def test_sigint_on_tcp_service_exits_cleanly(self, tmp_path):
        import signal as _signal

        proc = self.spawn_service(
            ["--port", "19893", "--window-s", "2", "--one-shot", *FAST_FLEET_ARGS],
            tmp_path,
        )
        try:
            # "listening on port" on stderr is the readiness marker.
            marker = proc.stderr.readline()
            assert "listening" in marker
            proc.send_signal(_signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130
        assert "Traceback" not in stderr
        assert "interrupted" in stderr


class TestCheckpointCli:
    def test_replay_resume_skips_reprocessing(self, tmp_path, capsys):
        trace_path, queries = save_trace(tmp_path, num_queries=150)
        checkpoint = tmp_path / "ckpt"
        args = [
            "--replay", str(trace_path),
            "--window-s", "2",
            "--checkpoint-dir", str(checkpoint),
            *FAST_FLEET_ARGS,
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "resumed" not in first.err
        first_windows = sum(
            1 for line in first.out.splitlines() if line.startswith("w0")
        )
        assert first_windows >= 2

        # Second run resumes from the journal: the whole replay reads as
        # late (already observed), nothing is re-simulated.
        assert main(args) == 0
        second = capsys.readouterr()
        assert f"{len(queries)} events" in second.err  # resume banner
        assert "resumed from checkpoint" in second.err
        assert f"{len(queries)} late events" in second.err
        assert not [
            line for line in second.out.splitlines() if line.startswith("w0")
        ]
