"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest

from repro.utils.stats import (
    PercentileTracker,
    StreamingStats,
    cdf_points,
    geometric_mean,
    max_relative_cdf_gap,
    percentile,
)


class TestPercentile:
    def test_median_of_odd_sequence(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_p0_and_p100_are_extremes(self):
        samples = [5.0, 1.0, 9.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 9.0

    def test_matches_numpy(self):
        samples = list(np.random.default_rng(0).normal(size=200))
        assert percentile(samples, 95) == pytest.approx(np.percentile(samples, 95))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestGeometricMean:
    def test_constant_sequence(self):
        assert geometric_mean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_two_values(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_non_positive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_less_than_arithmetic_mean(self):
        values = [1.0, 2.0, 10.0]
        assert geometric_mean(values) < sum(values) / len(values)


class TestCdfPoints:
    def test_sorted_and_normalised(self):
        values, probs = cdf_points([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert probs[-1] == pytest.approx(1.0)
        assert np.all(np.diff(probs) > 0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestMaxRelativeCdfGap:
    def test_identical_distributions_zero_gap(self):
        samples = list(np.random.default_rng(1).exponential(size=500))
        assert max_relative_cdf_gap(samples, samples) == 0.0

    def test_scaled_distribution_gap(self):
        samples = list(np.random.default_rng(1).exponential(size=500))
        scaled = [1.2 * s for s in samples]
        gap = max_relative_cdf_gap(samples, scaled)
        assert gap == pytest.approx(0.2, rel=1e-6)

    def test_similar_samples_small_gap(self):
        rng = np.random.default_rng(2)
        reference = list(rng.gamma(2.0, 1.0, size=4000))
        other = list(rng.gamma(2.0, 1.0, size=4000))
        assert max_relative_cdf_gap(reference, other) < 0.15


class TestPercentileTracker:
    def test_basic_percentiles(self):
        tracker = PercentileTracker()
        tracker.extend(range(1, 101))
        assert tracker.p50() == pytest.approx(50.5)
        assert tracker.p95() == pytest.approx(95.05)
        assert tracker.p99() == pytest.approx(99.01)

    def test_warmup_excluded(self):
        tracker = PercentileTracker(warmup=3)
        tracker.extend([1000.0, 1000.0, 1000.0, 1.0, 2.0, 3.0])
        assert tracker.count == 3
        assert tracker.raw_count == 6
        assert tracker.mean() == pytest.approx(2.0)

    def test_negative_warmup_raises(self):
        with pytest.raises(ValueError):
            PercentileTracker(warmup=-1)

    def test_empty_after_warmup_raises(self):
        tracker = PercentileTracker(warmup=5)
        tracker.add(1.0)
        with pytest.raises(ValueError):
            tracker.p95()

    def test_samples_returns_copy(self):
        tracker = PercentileTracker()
        tracker.add(1.0)
        samples = tracker.samples()
        samples.append(99.0)
        assert tracker.count == 1


class TestTrackerSortCacheInvalidation:
    """The cached sort must never survive a mutation.

    The digital-twin service keeps trackers alive across event-time windows
    and interleaves percentile queries with further recording; a stale sort
    cache would silently report the *previous* window's statistics.  These
    regression tests pin the record-after-percentile contract for every
    mutating entry point (``add``, ``extend``, ``reset``).
    """

    def test_add_after_percentile_refreshes_statistics(self):
        tracker = PercentileTracker()
        tracker.extend([1.0, 2.0, 3.0])
        assert tracker.p95() == pytest.approx(2.9)  # caches the sort
        tracker.add(1000.0)
        fresh = PercentileTracker()
        fresh.extend([1.0, 2.0, 3.0, 1000.0])
        assert tracker.p95() == fresh.p95()
        assert tracker.p50() == fresh.p50()

    def test_extend_after_percentile_refreshes_statistics(self):
        tracker = PercentileTracker()
        tracker.extend(range(10))
        before = tracker.p95()
        tracker.extend([500.0, 600.0])
        fresh = PercentileTracker()
        fresh.extend(list(range(10)) + [500.0, 600.0])
        assert tracker.p95() == fresh.p95()
        assert tracker.p95() > before

    def test_interleaved_window_loop_matches_batch(self):
        # The service's actual access pattern: query, record, query, record.
        tracker = PercentileTracker()
        window_rates = [120.0, 90.0, 240.0, 60.0, 180.0]
        medians = []
        for rate in window_rates:
            tracker.add(rate)
            medians.append(tracker.p50())
        expected = [
            percentile(window_rates[: i + 1], 50) for i in range(len(window_rates))
        ]
        assert medians == pytest.approx(expected)

    def test_reset_drops_samples_and_sort_cache(self):
        tracker = PercentileTracker()
        tracker.extend([5.0, 6.0, 7.0])
        assert tracker.p50() == 6.0  # caches the sort
        tracker.reset()
        assert tracker.count == 0
        with pytest.raises(ValueError):
            tracker.p50()
        tracker.extend([1.0, 2.0])
        assert tracker.p50() == pytest.approx(1.5)
        assert tracker.samples() == [1.0, 2.0]

    def test_reset_respects_warmup(self):
        tracker = PercentileTracker(warmup=1)
        tracker.extend([99.0, 1.0, 2.0])
        assert tracker.count == 2
        tracker.reset()
        tracker.extend([50.0, 3.0, 4.0])
        assert tracker.count == 2
        assert tracker.mean() == pytest.approx(3.5)


class TestStreamingStats:
    def test_mean_and_variance(self):
        stats = StreamingStats()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in values:
            stats.add(value)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values, ddof=1))
        assert stats.std == pytest.approx(math.sqrt(np.var(values, ddof=1)))

    def test_min_max_total(self):
        stats = StreamingStats()
        for value in [3.0, -1.0, 10.0]:
            stats.add(value)
        assert stats.minimum == -1.0
        assert stats.maximum == 10.0
        assert stats.total == pytest.approx(12.0)

    def test_empty_statistics(self):
        stats = StreamingStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        with pytest.raises(ValueError):
            _ = stats.minimum

    def test_single_sample_variance_zero(self):
        stats = StreamingStats()
        stats.add(5.0)
        assert stats.variance == 0.0
