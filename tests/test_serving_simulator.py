"""Tests for the discrete-event serving simulator."""

import pytest

from repro.execution.engine import build_engine_pair
from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.queries.size_dist import FixedQuerySizes
from repro.serving.simulator import ServingConfig, ServingSimulator, SimulationResult


@pytest.fixture(scope="module")
def engines():
    return build_engine_pair("dlrm-rmc1", "skylake", "gtx1080ti")


@pytest.fixture(scope="module")
def cpu_only_engines():
    return build_engine_pair("dlrm-rmc1", "skylake", None)


def make_queries(count, size=64, gap=0.01):
    return [Query(i, i * gap, size) for i in range(count)]


class TestServingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(batch_size=0)
        with pytest.raises(ValueError):
            ServingConfig(batch_size=1, num_cores=-1)
        with pytest.raises(ValueError):
            ServingConfig(batch_size=1, offload_threshold=0)
        with pytest.raises(ValueError):
            ServingConfig(batch_size=1, warmup_fraction=1.0)

    def test_offload_without_gpu_rejected(self, cpu_only_engines):
        config = ServingConfig(batch_size=64, offload_threshold=100)
        with pytest.raises(ValueError):
            ServingSimulator(cpu_only_engines, config)

    def test_num_cores_exceeding_platform_rejected(self, cpu_only_engines):
        with pytest.raises(ValueError):
            ServingSimulator(cpu_only_engines, ServingConfig(batch_size=64, num_cores=1000))

    def test_default_cores_is_platform_count(self, cpu_only_engines):
        simulator = ServingSimulator(cpu_only_engines, ServingConfig(batch_size=64))
        assert simulator.num_cores == cpu_only_engines.cpu.platform.num_cores


class TestSimulationBasics:
    def test_all_queries_complete(self, cpu_only_engines):
        config = ServingConfig(batch_size=64, warmup_fraction=0.0)
        result = ServingSimulator(cpu_only_engines, config).run(make_queries(50))
        assert result.num_queries == 50
        assert result.measured_queries == 50
        assert len(result.latencies_s) == 50

    def test_empty_stream_rejected(self, cpu_only_engines):
        simulator = ServingSimulator(cpu_only_engines, ServingConfig(batch_size=64))
        with pytest.raises(ValueError):
            simulator.run([])

    def test_latency_at_least_service_time(self, cpu_only_engines):
        config = ServingConfig(batch_size=64, warmup_fraction=0.0)
        result = ServingSimulator(cpu_only_engines, config).run(make_queries(10, size=64, gap=1.0))
        minimum_service = cpu_only_engines.cpu.request_latency_s(64, 1)
        assert min(result.latencies_s) >= minimum_service * 0.99

    def test_percentile_ordering(self, cpu_only_engines):
        config = ServingConfig(batch_size=64, warmup_fraction=0.0)
        result = ServingSimulator(cpu_only_engines, config).run(make_queries(200, gap=0.002))
        assert result.p50_latency_s <= result.p95_latency_s <= result.p99_latency_s

    def test_warmup_excluded_from_measurement(self, cpu_only_engines):
        config = ServingConfig(batch_size=64, warmup_fraction=0.2)
        result = ServingSimulator(cpu_only_engines, config).run(make_queries(100))
        assert result.measured_queries == 80

    def test_deterministic(self, cpu_only_engines):
        config = ServingConfig(batch_size=64)
        queries = make_queries(100, gap=0.005)
        a = ServingSimulator(cpu_only_engines, config).run(queries)
        b = ServingSimulator(cpu_only_engines, config).run(queries)
        assert a.p95_latency_s == b.p95_latency_s
        assert a.cpu_utilization == b.cpu_utilization

    def test_utilization_bounds(self, cpu_only_engines):
        config = ServingConfig(batch_size=64)
        result = ServingSimulator(cpu_only_engines, config).run(make_queries(100, gap=0.002))
        assert 0.0 < result.cpu_utilization <= 1.0
        assert result.gpu_utilization == 0.0
        assert result.gpu_work_fraction == 0.0


class TestLoadBehaviour:
    def test_latency_grows_with_load(self, cpu_only_engines):
        config = ServingConfig(batch_size=256, warmup_fraction=0.1)
        generator = LoadGenerator(seed=1)
        light = ServingSimulator(cpu_only_engines, config).run(
            generator.with_rate(100).generate(300)
        )
        heavy = ServingSimulator(cpu_only_engines, config).run(
            generator.with_rate(4000).generate(300)
        )
        assert heavy.p95_latency_s > light.p95_latency_s

    def test_overload_detected_as_unstable(self, cpu_only_engines):
        config = ServingConfig(batch_size=256, warmup_fraction=0.1)
        generator = LoadGenerator(seed=1)
        overloaded = ServingSimulator(cpu_only_engines, config).run(
            generator.with_rate(50000).generate(1500)
        )
        assert not overloaded.is_stable(sla_latency_s=0.1)

    def test_light_load_is_stable(self, cpu_only_engines):
        config = ServingConfig(batch_size=256, warmup_fraction=0.1)
        generator = LoadGenerator(seed=1)
        light = ServingSimulator(cpu_only_engines, config).run(
            generator.with_rate(200).generate(300)
        )
        assert light.is_stable(sla_latency_s=0.1)
        assert light.acceptable(sla_latency_s=0.1)

    def test_smaller_batches_use_more_cores_per_query(self, cpu_only_engines):
        # With request-level parallelism a single query's latency shrinks.
        queries = make_queries(5, size=1000, gap=5.0)
        small_batch = ServingSimulator(
            cpu_only_engines, ServingConfig(batch_size=50, warmup_fraction=0.0)
        ).run(queries)
        large_batch = ServingSimulator(
            cpu_only_engines, ServingConfig(batch_size=1000, warmup_fraction=0.0)
        ).run(queries)
        assert small_batch.mean_latency_s < large_batch.mean_latency_s


class TestGPUOffload:
    def test_large_queries_go_to_gpu(self, engines):
        config = ServingConfig(batch_size=64, offload_threshold=100, warmup_fraction=0.0)
        queries = [Query(0, 0.0, 50), Query(1, 0.1, 500), Query(2, 0.2, 80)]
        result = ServingSimulator(engines, config).run(queries)
        expected_fraction = 500 / (50 + 500 + 80)
        assert result.gpu_work_fraction == pytest.approx(expected_fraction)
        assert result.gpu_utilization > 0

    def test_no_offload_when_threshold_above_all_sizes(self, engines):
        config = ServingConfig(batch_size=64, offload_threshold=1000, warmup_fraction=0.0)
        result = ServingSimulator(engines, config).run(make_queries(20, size=64))
        assert result.gpu_work_fraction == 0.0

    def test_all_offload_when_threshold_below_all_sizes(self, engines):
        sizes = FixedQuerySizes(256)
        generator = LoadGenerator(sizes=sizes, seed=0)
        config = ServingConfig(batch_size=64, offload_threshold=1, warmup_fraction=0.0)
        result = ServingSimulator(engines, config).run(
            generator.with_rate(50).generate(30)
        )
        assert result.gpu_work_fraction == pytest.approx(1.0)
        assert result.cpu_utilization == 0.0

    def test_offload_reduces_tail_latency_under_load(self, engines):
        # With the heavy-tailed production distribution, sending the largest
        # queries to the accelerator improves the p95 at the same load.
        generator = LoadGenerator(seed=3)
        queries = generator.with_rate(2000).generate(400)
        cpu_only = ServingSimulator(
            engines, ServingConfig(batch_size=256)
        ).run(queries)
        offloaded = ServingSimulator(
            engines, ServingConfig(batch_size=256, offload_threshold=384)
        ).run(queries)
        assert offloaded.p95_latency_s < cpu_only.p95_latency_s
