"""Tests for the unified capacity search (repro.runtime.capacity).

The contract under test: the parallel path and the warm-start replay are
*decision-identical* to the cold serial search — same max QPS, same result
object, bit for bit — so callers choose them purely on wall-clock grounds.
"""

import json

import pytest

from repro.execution.engine import build_engine_pair
from repro.queries.generator import LoadGenerator
from repro.runtime.capacity import CAPACITY_SCHEMA_VERSION, CapacitySearch
from repro.runtime.pool import WorkerPool, pool_forks
from repro.serving.capacity import CapacityCache, find_max_qps
from repro.serving.cluster import find_cluster_max_qps, homogeneous_fleet
from repro.serving.simulator import ServingConfig

SEARCH_KWARGS = dict(num_queries=100, iterations=3, max_queries=1000)


@pytest.fixture(scope="module")
def engines():
    return build_engine_pair("dlrm-rmc1", "skylake", None)


@pytest.fixture(scope="module")
def config():
    return ServingConfig(batch_size=256, num_cores=8)


class TestSingleServerDecisionIdentity:
    """Mirror of the cluster-side tests for the single-server search."""

    def test_parallel_search_bit_identical_to_serial(self, engines, config):
        generator = LoadGenerator(seed=7)
        serial = find_max_qps(engines, config, 0.1, generator, **SEARCH_KWARGS)
        parallel = find_max_qps(
            engines, config, 0.1, generator, jobs=2, **SEARCH_KWARGS
        )
        assert parallel.max_qps == serial.max_qps
        assert parallel.result.p95_latency_s == serial.result.p95_latency_s
        assert parallel.result.measured_queries == serial.result.measured_queries
        assert parallel.result.latencies_s == serial.result.latencies_s

    def test_warm_start_bit_identical_to_cold_serial(self, engines, config, tmp_path):
        generator = LoadGenerator(seed=7)
        serial = find_max_qps(engines, config, 0.1, generator, **SEARCH_KWARGS)
        cold = find_max_qps(
            engines, config, 0.1, generator, warm_start_cache=tmp_path,
            **SEARCH_KWARGS,
        )
        assert list(tmp_path.glob("capacity-*.json"))
        warm = find_max_qps(
            engines, config, 0.1, generator, warm_start_cache=tmp_path,
            **SEARCH_KWARGS,
        )
        assert warm.max_qps == cold.max_qps == serial.max_qps
        assert warm.result.p95_latency_s == serial.result.p95_latency_s
        assert warm.result.latencies_s == serial.result.latencies_s

    def test_warm_parallel_combination_bit_identical(self, engines, config, tmp_path):
        generator = LoadGenerator(seed=7)
        serial = find_max_qps(engines, config, 0.1, generator, **SEARCH_KWARGS)
        first = find_max_qps(
            engines, config, 0.1, generator, jobs=2, warm_start_cache=tmp_path,
            **SEARCH_KWARGS,
        )
        second = find_max_qps(
            engines, config, 0.1, generator, jobs=2, warm_start_cache=tmp_path,
            **SEARCH_KWARGS,
        )
        assert first.max_qps == second.max_qps == serial.max_qps

    def test_unbracketed_exit_replays_bit_identically(
        self, engines, config, tmp_path
    ):
        # With a very relaxed SLA every bracket raise stays acceptable, so
        # the search exits through the "unbracketed" path.  The reported
        # result must still correspond to max_qps, and the warm replay must
        # reproduce it bit for bit (regression: the unbracketed exit used to
        # attach a result measured at max_qps / 1.6).
        generator = LoadGenerator(seed=7)
        serial = find_max_qps(engines, config, 30.0, generator, **SEARCH_KWARGS)
        cold = find_max_qps(
            engines, config, 30.0, generator, warm_start_cache=tmp_path,
            **SEARCH_KWARGS,
        )
        warm = find_max_qps(
            engines, config, 30.0, generator, warm_start_cache=tmp_path,
            **SEARCH_KWARGS,
        )
        parallel = find_max_qps(
            engines, config, 30.0, generator, jobs=2, **SEARCH_KWARGS
        )
        assert warm.max_qps == cold.max_qps == serial.max_qps
        assert parallel.max_qps == serial.max_qps
        assert warm.result.p95_latency_s == cold.result.p95_latency_s
        assert warm.result.p95_latency_s == serial.result.p95_latency_s
        assert parallel.result.p95_latency_s == serial.result.p95_latency_s
        assert warm.result.measured_queries == serial.result.measured_queries

    def test_invalid_jobs_rejected(self, engines, config):
        with pytest.raises(ValueError, match="jobs"):
            find_max_qps(
                engines, config, 0.1, LoadGenerator(seed=7), jobs=0, **SEARCH_KWARGS
            )

    def test_stale_cache_entry_falls_back_to_cold_search(
        self, engines, config, tmp_path
    ):
        generator = LoadGenerator(seed=7)
        serial = find_max_qps(engines, config, 0.1, generator, **SEARCH_KWARGS)
        find_max_qps(
            engines, config, 0.1, generator, warm_start_cache=tmp_path,
            **SEARCH_KWARGS,
        )
        (entry,) = tmp_path.glob("capacity-*.json")
        # Corrupt the recorded capacity to an unsustainable rate: the replay
        # verification must reject it and re-run the full cold search.
        payload = json.loads(entry.read_text())
        payload["max_qps"] = serial.max_qps * 50.0
        entry.write_text(json.dumps(payload))
        recovered = find_max_qps(
            engines, config, 0.1, generator, warm_start_cache=tmp_path,
            **SEARCH_KWARGS,
        )
        assert recovered.max_qps == serial.max_qps


class TestCorruptCacheEntries:
    """A rotten cache entry is a visible miss, never a crash or a wrong answer."""

    def test_garbage_json_entry_falls_back_to_cold_search(
        self, engines, config, tmp_path
    ):
        generator = LoadGenerator(seed=7)
        serial = find_max_qps(engines, config, 0.1, generator, **SEARCH_KWARGS)
        find_max_qps(
            engines, config, 0.1, generator, warm_start_cache=tmp_path,
            **SEARCH_KWARGS,
        )
        (entry,) = tmp_path.glob("capacity-*.json")
        entry.write_text("{ not json at all")
        cache = CapacityCache(tmp_path)
        recovered = find_max_qps(
            engines, config, 0.1, generator, warm_start_cache=cache,
            **SEARCH_KWARGS,
        )
        assert recovered.max_qps == serial.max_qps
        assert recovered.result.latencies_s == serial.result.latencies_s
        assert cache.stats["corrupt_entries"] >= 1
        assert cache.stats["exact_hits"] == 0

    def test_wrong_shape_entry_counts_as_corrupt(self, tmp_path):
        cache = CapacityCache(tmp_path)
        signature = {"kind": "server", "num_queries": 100}
        path = tmp_path / f"capacity-{CapacityCache.digest(signature)}.json"
        path.write_text(json.dumps({"max_qps": "not-a-number"}))
        assert cache.load(signature) is None
        assert cache.stats == {
            **{key: 0 for key in cache.stats},
            "exact_misses": 1,
            "corrupt_entries": 1,
        }

    def test_missing_entry_is_a_plain_miss_not_corruption(self, tmp_path):
        cache = CapacityCache(tmp_path)
        assert cache.load({"kind": "server"}) is None
        assert cache.stats["corrupt_entries"] == 0
        assert cache.stats["exact_misses"] == 1

    def test_near_hint_scan_skips_and_counts_garbage_files(self, tmp_path):
        (tmp_path / "capacity-deadbeef.json").write_text("garbage")
        cache = CapacityCache(tmp_path)
        assert cache.near_hint({"kind": "server", "servers": []}) is None
        assert cache.stats["corrupt_entries"] == 1
        # Parsed-entry memoisation: a rescan does not double-count the rot.
        assert cache.near_hint({"kind": "server", "servers": []}) is None
        assert cache.stats["corrupt_entries"] == 1


class TestSharedPoolReuse:
    def test_explicit_pool_shared_across_searches(self, engines, config, monkeypatch):
        # Force the parallel path regardless of the host's core count — the
        # in-flight budget is clamped by physical cores, so a one-core host
        # would (correctly) run these searches serially otherwise.
        import repro.runtime.capacity as runtime_capacity

        monkeypatch.setattr(runtime_capacity, "_host_cores", lambda: 2)
        generator = LoadGenerator(seed=7)
        fleet = homogeneous_fleet(engines, config, 2)
        serial = find_cluster_max_qps(
            fleet, "least-outstanding", 0.1, generator, **SEARCH_KWARGS
        )
        before = pool_forks()
        with WorkerPool(2) as pool:
            first = find_cluster_max_qps(
                fleet, "least-outstanding", 0.1, generator, jobs=2, pool=pool,
                **SEARCH_KWARGS,
            )
            second = find_max_qps(
                engines, config, 0.1, generator, jobs=2, pool=pool, **SEARCH_KWARGS
            )
        # One fork served both the fleet and the single-server search.
        assert pool_forks() == before + 1
        assert first.max_qps == serial.max_qps
        assert first.result.latencies_s == serial.result.latencies_s
        assert second.feasible


class TestSignatures:
    def test_schema_version_recorded(self, engines, config):
        signature = CapacitySearch.for_server(
            engines, config, 0.1, LoadGenerator(seed=7), **SEARCH_KWARGS
        ).signature()
        assert signature is not None
        assert signature["schema"] == CAPACITY_SCHEMA_VERSION
        assert signature["search"] == "server"

    def test_server_and_fleet_of_one_do_not_collide(self, engines, config):
        generator = LoadGenerator(seed=7)
        server = CapacitySearch.for_server(
            engines, config, 0.1, generator, **SEARCH_KWARGS
        ).signature()
        fleet = CapacitySearch.for_fleet(
            homogeneous_fleet(engines, config, 1), "round-robin", 0.1, generator,
            **SEARCH_KWARGS,
        ).signature()
        assert CapacityCache.digest(server) != CapacityCache.digest(fleet)

    def test_modified_platform_same_name_gets_distinct_signature(self, config):
        # The cache-contention ablation builds a Broadwell with the LLC
        # contention slope zeroed but the stock name; signing only the
        # platform *name* would collide it with stock Broadwell and replay
        # the wrong capacity.
        from dataclasses import replace

        from repro.execution.cpu_engine import CPUEngine
        from repro.execution.engine import EnginePair
        from repro.hardware.cache import CacheHierarchy
        from repro.hardware.cpu import get_cpu

        generator = LoadGenerator(seed=7)
        stock = build_engine_pair("dlrm-rmc1", "broadwell", None)
        cpu = get_cpu("broadwell")
        modified_platform = replace(
            cpu,
            cache=CacheHierarchy(
                policy=cpu.cache.policy,
                llc_bytes=cpu.cache.llc_bytes,
                contention_slope=0.0,
            ),
        )
        modified = EnginePair(cpu=CPUEngine(stock.cpu.model, modified_platform))

        def signature(pair):
            return CapacitySearch.for_server(
                pair, config, 0.1, generator, **SEARCH_KWARGS
            ).signature()

        assert signature(stock) != signature(modified)

    def test_unserialisable_workload_skips_caching(self, engines, config, tmp_path):
        class OpaqueSizes:
            """A size distribution whose state defeats canonical signing."""

            def __init__(self):
                self.blob = object()

            def mean(self):
                return 170.0

            def sample(self, count, rng=None):
                import numpy as np

                return np.full(count, 170)

        search = CapacitySearch.for_server(
            engines, config, 0.1,
            LoadGenerator(seed=7, sizes=OpaqueSizes()), **SEARCH_KWARGS,
        )
        assert search.signature() is None
