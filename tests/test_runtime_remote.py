"""Distributed sweep execution: protocol, lease recovery, bit identity.

Four layers of coverage over :mod:`repro.runtime.remote`:

* **Framing** — length-prefixed pickle frames reassemble across split
  segments, bound their size, and fail loudly on EOF or garbage.
* **Futures surface** — :class:`RemoteWorkerPool` honours the exact
  ``submit`` / ``map`` / ``as_completed`` contract of the local pool,
  against real worker subprocesses on loopback.
* **Fault tolerance** — a SIGKILL'd worker's leases are reassigned under
  the retry budget; a silent (half-open) worker is suspected after the
  liveness timeout and its late results are discarded as duplicates; with
  zero live workers every task degrades to a recorded local run, never a
  hang; warm-start cache entries piggy-back home with results and corrupt
  or conflicting entries are kept out.
* **Bit identity** (the acceptance bar) — a figure-13-shaped capacity
  sweep drained by a two-host loopback fleet, with one host SIGKILL'd
  mid-task, produces results bit-identical to the serial run.
"""

import os
import pickle
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.execution.engine import build_engine_pair
from repro.queries.generator import LoadGenerator
from repro.runtime.capacity import (
    CapacitySearch,
    _parallel_budget,
    run_capacity_searches,
)
from repro.runtime.pool import (
    TaskContext,
    WorkerCrashError,
    as_completed,
    shared_pool,
)
from repro.runtime.remote import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    RemoteWorkerPool,
    _FrameReader,
    parse_worker_addresses,
    send_frame,
)
from repro.serving.capacity import (
    CapacityCache,
    apply_synced_entries,
    observe_cache_stores,
)
from repro.serving.cluster import homogeneous_fleet
from repro.serving.simulator import ServingConfig

_REPO_ROOT = Path(__file__).resolve().parent.parent


# --------------------------------------------------------------------------- #
# Task functions: module-level so they pickle by reference; the worker
# subprocess imports this module through the PYTHONPATH the spawner sets.
# --------------------------------------------------------------------------- #


def _echo(value):
    return value


def _double(value):
    return value * 2


def _slow_double(value):
    time.sleep(0.3)
    return value * 2


def _boom(value):
    raise ValueError(f"boom {value}")


def _build_scale(payload):
    return {"scale": payload["scale"]}


def _scaled(context, item):
    return context["scale"] * item


def _kill_worker_host(value):
    """Kill the hosting worker process — but only under a remote worker.

    With ``--slots 1`` the worker shell runs tasks inline, so this takes
    the whole host down, exactly like a machine failure.  Run anywhere
    else (e.g. the coordinator's local fallback) it is harmless.
    """
    if os.environ.get("REPRO_REMOTE_WORKER"):
        os.kill(os.getpid(), signal.SIGKILL)
    return ("local", value)


def _store_entry(task):
    """Store one warm-start entry into a worker-side cache directory."""
    cache_dir, key, max_qps = task
    CapacityCache(cache_dir).store({"remote-test-key": key}, max_qps)
    return max_qps


# --------------------------------------------------------------------------- #
# Worker process harness
# --------------------------------------------------------------------------- #


def _spawn_worker(slots=1, once=True):
    """Start ``python -m repro.runtime.remote worker`` on an ephemeral port."""
    env = dict(os.environ)
    extra = os.pathsep.join(
        [str(_REPO_ROOT / "src"), str(_REPO_ROOT / "tests")]
    )
    env["PYTHONPATH"] = extra + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "repro.runtime.remote",
        "worker",
        "--port",
        "0",
        "--slots",
        str(slots),
    ]
    if once:
        command.append("--once")
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
        cwd=str(_REPO_ROOT),
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = re.search(r"listening (\d+)", line)
    if not match:
        proc.kill()
        proc.wait(timeout=10)
        raise RuntimeError(f"worker did not announce a port: {line!r}")
    return proc, int(match.group(1))


@pytest.fixture
def worker_fleet():
    """Spawner for loopback worker subprocesses, killed at teardown."""
    procs = []

    def spawn(slots=1, once=True):
        proc, port = _spawn_worker(slots=slots, once=once)
        procs.append(proc)
        return proc, port

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)
        if proc.stdout is not None:
            proc.stdout.close()


class _ScriptedWorker:
    """A hand-rolled in-thread worker the tests can misbehave on demand.

    Handshakes like a real worker, records every task frame it receives,
    and then does *nothing* unless the test tells it to — the shape of a
    half-open host whose process is alive but no longer making progress.
    """

    def __init__(self):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(1)
        self.listener.settimeout(10.0)
        self.port = self.listener.getsockname()[1]
        self.conn = None
        self.tasks = []
        self.error = None
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        try:
            conn, _addr = self.listener.accept()
            conn.settimeout(5.0)
            reader = _FrameReader(conn)
            hello = reader.poll(5.0)
            if not hello or hello.get("type") != "hello":
                raise ProtocolError(f"expected hello, got {hello!r}")
            send_frame(
                conn,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "worker_id": "scripted",
                    "slots": 1,
                    "pid": 0,
                },
                5.0,
            )
            self.conn = conn
            while not self._stop.is_set():
                try:
                    message = reader.poll(0.1)
                except (ConnectionClosed, OSError):
                    return
                if message is not None and message.get("type") == "task":
                    self.tasks.append(message)
        except Exception as error:  # surfaced by the test, not swallowed
            self.error = error

    def wait_task(self, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.error is not None:
                raise self.error
            if self.tasks:
                return self.tasks[0]
            time.sleep(0.01)
        raise AssertionError("scripted worker never received a task")

    def send_result(self, task_id, value):
        send_frame(
            self.conn,
            {
                "type": "result",
                "task_id": task_id,
                "ok": True,
                "value": value,
                "cache_entries": [],
            },
            5.0,
        )

    def close(self):
        self._stop.set()
        self.thread.join(timeout=5.0)
        for sock in (self.conn, self.listener):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass


def _dead_port():
    """A loopback port with nothing listening behind it."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _wait_for(predicate, timeout=10.0, message="condition never became true"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(message)


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #


class TestFrameProtocol:
    def _pair(self):
        near, far = socket.socketpair()
        return near, far

    def test_frame_round_trip(self):
        near, far = self._pair()
        try:
            send_frame(near, {"type": "x", "n": 1}, 5.0)
            assert _FrameReader(far).poll(5.0) == {"type": "x", "n": 1}
        finally:
            near.close()
            far.close()

    def test_split_frame_reassembles_across_polls(self):
        near, far = self._pair()
        try:
            payload = pickle.dumps({"type": "split"})
            wire = struct.pack(">I", len(payload)) + payload
            reader = _FrameReader(far)
            near.sendall(wire[:5])
            # Only a partial frame arrived: poll times out, bytes buffered.
            assert reader.poll(0.05) is None
            near.sendall(wire[5:])
            assert reader.poll(5.0) == {"type": "split"}
        finally:
            near.close()
            far.close()

    def test_eof_raises_connection_closed(self):
        near, far = self._pair()
        try:
            near.close()
            with pytest.raises(ConnectionClosed):
                _FrameReader(far).poll(5.0)
        finally:
            far.close()

    def test_oversized_length_prefix_rejected(self):
        near, far = self._pair()
        try:
            near.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="cap"):
                _FrameReader(far).poll(5.0)
        finally:
            near.close()
            far.close()

    def test_non_dict_payload_rejected(self):
        near, far = self._pair()
        try:
            payload = pickle.dumps([1, 2, 3])
            near.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="message dict"):
                _FrameReader(far).poll(5.0)
        finally:
            near.close()
            far.close()

    def test_parse_worker_addresses(self):
        assert parse_worker_addresses("a:1, b:2,") == [("a", 1), ("b", 2)]
        with pytest.raises(ValueError, match="host:port"):
            parse_worker_addresses("nocolon")
        with pytest.raises(ValueError, match="no worker addresses"):
            parse_worker_addresses(" , ")


# --------------------------------------------------------------------------- #
# The futures surface, against real loopback workers
# --------------------------------------------------------------------------- #


class TestRemotePoolSurface:
    def test_submit_map_stats_and_clean_shutdown(self, worker_fleet):
        proc, port = worker_fleet(slots=2)
        pool = RemoteWorkerPool([("127.0.0.1", port)], retry_backoff_s=0.01)
        try:
            assert pool.spans_hosts
            assert pool.live_workers == 1
            assert pool.max_workers == 2  # the fleet's advertised slots
            futures = [pool.submit(_echo, value) for value in range(3)]
            assert sorted(f.result() for f in as_completed(futures)) == [0, 1, 2]
            assert pool.map(_double, range(5)) == [0, 2, 4, 6, 8]
        finally:
            pool.close()
        stats = pool.stats
        assert stats["submitted"] == 8
        assert stats["completed"] == 8
        assert stats["remote_workers"] == 1
        assert stats["local_fallbacks"] == 0
        assert stats["duplicate_results"] == 0
        # close() sent a shutdown; the --once worker exits cleanly.
        assert proc.wait(timeout=10) == 0

    def test_context_tasks_build_remotely(self, worker_fleet):
        _proc, port = worker_fleet(slots=1)
        context = TaskContext(builder=_build_scale, payload={"scale": 3})
        with RemoteWorkerPool([("127.0.0.1", port)]) as pool:
            futures = [
                pool.submit(_scaled, item, context=context) for item in (1, 2, 3)
            ]
            assert [f.result() for f in futures] == [3, 6, 9]
        assert pool.stats["local_fallbacks"] == 0

    def test_ordinary_exceptions_propagate_without_retry(self, worker_fleet):
        _proc, port = worker_fleet(slots=1)
        with RemoteWorkerPool([("127.0.0.1", port)]) as pool:
            bad = pool.submit(_boom, 7)
            with pytest.raises(ValueError, match="boom 7"):
                bad.result()
            assert pool.submit(_echo, "after").result() == "after"
        stats = pool.stats
        assert stats["retries"] == 0
        assert stats["quarantined"] == 0
        assert stats["worker_failures"] == 0

    def test_shared_pool_adopts_remote_pool(self, worker_fleet):
        _proc, port = worker_fleet(slots=1)
        pool = RemoteWorkerPool([("127.0.0.1", port)])
        with shared_pool(pool=pool) as active:
            assert active is pool
            assert active.map(_double, [10]) == [20]
        # Ownership transferred: leaving the scope closed the fleet.
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_echo, 1)

    def test_spans_hosts_exempts_remote_pool_from_core_clamp(self, monkeypatch):
        import repro.runtime.capacity as runtime_capacity

        monkeypatch.setattr(runtime_capacity, "_host_cores", lambda: 1)
        local = SimpleNamespace(max_workers=6, spans_hosts=False)
        remote = SimpleNamespace(max_workers=6, spans_hosts=True)
        assert _parallel_budget(8, local) == 1  # clamped to this host
        assert _parallel_budget(8, remote) == 6  # slots live on other hosts


# --------------------------------------------------------------------------- #
# Fault tolerance
# --------------------------------------------------------------------------- #


class TestLeaseRecovery:
    def test_sigkilled_worker_leases_reassigned_mid_task(self, worker_fleet):
        fleet = [worker_fleet(slots=1), worker_fleet(slots=1)]
        addresses = [("127.0.0.1", port) for _proc, port in fleet]
        pool = RemoteWorkerPool(addresses, retry_backoff_s=0.01)
        try:
            assert pool.live_workers == 2
            futures = [pool.submit(_slow_double, value) for value in range(6)]
            iterator = as_completed(futures)
            next(iterator)  # both workers are warm and mid-task now
            fleet[0][0].kill()
            results = sorted(f.result() for f in futures)
        finally:
            pool.close()
        assert results == [0, 2, 4, 6, 8, 10]
        stats = pool.stats
        assert stats["completed"] == 6
        assert stats["worker_failures"] == 1
        assert stats["lease_reassignments"] >= 1
        assert stats["quarantined"] == 0

    def test_host_poison_task_quarantined_with_zero_budget(self, worker_fleet):
        _proc, port = worker_fleet(slots=1)
        pool = RemoteWorkerPool(
            [("127.0.0.1", port)], max_task_retries=0, retry_backoff_s=0.0
        )
        try:
            bad = pool.submit(_kill_worker_host, "p")
            with pytest.raises(WorkerCrashError, match="quarantined"):
                bad.result()
            # The fleet is gone, but the pool still completes work locally.
            assert pool.submit(_echo, 1).result() == 1
        finally:
            pool.close()
        stats = pool.stats
        assert stats["quarantined"] == 1
        assert stats["worker_failures"] == 1
        assert stats["lease_reassignments"] == 0
        assert stats["local_fallbacks"] == 1

    def test_silent_worker_suspected_and_late_result_discarded(self):
        scripted = _ScriptedWorker()
        pool = RemoteWorkerPool(
            [("127.0.0.1", scripted.port)],
            liveness_timeout_s=0.4,
            retry_backoff_s=0.0,
        )
        try:
            future = pool.submit(_echo, 5)
            task = scripted.wait_task()
            # The lease times out on the silent host; with no other live
            # worker the reassignment lands on the local fallback path.
            assert future.result(timeout=30) == 5
            stats = pool.stats
            assert stats["lease_timeouts"] == 1
            assert stats["lease_reassignments"] == 1
            assert stats["local_fallbacks"] == 1
            # The host wakes up and delivers the stale lease's result: the
            # link recovers, but the duplicate is discarded, not re-counted.
            scripted.send_result(task["task_id"], 999)
            _wait_for(
                lambda: pool.stats["duplicate_results"] == 1,
                message="late result was never discarded as a duplicate",
            )
            assert future.result() == 5
            assert pool.stats["suspect_recoveries"] == 1
            assert pool.stats["completed"] == 1
        finally:
            pool.close()
            scripted.close()


class TestGracefulDegradation:
    def test_unreachable_workers_degrade_to_local_execution(self):
        pool = RemoteWorkerPool(
            [("127.0.0.1", _dead_port())], connect_timeout_s=0.5
        )
        try:
            assert pool.live_workers == 0
            assert pool.submit(_double, 21).result() == 42
            assert pool.map(_echo, [1, 2, 3]) == [1, 2, 3]
        finally:
            pool.close()
        stats = pool.stats
        assert stats["connect_failures"] == 1
        assert stats["remote_workers"] == 0
        assert stats["local_fallbacks"] == 4
        assert stats["completed"] == 4

    def test_losing_the_whole_fleet_mid_queue_drains_locally(self, worker_fleet):
        proc, port = worker_fleet(slots=1)
        pool = RemoteWorkerPool([("127.0.0.1", port)], retry_backoff_s=0.0)
        try:
            futures = [pool.submit(_slow_double, value) for value in range(4)]
            proc.kill()  # one lease in flight, three tasks queued
            results = [f.result(timeout=30) for f in futures]
        finally:
            pool.close()
        assert results == [0, 2, 4, 6]
        stats = pool.stats
        assert stats["completed"] == 4
        assert stats["worker_failures"] == 1
        assert stats["local_fallbacks"] >= 3


class TestCacheSync:
    def test_observe_cache_stores_records_and_unhooks(self, tmp_path):
        cache = CapacityCache(tmp_path)
        with observe_cache_stores() as entries:
            cache.store({"k": 1}, 12.0)
        assert entries == [({"k": 1}, 12.0)]
        cache.store({"k": 2}, 13.0)  # observer removed: not recorded
        assert len(entries) == 1

    def test_apply_synced_entries_validates_defensively(self, tmp_path):
        cache = CapacityCache(tmp_path)
        entries = [
            ({"k": 1}, 10.0),  # fresh: applied
            ({"k": 1}, 11.0),  # different value for same key: conflict
            ("garbage",),  # wrong shape
            ({"k": 2}, -5.0),  # non-positive capacity
            (["not", "dict"], 3.0),  # non-dict signature
            ({"k": 3}, float("nan")),  # non-finite capacity
        ]
        assert apply_synced_entries(cache, entries) == {
            "applied": 1,
            "conflicts": 1,
            "rejected": 4,
        }
        # First-writer wins; re-applying the same value is a silent no-op.
        assert cache.load({"k": 1}, count=False) == 10.0
        assert apply_synced_entries(cache, [({"k": 1}, 10.0)]) == {
            "applied": 0,
            "conflicts": 0,
            "rejected": 0,
        }

    def test_worker_cache_entries_piggy_back_home(self, worker_fleet, tmp_path):
        _proc, port = worker_fleet(slots=1)
        coordinator_dir = tmp_path / "coordinator"
        worker_dir = str(tmp_path / "workerside")
        coordinator_cache = CapacityCache(coordinator_dir)
        coordinator_cache.store({"remote-test-key": "b"}, 50.0)
        pool = RemoteWorkerPool(
            [("127.0.0.1", port)], cache_sync=coordinator_cache
        )
        try:
            assert pool.submit(_store_entry, (worker_dir, "a", 123.0)).result() == 123.0
            assert pool.submit(_store_entry, (worker_dir, "b", 99.0)).result() == 99.0
        finally:
            pool.close()
        # The fresh entry crossed hosts; the conflicting one was kept out.
        assert coordinator_cache.load({"remote-test-key": "a"}, count=False) == 123.0
        assert coordinator_cache.load({"remote-test-key": "b"}, count=False) == 50.0
        stats = pool.stats
        assert stats["cache_entries_applied"] == 1
        assert stats["cache_conflicts"] == 1
        assert stats["cache_rejected"] == 0


# --------------------------------------------------------------------------- #
# Acceptance: a fig13-shaped sweep survives a mid-task host kill bit-identically
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def engines():
    return build_engine_pair("dlrm-rmc1", "skylake", None)


@pytest.fixture(scope="module")
def config():
    return ServingConfig(batch_size=256, num_cores=8)


SWEEP_KWARGS = dict(num_queries=60, iterations=3, max_queries=600)


class TestBitIdenticalSweep:
    def test_sweep_with_host_killed_mid_task_matches_serial(
        self, engines, config, worker_fleet
    ):
        generator = LoadGenerator(seed=7)
        searches = [
            CapacitySearch.for_fleet(
                homogeneous_fleet(engines, config, size), policy, sla, generator,
                **SWEEP_KWARGS,
            )
            for size in (1, 2)
            for policy in ("least-outstanding", "power-of-two")
            for sla in (0.08, 0.1)
        ]
        serial = [search.run() for search in searches]

        fleet = [worker_fleet(slots=2), worker_fleet(slots=2)]
        addresses = [("127.0.0.1", port) for _proc, port in fleet]
        pool = RemoteWorkerPool(addresses, retry_backoff_s=0.01)
        killed = threading.Event()

        def _assassin():
            # Once the sweep is flowing, SIGKILL a worker that is holding
            # at least one task lease *right now* — a mid-task host loss.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                with pool._lock:
                    started = pool._stats["completed"] >= 1
                    busy = [
                        link
                        for link in pool._links
                        if link.alive and link.inflight
                    ]
                if started and busy:
                    victim_port = busy[0].address[1]
                    for proc, port in fleet:
                        if port == victim_port:
                            proc.kill()
                            killed.set()
                            return
                time.sleep(0.005)

        assassin = threading.Thread(target=_assassin, daemon=True)
        try:
            assert pool.live_workers == 2
            assassin.start()
            distributed = run_capacity_searches(searches, jobs=4, pool=pool)
            assassin.join(timeout=30)
        finally:
            pool.close()

        assert killed.is_set(), "no busy worker was ever available to kill"
        stats = pool.stats
        assert stats["worker_failures"] == 1
        assert stats["lease_reassignments"] >= 1
        assert stats["quarantined"] == 0
        for one, many in zip(serial, distributed):
            assert many.max_qps == one.max_qps
            assert many.result.p95_latency_s == one.result.p95_latency_s
            assert many.result.latencies_s == one.result.latencies_s
