"""Tests for the perf-trend trajectory table and regression gate."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from perf_trend import (  # noqa: E402
    build_table,
    build_throughput_table,
    case_events_per_sec,
    case_peak_rss_mb,
    case_seconds,
    check_regressions,
    load_benches,
    main,
)


def _write_bench(root, number, cases, mode="full", extras=None):
    """``extras``: case name -> dict of extra per-case fields to merge."""
    payload = {
        "bench_id": f"BENCH_{number}",
        "mode": mode,
        "cases": {name: {"seconds": seconds} for name, seconds in cases.items()},
    }
    for name, fields in (extras or {}).items():
        payload["cases"].setdefault(name, {}).update(fields)
    (root / f"BENCH_{number}.json").write_text(json.dumps(payload))


class TestLoading:
    def test_benches_sorted_by_number(self, tmp_path):
        _write_bench(tmp_path, 10, {"a": 1.0})
        _write_bench(tmp_path, 2, {"a": 2.0})
        _write_bench(tmp_path, 3, {"a": 1.5})
        assert [n for n, _ in load_benches(tmp_path)] == [2, 3, 10]

    def test_case_seconds_skips_malformed_entries(self, tmp_path):
        _write_bench(tmp_path, 2, {"a": 1.0})
        payload = json.loads((tmp_path / "BENCH_2.json").read_text())
        payload["cases"]["broken"] = {"no_seconds": True}
        payload["cases"]["zero"] = {"seconds": 0.0}
        assert case_seconds(payload) == {"a": 1.0}

    def test_quick_mode_benches_excluded(self, tmp_path, capsys):
        # Quick-mode seconds are a different workload; a committed quick
        # recording must neither trip the gate nor mask a real regression.
        _write_bench(tmp_path, 2, {"a": 1.0})
        _write_bench(tmp_path, 3, {"a": 0.2}, mode="quick")
        _write_bench(tmp_path, 4, {"a": 1.1})
        benches = load_benches(tmp_path)
        assert [n for n, _ in benches] == [2, 4]
        assert "skipping BENCH_3.json" in capsys.readouterr().out
        assert check_regressions(benches, 1.25) == []

    def test_unreadable_bench_fails_loudly(self, tmp_path):
        (tmp_path / "BENCH_2.json").write_text("{not json")
        with pytest.raises(SystemExit, match="unreadable"):
            load_benches(tmp_path)

    def test_repo_bench_files_load(self):
        # The committed BENCH_*.json trajectory must stay parseable: CI runs
        # the gate against exactly these files.
        root = Path(__file__).resolve().parent.parent
        benches = load_benches(root)
        assert len(benches) >= 2
        assert all(case_seconds(bench) for _, bench in benches)


class TestTable:
    def test_table_contains_all_benches_and_cases(self, tmp_path):
        _write_bench(tmp_path, 2, {"fig9": 1.0, "fig15": 2.0})
        _write_bench(tmp_path, 3, {"fig9": 0.5, "fig15": 1.0, "fresh": 0.3})
        table = build_table(load_benches(tmp_path))
        assert "BENCH_2 (s)" in table and "BENCH_3 (s)" in table
        assert "| fig9 | 1.000 | 0.500 | 2.00x |" in table
        assert "| fresh | — | 0.300 | new |" in table
        assert "geomean" in table

    def test_empty_root(self, tmp_path):
        assert "no BENCH_" in build_table(load_benches(tmp_path))


class TestRegressionGate:
    def test_improvement_passes(self, tmp_path):
        _write_bench(tmp_path, 2, {"a": 1.0})
        _write_bench(tmp_path, 3, {"a": 0.9})
        assert check_regressions(load_benches(tmp_path), 1.25) == []

    def test_small_regression_within_threshold_passes(self, tmp_path):
        _write_bench(tmp_path, 2, {"a": 1.0})
        _write_bench(tmp_path, 3, {"a": 1.2})
        assert check_regressions(load_benches(tmp_path), 1.25) == []

    def test_large_regression_fails(self, tmp_path):
        _write_bench(tmp_path, 2, {"a": 1.0})
        _write_bench(tmp_path, 3, {"a": 1.6})
        failures = check_regressions(load_benches(tmp_path), 1.25)
        assert len(failures) == 1
        assert "a:" in failures[0] and "1.60x" in failures[0]

    def test_compared_against_best_prior_not_latest(self, tmp_path):
        # BENCH_3 was slower than BENCH_2; BENCH_4 must still be held to
        # BENCH_2's (best) number.
        _write_bench(tmp_path, 2, {"a": 1.0})
        _write_bench(tmp_path, 3, {"a": 2.0})
        _write_bench(tmp_path, 4, {"a": 1.5})
        failures = check_regressions(load_benches(tmp_path), 1.25)
        assert len(failures) == 1
        assert "best prior 1.000s" in failures[0]

    def test_new_case_never_flagged(self, tmp_path):
        _write_bench(tmp_path, 2, {"a": 1.0})
        _write_bench(tmp_path, 3, {"a": 1.0, "brand-new": 99.0})
        assert check_regressions(load_benches(tmp_path), 1.25) == []

    def test_dropped_case_fails_the_gate(self, tmp_path):
        # Removing (or renaming) a tracked case must not silently un-track
        # its regressions.
        _write_bench(tmp_path, 2, {"a": 1.0, "b": 1.0})
        _write_bench(tmp_path, 3, {"a": 1.0})
        failures = check_regressions(load_benches(tmp_path), 1.25)
        assert len(failures) == 1
        assert "b: tracked by prior benches but missing" in failures[0]

    def test_single_bench_passes(self, tmp_path):
        _write_bench(tmp_path, 2, {"a": 1.0})
        assert check_regressions(load_benches(tmp_path), 1.25) == []


class TestThroughputGate:
    """events_per_sec is higher-is-better: the comparison inverts."""

    def test_throughput_drop_past_threshold_fails(self, tmp_path):
        _write_bench(
            tmp_path, 7, {"big": 4.0},
            extras={"big": {"events_per_sec": 250000.0}},
        )
        _write_bench(
            tmp_path, 8, {"big": 4.1},
            extras={"big": {"events_per_sec": 150000.0}},
        )
        failures = check_regressions(load_benches(tmp_path), 1.25)
        assert len(failures) == 1
        assert "events/sec" in failures[0] and "big" in failures[0]

    def test_throughput_within_threshold_passes(self, tmp_path):
        _write_bench(
            tmp_path, 7, {"big": 4.0},
            extras={"big": {"events_per_sec": 250000.0}},
        )
        _write_bench(
            tmp_path, 8, {"big": 4.1},
            extras={"big": {"events_per_sec": 210000.0}},
        )
        assert check_regressions(load_benches(tmp_path), 1.25) == []

    def test_throughput_compared_against_best_prior(self, tmp_path):
        _write_bench(
            tmp_path, 7, {"big": 4.0},
            extras={"big": {"events_per_sec": 300000.0}},
        )
        _write_bench(
            tmp_path, 8, {"big": 4.0},
            extras={"big": {"events_per_sec": 100000.0}},
        )
        _write_bench(
            tmp_path, 9, {"big": 4.0},
            extras={"big": {"events_per_sec": 200000.0}},
        )
        failures = check_regressions(load_benches(tmp_path), 1.25)
        assert len(failures) == 1
        assert "300,000" in failures[0]

    def test_benches_without_the_field_are_tolerated(self, tmp_path):
        # BENCH_1..6 predate events_per_sec: they must neither trip nor
        # mask a throughput failure, and the extractor must skip them.
        _write_bench(tmp_path, 6, {"big": 4.0})
        _write_bench(
            tmp_path, 7, {"big": 4.0},
            extras={"big": {"events_per_sec": 250000.0}},
        )
        benches = load_benches(tmp_path)
        assert check_regressions(benches, 1.25) == []
        assert case_events_per_sec(benches[0][1]) == {}
        assert case_events_per_sec(benches[1][1]) == {"big": 250000.0}


class TestThroughputTable:
    def test_empty_without_any_throughput_case(self, tmp_path):
        _write_bench(tmp_path, 2, {"a": 1.0})
        assert build_throughput_table(load_benches(tmp_path)) == ""

    def test_table_rates_trend_and_rss(self, tmp_path):
        _write_bench(
            tmp_path, 7, {"big": 4.0},
            extras={"big": {"events_per_sec": 200000.0, "peak_rss_mb": 46.0}},
        )
        _write_bench(
            tmp_path, 8, {"big": 4.0},
            extras={"big": {"events_per_sec": 240000.0, "peak_rss_mb": 47.5}},
        )
        table = build_throughput_table(load_benches(tmp_path))
        assert "| big | 200,000 | 240,000 | 1.20x |" in table
        assert "peak RSS at BENCH_8" in table and "47.5 MiB" in table

    def test_rss_extractor_skips_absent(self, tmp_path):
        _write_bench(tmp_path, 6, {"a": 1.0})
        (_, bench), = load_benches(tmp_path)
        assert case_peak_rss_mb(bench) == {}


class TestMain:
    def test_exit_zero_and_summary_written(self, tmp_path, monkeypatch, capsys):
        _write_bench(tmp_path, 2, {"a": 1.0})
        _write_bench(tmp_path, 3, {"a": 0.8})
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert main(["--root", str(tmp_path)]) == 0
        assert "Benchmark trajectory" in summary.read_text()
        assert "no case of BENCH_3 regresses" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        _write_bench(tmp_path, 2, {"a": 1.0})
        _write_bench(tmp_path, 3, {"a": 2.0})
        assert main(["--root", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_threshold_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--root", str(tmp_path), "--threshold", "0.9"])

    def test_committed_trajectory_passes_gate(self, monkeypatch, capsys):
        # The gate CI runs: the committed BENCH_*.json must satisfy it.
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        root = Path(__file__).resolve().parent.parent
        assert main(["--root", str(root)]) == 0
        capsys.readouterr()
