"""Tests for the experiment framework and the lightweight drivers.

The heavyweight drivers (Fig. 9-14) are exercised at strongly reduced
fidelity here; the benchmark suite runs them at their full defaults.
"""

import pytest

from repro.experiments import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
    run_experiments,
)
from repro.experiments.registry import register_experiment
from repro.serving.sla import SLATier


class TestExperimentResult:
    def test_add_row_and_column(self):
        result = ExperimentResult("x", "t", headers=["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]

    def test_row_length_mismatch(self):
        result = ExperimentResult("x", "t", headers=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_unknown_column(self):
        result = ExperimentResult("x", "t", headers=["a"])
        with pytest.raises(KeyError):
            result.column("z")

    def test_to_table_and_dict(self):
        result = ExperimentResult("fig-x", "demo", headers=["a"], notes="note")
        result.add_row(1.2345)
        text = result.to_table()
        assert "[fig-x] demo" in text
        assert "note" in text
        payload = result.to_dict()
        assert payload["experiment_id"] == "fig-x"
        assert payload["rows"] == [[1.2345]]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table-1", "table-2", "figure-1", "figure-3", "figure-4", "figure-5",
            "figure-6", "figure-7", "figure-9", "figure-10", "figure-11",
            "figure-12", "figure-13", "figure-14",
        }
        assert expected <= set(available_experiments())

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("figure-99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_experiment("table-1")(lambda: None)

    def test_run_experiments_with_overrides(self):
        results = run_experiments(
            ["table-1", "figure-5"], overrides={"figure-5": {"num_samples": 2000}}
        )
        assert [r.experiment_id for r in results] == ["table-1", "figure-5"]


class TestLightweightDrivers:
    def test_table1_has_all_models(self):
        result = run_experiment("table-1")
        assert len(result.rows) == 8
        assert "dlrm-rmc1" in result.column("model")

    def test_table2_bottlenecks_agree_with_configs(self):
        result = run_experiment("table-2")
        assert result.metadata["bottleneck_agreement"] >= 0.75

    def test_fig1_recommendation_models_memory_bound(self):
        result = run_experiment("figure-1")
        assert result.metadata["max_rec_intensity"] < result.metadata["ridge_point"]
        rows = {row[0]: row for row in result.rows}
        assert rows["dlrm-rmc1"][-1] is True  # memory-bound column
        # The CNN reference sits at far higher operational intensity than any
        # recommendation model.
        resnet_intensity = rows["resnet50"][1]
        assert resnet_intensity > result.metadata["max_rec_intensity"]

    def test_fig3_dominant_categories(self):
        result = run_experiment("figure-3")
        dominant = result.metadata["dominant_by_model"]
        assert dominant["dlrm-rmc1"] == "embedding"
        assert dominant["wnd"] == "fc"
        assert dominant["dien"] == "recurrent"

    def test_fig4_crossovers_exist(self):
        result = run_experiment("figure-4")
        crossovers = result.metadata["crossover_by_model"]
        assert all(c is None or 1 <= c <= 1024 for c in crossovers.values())
        # At least one cheap model should not win on the GPU at batch 1.
        assert crossovers["ncf"] is None or crossovers["ncf"] > 1

    def test_fig5_production_heavier_tail(self):
        result = run_experiment("figure-5", num_samples=5000)
        assert (
            result.metadata["production_tail_ratio_p99_p50"]
            > result.metadata["lognormal_tail_ratio_p99_p50"]
        )
        assert 0.35 <= result.metadata["production_top_quartile_work_share"] <= 0.8

    def test_fig6_large_queries_half_the_work(self):
        result = run_experiment("figure-6", num_queries=500, models=["dlrm-rmc1", "wnd"])
        for row in result.rows:
            small_share, large_share = row[1], row[2]
            assert small_share + large_share == pytest.approx(1.0, abs=0.01)
            assert 0.3 <= large_share <= 0.7
            assert row[3] > 1.0  # GPU accelerates the large-query population

    def test_fig7_subsample_gap_small(self):
        result = run_experiment(
            "figure-7", num_nodes=6, queries_per_node=60, subsample_nodes=2
        )
        assert result.metadata["max_gap"] < 0.4
        # The gap is now reported per balancing policy (random + load-aware).
        assert set(result.metadata["gap_by_policy"]) == {
            "random", "least-outstanding"
        }
        assert len(result.rows) == 4  # 2 cases x 2 policies


class TestHeavyDriversReduced:
    def test_fig9_optimal_batch_grows_with_relaxed_sla(self):
        result = run_experiment(
            "figure-9",
            models=["dlrm-rmc3"],
            tiers=[SLATier.LOW, SLATier.HIGH],
            batch_sizes=[32, 64, 128, 256, 512],
            num_queries=150,
            capacity_iterations=3,
        )
        optima = result.metadata["optimal_batch"]["dlrm-rmc3"]
        assert optima["high"] >= optima["low"]

    def test_fig10_interior_optimum(self):
        result = run_experiment(
            "figure-10",
            cases=[("dlrm-rmc1", 256)],
            thresholds=[1, 128, 256, 512, 1000],
            num_queries=150,
            capacity_iterations=3,
        )
        optimum = result.metadata["optimal_threshold"]["dlrm-rmc1"]
        assert 1 < optimum <= 1000

    def test_fig13_tuned_batch_reduces_tails(self):
        # Reduced-fidelity smoke check: at this miniature scale the p95 is
        # noisy around the saturation knee, so only the p99 direction is
        # asserted strictly; the benchmark runs the full-scale experiment.
        result = run_experiment(
            "figure-13",
            num_nodes=1,
            num_cores_per_node=12,
            duration_s=4.0,
            load_fraction=1.1,
        )
        assert result.metadata["p99_reduction"] > 1.0
        assert result.metadata["p95_reduction"] > 0.7

    def test_fig13_policy_sweep_metadata(self):
        result = run_experiment(
            "figure-13",
            num_nodes=2,
            num_cores_per_node=8,
            duration_s=3.0,
            policies=("random", "least-outstanding"),
        )
        by_policy = result.metadata["by_policy"]
        assert set(by_policy) == {"random", "least-outstanding"}
        assert len(result.rows) == 4  # 2 policies x (fixed, tuned)
        for policy, entry in by_policy.items():
            shares = entry["tuned_query_shares"]
            assert sum(shares.values()) == pytest.approx(1.0)
        # The headline reductions report the first policy in the sweep.
        assert result.metadata["p95_reduction"] == pytest.approx(
            by_policy["random"]["p95_reduction"]
        )
        # The whole replay rode the dense latency-table fast path.
        assert result.metadata["scalar_fallbacks"] == 0
