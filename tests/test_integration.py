"""End-to-end integration tests across the whole stack.

Each test stitches several subsystems together the way the paper's evaluation
does: model zoo -> engines -> load generator -> serving simulator ->
DeepRecSched, at strongly reduced fidelity so the suite stays quick.
"""

import pytest

import repro
from repro import (
    DeepRecSched,
    LoadGenerator,
    ServingConfig,
    ServingSimulator,
    SLATier,
    build_engine_pair,
    get_model,
)
from repro.core.static_scheduler import StaticSchedulerPolicy
from repro.infra import DatacenterCluster, DeepRecInfra, InfraConfig
from repro.serving.capacity import find_max_qps


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("DeepRecSched", "DeepRecInfra", "LoadGenerator", "SLATier"):
            assert name in repro.__all__

    def test_model_inference_through_public_api(self):
        model = get_model("wnd", rng=0, materialized_rows=256)
        batch = model.sample_batch(4, rng=1)
        ctr = model.predict_ctr(batch)
        assert ctr.shape == (4,)


class TestServingPipeline:
    def test_generate_simulate_measure(self):
        engines = build_engine_pair("dien", "skylake", None)
        generator = LoadGenerator(seed=21)
        queries = generator.with_rate(400.0).generate(250)
        result = ServingSimulator(engines, ServingConfig(batch_size=128)).run(queries)
        assert result.measured_queries > 0
        assert 0 < result.p95_latency_s < 10.0
        assert 0 < result.cpu_utilization <= 1.0

    def test_capacity_consistent_with_direct_simulation(self):
        engines = build_engine_pair("ncf", "skylake", None)
        generator = LoadGenerator(seed=4)
        sla_s = 0.005
        capacity = find_max_qps(
            engines, ServingConfig(batch_size=64), sla_s, generator,
            num_queries=200, iterations=4,
        )
        assert capacity.feasible
        # Re-simulating at the reported capacity meets the SLA.
        verification = ServingSimulator(engines, ServingConfig(batch_size=64)).run(
            generator.with_rate(capacity.max_qps).generate(200)
        )
        assert verification.p95_latency_s <= sla_s * 1.25

    def test_tuned_operating_point_beats_static_for_two_model_classes(self):
        for model in ("dlrm-rmc1", "wnd"):
            scheduler = DeepRecSched(
                model, gpu_platform=None, num_queries=150, capacity_iterations=3, seed=2
            )
            baseline = scheduler.baseline(SLATier.MEDIUM)
            tuned = scheduler.optimize_cpu(SLATier.MEDIUM)
            assert tuned.qps > baseline.qps


class TestInfraIntegration:
    def test_infra_capacity_with_gpu_offload(self):
        infra = DeepRecInfra(InfraConfig(model="dlrm-rmc1", seed=9))
        config = ServingConfig(batch_size=256, offload_threshold=384)
        capacity = infra.capacity(config, SLATier.MEDIUM, num_queries=150, iterations=3)
        assert capacity.max_qps > 0
        assert capacity.result.gpu_work_fraction > 0

    def test_cluster_uses_same_static_policy_as_scheduler(self):
        policy = StaticSchedulerPolicy()
        cluster = DatacenterCluster("dlrm-rmc3", num_nodes=3, seed=1)
        generator = LoadGenerator(seed=1)
        queries = generator.with_rate(60.0).generate(150)
        fixed_batch = policy.batch_size(cluster._engines[0].cpu.platform)
        result = cluster.run(queries, batch_size=fixed_batch)
        assert result.p95_latency_s > 0


class TestPaperHeadlineShapes:
    """Coarse checks that the headline result directions hold end to end."""

    @pytest.fixture(scope="class")
    def operating_points(self):
        scheduler = DeepRecSched(
            "dlrm-rmc1", num_queries=150, capacity_iterations=3, seed=13
        )
        baseline = scheduler.baseline(SLATier.MEDIUM)
        cpu = scheduler.optimize_cpu(SLATier.MEDIUM)
        gpu = scheduler.optimize_gpu(SLATier.MEDIUM, batch_size=cpu.batch_size)
        return baseline, cpu, gpu

    def test_throughput_ordering(self, operating_points):
        baseline, cpu, gpu = operating_points
        assert baseline.qps < cpu.qps < gpu.qps

    def test_cpu_speedup_in_plausible_band(self, operating_points):
        baseline, cpu, _ = operating_points
        assert 1.2 <= cpu.qps / baseline.qps <= 6.0

    def test_gpu_adds_further_speedup(self, operating_points):
        _, cpu, gpu = operating_points
        assert 1.05 <= gpu.qps / cpu.qps <= 4.0

    def test_gpu_handles_minority_of_queries_but_large_work_share(self, operating_points):
        _, _, gpu = operating_points
        assert 0.05 <= gpu.gpu_work_fraction <= 0.8
