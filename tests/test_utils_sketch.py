"""Property tests for the streaming quantile sketch and its tracker mode.

These tests are the enforcement arm of the contract documented in
``repro.utils.sketch``: pre-compaction exactness, the normalised
rank-error bound on adversarial streams, merge order-independence of the
exactly-tracked moments, ``add``/``extend`` equivalence, and the O(1)
footprint that makes ``PercentileTracker(mode="sketch")`` safe for
million-query traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.sketch import DEFAULT_K, RANK_ERROR_BOUND, QuantileSketch
from repro.utils.stats import PercentileTracker

SETTINGS = settings(max_examples=60, deadline=None)

#: Worst-case retained floats for any stream length (see sketch docstring).
FOOTPRINT_BOUND = 3 * DEFAULT_K + 8 * 64

PCTS = (1.0, 5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0)


def normalised_rank_error(data, value, pct):
    """Distance (in normalised rank) from ``value`` to the exact pct."""
    ordered = np.sort(np.asarray(data, dtype=np.float64))
    n = ordered.size
    lo = np.searchsorted(ordered, value, side="left") / n
    hi = np.searchsorted(ordered, value, side="right") / n
    q = pct / 100.0
    if lo <= q <= hi:
        return 0.0
    return min(abs(lo - q), abs(hi - q))


def adversarial_stream(kind, n, seed):
    """Streams chosen to stress the compactor hierarchy, not flatter it."""
    rng = np.random.default_rng(seed)
    if kind == "bimodal":
        tight = rng.normal(1.0, 0.01, n)
        far = rng.normal(1000.0, 1.0, n)
        return np.where(rng.random(n) < 0.5, tight, far)
    if kind == "heavy-tail":
        return rng.pareto(1.05, n) + 1.0
    if kind == "constant":
        return np.full(n, 7.25)
    if kind == "sorted":
        return np.sort(rng.random(n))
    raise AssertionError(kind)


class TestExactnessFloor:
    """Streams of at most k samples reproduce numpy.percentile bit for bit."""

    @SETTINGS
    @given(
        samples=st.lists(
            st.floats(1e-6, 1e9), min_size=1, max_size=DEFAULT_K - 1
        ),
        pct=st.floats(0.0, 100.0),
    )
    def test_matches_numpy_before_first_compaction(self, samples, pct):
        sketch = QuantileSketch()
        sketch.extend(np.asarray(samples))
        assert sketch.percentile(pct) == float(np.percentile(samples, pct))

    def test_exact_moments_at_any_length(self):
        data = adversarial_stream("heavy-tail", 50_000, seed=1)
        sketch = QuantileSketch()
        sketch.extend(data)
        assert sketch.count == data.size
        assert sketch.minimum == float(data.min())
        assert sketch.maximum == float(data.max())
        assert sketch.mean() == pytest.approx(float(data.mean()), rel=1e-12)

    def test_extremes_exact_after_compaction(self):
        data = adversarial_stream("bimodal", 30_000, seed=2)
        sketch = QuantileSketch()
        sketch.extend(data)
        assert sketch.percentile(0.0) == float(data.min())
        assert sketch.percentile(100.0) == float(data.max())


class TestRankErrorBound:
    """The documented 1% normalised rank-error contract, adversarially."""

    @SETTINGS
    @given(
        kind=st.sampled_from(["bimodal", "heavy-tail", "constant", "sorted"]),
        n=st.integers(1_000, 120_000),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_error_within_bound(self, kind, n, seed):
        data = adversarial_stream(kind, n, seed)
        sketch = QuantileSketch()
        sketch.extend(data)
        for pct in PCTS:
            err = normalised_rank_error(data, sketch.percentile(pct), pct)
            assert err <= RANK_ERROR_BOUND, (kind, n, pct, err)

    @SETTINGS
    @given(
        n=st.integers(1_000, 60_000),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_percentiles_monotone_in_pct(self, n, seed):
        sketch = QuantileSketch()
        sketch.extend(adversarial_stream("heavy-tail", n, seed))
        values = [sketch.percentile(pct) for pct in PCTS]
        assert values == sorted(values)


class TestAddExtendEquivalence:
    """Satellite contract: extend() is a fast path, not a different sketch."""

    @SETTINGS
    @given(
        samples=st.lists(st.floats(1e-6, 1e6), min_size=1, max_size=3_000),
    )
    def test_same_percentiles_and_footprint(self, samples):
        one_by_one = QuantileSketch()
        for value in samples:
            one_by_one.add(value)
        bulk = QuantileSketch()
        bulk.extend(np.asarray(samples))
        assert bulk.count == one_by_one.count
        assert bulk.footprint() == one_by_one.footprint()
        for pct in PCTS:
            assert bulk.percentile(pct) == one_by_one.percentile(pct)

    def test_extend_accepts_plain_iterables(self):
        sketch = QuantileSketch()
        sketch.extend(range(100))
        other = QuantileSketch()
        other.extend(np.arange(100, dtype=np.float64))
        assert sketch.percentile(50.0) == other.percentile(50.0)


class TestMerge:
    """Merging preserves exact moments and respects the error bound,
    independently of merge order."""

    @staticmethod
    def _parts(seed):
        rng = np.random.default_rng(seed)
        sizes = rng.integers(1, 20_000, size=3)
        kinds = ("bimodal", "heavy-tail", "sorted")
        return [
            adversarial_stream(kind, int(n), seed + i)
            for i, (kind, n) in enumerate(zip(kinds, sizes))
        ]

    @staticmethod
    def _sketch_of(data):
        sketch = QuantileSketch()
        sketch.extend(data)
        return sketch

    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_merge_within_bound_of_union(self, seed):
        a, b, _ = self._parts(seed)
        merged = self._sketch_of(a)
        merged.merge(self._sketch_of(b))
        union = np.concatenate([a, b])
        assert merged.count == union.size
        for pct in PCTS:
            err = normalised_rank_error(union, merged.percentile(pct), pct)
            assert err <= RANK_ERROR_BOUND, (pct, err)

    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_commutativity_of_exact_moments(self, seed):
        a, b, _ = self._parts(seed)
        ab = self._sketch_of(a)
        ab.merge(self._sketch_of(b))
        ba = self._sketch_of(b)
        ba.merge(self._sketch_of(a))
        union = np.concatenate([a, b])
        assert ab.count == ba.count == union.size
        assert ab.minimum == ba.minimum == float(union.min())
        assert ab.maximum == ba.maximum == float(union.max())
        assert ab.mean() == pytest.approx(ba.mean(), rel=1e-12)
        for pct in PCTS:
            for merged in (ab, ba):
                err = normalised_rank_error(union, merged.percentile(pct), pct)
                assert err <= RANK_ERROR_BOUND, (pct, err)

    @SETTINGS
    @given(seed=st.integers(0, 2**31 - 1))
    def test_associativity_of_exact_moments(self, seed):
        a, b, c = self._parts(seed)
        left = self._sketch_of(a)
        left.merge(self._sketch_of(b))
        left.merge(self._sketch_of(c))
        bc = self._sketch_of(b)
        bc.merge(self._sketch_of(c))
        right = self._sketch_of(a)
        right.merge(bc)
        union = np.concatenate([a, b, c])
        assert left.count == right.count == union.size
        assert left.minimum == right.minimum == float(union.min())
        assert left.maximum == right.maximum == float(union.max())
        assert left.mean() == pytest.approx(right.mean(), rel=1e-12)
        for pct in PCTS:
            for merged in (left, right):
                err = normalised_rank_error(union, merged.percentile(pct), pct)
                assert err <= RANK_ERROR_BOUND, (pct, err)

    def test_merge_empty_is_noop(self):
        sketch = QuantileSketch()
        sketch.extend(np.arange(100, dtype=np.float64))
        before = sketch.percentile(50.0)
        sketch.merge(QuantileSketch())
        assert sketch.count == 100
        assert sketch.percentile(50.0) == before

    def test_merge_mismatched_k_raises(self):
        with pytest.raises(ValueError, match="k="):
            QuantileSketch(k=64).merge(QuantileSketch(k=128))

    def test_merge_self_raises(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError, match="itself"):
            sketch.merge(sketch)


class TestFootprint:
    def test_bounded_for_million_sample_stream(self):
        # The whole point of the sketch tier: the retained set stays O(1)
        # while the stream grows without bound.
        sketch = QuantileSketch()
        rng = np.random.default_rng(3)
        for _ in range(10):
            sketch.extend(rng.pareto(1.05, 100_000) + 1.0)
        assert sketch.count == 1_000_000
        assert sketch.footprint() <= FOOTPRINT_BOUND

    def test_footprint_plateaus(self):
        sketch = QuantileSketch()
        rng = np.random.default_rng(4)
        sketch.extend(rng.random(50_000))
        at_50k = sketch.footprint()
        sketch.extend(rng.random(450_000))
        # 10x the samples, no meaningful footprint growth.
        assert sketch.footprint() <= max(at_50k * 2, FOOTPRINT_BOUND)


class TestValidation:
    def test_small_k_raises(self):
        with pytest.raises(ValueError, match="k must be"):
            QuantileSketch(k=8)

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError, match="empty"):
            QuantileSketch().percentile(50.0)

    def test_out_of_range_pct_raises(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError, match="pct"):
            sketch.percentile(101.0)

    def test_empty_extremes_raise(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.minimum
        with pytest.raises(ValueError):
            sketch.maximum
        with pytest.raises(ValueError):
            sketch.mean()

    def test_repr_mentions_footprint(self):
        sketch = QuantileSketch()
        sketch.extend(np.arange(10, dtype=np.float64))
        assert "footprint" in repr(sketch)


class TestTrackerSketchMode:
    """PercentileTracker(mode='sketch'): same API, O(1) memory."""

    def test_mode_property_and_validation(self):
        assert PercentileTracker().mode == "exact"
        assert PercentileTracker(mode="sketch").mode == "sketch"
        with pytest.raises(ValueError, match="mode"):
            PercentileTracker(mode="approximate")

    def test_small_stream_matches_exact_bit_for_bit(self):
        # Below the first compaction the sketch tier *is* the exact tier.
        exact = PercentileTracker()
        sketch = PercentileTracker(mode="sketch")
        rng = np.random.default_rng(5)
        samples = rng.random(300)
        exact.extend(samples)
        sketch.extend(samples)
        for pct in PCTS:
            assert sketch.percentile(pct) == exact.percentile(pct)
        assert sketch.mean() == pytest.approx(exact.mean(), rel=1e-12)

    @SETTINGS
    @given(
        n=st.integers(2_000, 50_000),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_large_stream_within_rank_error_bound(self, n, seed):
        data = adversarial_stream("bimodal", n, seed)
        tracker = PercentileTracker(mode="sketch")
        tracker.extend(data)
        for pct in (50.0, 95.0, 99.0):
            err = normalised_rank_error(data, tracker.percentile(pct), pct)
            assert err <= RANK_ERROR_BOUND

    def test_extend_equivalent_to_repeated_add(self):
        rng = np.random.default_rng(6)
        samples = rng.random(5_000)
        for mode in ("exact", "sketch"):
            bulk = PercentileTracker(mode=mode)
            bulk.extend(samples)
            slow = PercentileTracker(mode=mode)
            for value in samples:
                slow.add(value)
            assert bulk.count == slow.count
            for pct in PCTS:
                assert bulk.percentile(pct) == slow.percentile(pct)

    def test_memory_is_constant_in_stream_length(self):
        exact = PercentileTracker()
        sketch = PercentileTracker(mode="sketch")
        rng = np.random.default_rng(7)
        for _ in range(5):
            block = rng.random(100_000)
            exact.extend(block)
            sketch.extend(block)
        assert exact.footprint() == 500_000  # grows with the stream
        assert sketch.footprint() <= FOOTPRINT_BOUND  # does not

    def test_samples_unavailable_in_sketch_mode(self):
        tracker = PercentileTracker(mode="sketch")
        tracker.add(1.0)
        with pytest.raises(ValueError, match="sketch"):
            tracker.samples()

    def test_merge_requires_matching_modes(self):
        exact = PercentileTracker()
        sketch = PercentileTracker(mode="sketch")
        with pytest.raises(ValueError, match="mode"):
            exact.merge(sketch)

    def test_merge_combines_sketches(self):
        rng = np.random.default_rng(8)
        left_data = rng.random(3_000)
        right_data = rng.random(4_000) + 1.0
        left = PercentileTracker(mode="sketch")
        left.extend(left_data)
        right = PercentileTracker(mode="sketch")
        right.extend(right_data)
        left.merge(right)
        union = np.concatenate([left_data, right_data])
        assert left.count == union.size
        err = normalised_rank_error(union, left.percentile(95.0), 95.0)
        assert err <= RANK_ERROR_BOUND

    def test_reset_rebuilds_sketch(self):
        tracker = PercentileTracker(mode="sketch")
        tracker.extend(np.arange(1_000, dtype=np.float64))
        tracker.reset()
        assert tracker.count == 0
        tracker.extend(np.asarray([5.0, 10.0, 15.0]))
        assert tracker.percentile(50.0) == 10.0
