"""Tests for the executable NumPy layers."""

import numpy as np
import pytest

from repro.models.layers import GRU, AttentionPooling, EmbeddingTable, Linear, MLP, relu, sigmoid


class TestActivations:
    def test_relu_clips_negatives(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(relu(x), [0.0, 0.0, 2.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-20, 20, 101)
        y = sigmoid(x)
        assert np.all((y > 0) & (y < 1))
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)

    def test_sigmoid_extreme_values_stable(self):
        y = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.isfinite(y).all()


class TestLinear:
    def test_output_shape(self):
        layer = Linear(8, 4, rng=0)
        out = layer.forward(np.zeros((3, 8)))
        assert out.shape == (3, 4)

    def test_relu_output_non_negative(self):
        layer = Linear(8, 4, activation="relu", rng=0)
        out = layer.forward(np.random.default_rng(1).normal(size=(16, 8)))
        assert np.all(out >= 0)

    def test_sigmoid_output_in_unit_interval(self):
        layer = Linear(8, 4, activation="sigmoid", rng=0)
        out = layer.forward(np.random.default_rng(1).normal(size=(16, 8)))
        assert np.all((out > 0) & (out < 1))

    def test_wrong_input_shape_raises(self):
        layer = Linear(8, 4, rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 7)))

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            Linear(8, 4, activation="gelu")

    def test_deterministic_with_seed(self):
        a = Linear(8, 4, rng=7).forward(np.ones((2, 8)))
        b = Linear(8, 4, rng=7).forward(np.ones((2, 8)))
        assert np.allclose(a, b)


class TestMLP:
    def test_shapes_through_stack(self):
        mlp = MLP([16, 8, 4, 2], rng=0)
        assert mlp.input_dim == 16
        assert mlp.output_dim == 2
        assert mlp.forward(np.zeros((5, 16))).shape == (5, 2)

    def test_final_sigmoid(self):
        mlp = MLP([4, 4, 1], final_activation="sigmoid", rng=0)
        out = mlp.forward(np.random.default_rng(0).normal(size=(10, 4)))
        assert np.all((out > 0) & (out < 1))

    def test_too_few_layers_raises(self):
        with pytest.raises(ValueError):
            MLP([4])


class TestEmbeddingTable:
    def test_lookup_shape(self):
        table = EmbeddingTable(num_rows=100, embedding_dim=8, rng=0)
        out = table.lookup(np.zeros((4, 5), dtype=int))
        assert out.shape == (4, 5, 8)

    def test_pooled_lookup_is_sum(self):
        table = EmbeddingTable(num_rows=100, embedding_dim=8, rng=0)
        indices = np.array([[1, 2, 3]])
        assert np.allclose(
            table.pooled_lookup(indices), table.lookup(indices).sum(axis=1)
        )

    def test_hashing_caps_materialised_rows(self):
        table = EmbeddingTable(num_rows=10_000_000, embedding_dim=4,
                               materialized_rows=128, rng=0)
        assert table.weight.shape == (128, 4)
        out = table.lookup(np.array([[9_999_999]]))
        assert out.shape == (1, 1, 4)

    def test_same_index_same_vector(self):
        table = EmbeddingTable(num_rows=1000, embedding_dim=4, rng=0)
        a = table.lookup(np.array([[42]]))
        b = table.lookup(np.array([[42]]))
        assert np.allclose(a, b)

    def test_out_of_range_indices_raise(self):
        table = EmbeddingTable(num_rows=10, embedding_dim=4, rng=0)
        with pytest.raises(ValueError):
            table.lookup(np.array([[10]]))
        with pytest.raises(ValueError):
            table.lookup(np.array([[-1]]))

    def test_one_dimensional_indices_rejected(self):
        table = EmbeddingTable(num_rows=10, embedding_dim=4, rng=0)
        with pytest.raises(ValueError):
            table.lookup(np.array([1, 2, 3]))


class TestAttentionPooling:
    def test_output_shape(self):
        attention = AttentionPooling(embedding_dim=8, rng=0)
        candidate = np.random.default_rng(0).normal(size=(4, 8))
        history = np.random.default_rng(1).normal(size=(4, 12, 8))
        assert attention.forward(candidate, history).shape == (4, 8)

    def test_weights_form_convex_combination(self):
        attention = AttentionPooling(embedding_dim=4, rng=0)
        candidate = np.zeros((2, 4))
        history = np.ones((2, 6, 4))
        # With identical history vectors, any convex combination is that vector.
        assert np.allclose(attention.forward(candidate, history), 1.0)

    def test_shape_mismatch_raises(self):
        attention = AttentionPooling(embedding_dim=4, rng=0)
        with pytest.raises(ValueError):
            attention.forward(np.zeros((2, 5)), np.zeros((2, 6, 4)))
        with pytest.raises(ValueError):
            attention.forward(np.zeros((2, 4)), np.zeros((3, 6, 4)))


class TestGRU:
    def test_forward_shape(self):
        gru = GRU(input_dim=8, hidden_dim=16, rng=0)
        sequence = np.random.default_rng(0).normal(size=(4, 10, 8))
        assert gru.forward(sequence).shape == (4, 16)

    def test_hidden_state_bounded(self):
        gru = GRU(input_dim=8, hidden_dim=16, rng=0)
        sequence = np.random.default_rng(0).normal(size=(4, 30, 8))
        hidden = gru.forward(sequence)
        assert np.all(np.abs(hidden) <= 1.0 + 1e-9)

    def test_initial_state_respected(self):
        gru = GRU(input_dim=4, hidden_dim=4, rng=0)
        sequence = np.zeros((1, 1, 4))
        h0 = np.full((1, 4), 0.5)
        out_with_state = gru.forward(sequence, h0=h0)
        out_default = gru.forward(sequence)
        assert not np.allclose(out_with_state, out_default)

    def test_wrong_sequence_shape_raises(self):
        gru = GRU(input_dim=4, hidden_dim=4, rng=0)
        with pytest.raises(ValueError):
            gru.forward(np.zeros((2, 5, 3)))

    def test_wrong_h0_shape_raises(self):
        gru = GRU(input_dim=4, hidden_dim=4, rng=0)
        with pytest.raises(ValueError):
            gru.forward(np.zeros((2, 5, 4)), h0=np.zeros((2, 3)))
