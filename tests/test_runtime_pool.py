"""Tests for the shared worker-pool runtime (repro.runtime.pool)."""

import os

import pytest

from repro.runtime.pool import (
    TaskContext,
    WorkerPool,
    active_pool,
    in_worker,
    pool_forks,
    pool_scope,
    shared_pool,
)


def _square(value):
    return value * value


def _probe_worker(value):
    """Runs inside a pool worker: report nesting state and a nested map."""
    nested = WorkerPool(2)
    result = nested.map(_square, [1, 2, 3])
    return (in_worker(), nested.forked, os.getpid(), result)


def _build_state(payload):
    return {"payload": payload, "marker": object()}


def _state_identity(state, item):
    return (os.getpid(), id(state["marker"]), item * state["payload"])


class TestWorkerPool:
    def test_serial_pool_never_forks(self):
        pool = WorkerPool(1)
        before = pool_forks()
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert not pool.forked
        assert pool_forks() == before

    def test_single_item_batch_runs_inline(self):
        pool = WorkerPool(4)
        assert pool.map(_square, [5]) == [25]
        assert not pool.forked

    def test_lazy_fork_and_reuse_across_maps(self):
        before = pool_forks()
        with WorkerPool(2) as pool:
            assert not pool.forked  # lazy: nothing forked at construction
            assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert pool.forked
            assert pool.map(_square, [4, 5, 6]) == [16, 25, 36]
            # Reuse: the second map did not fork a second pool.
            assert pool_forks() == before + 1
        assert not pool.forked  # context exit closed it

    def test_results_in_order_and_equal_to_serial(self):
        items = list(range(17))
        with WorkerPool(2) as pool:
            assert pool.map(_square, items) == [_square(i) for i in items]

    def test_nested_map_inside_worker_runs_inline(self):
        # A worker never re-forks: the nested WorkerPool reports in_worker
        # and serves its map inline without forking.
        before = pool_forks()
        with WorkerPool(2) as pool:
            results = pool.map(_probe_worker, [0, 1])
        assert pool_forks() == before + 1  # only the outer pool forked
        for nested_in_worker, nested_forked, pid, nested_result in results:
            assert nested_in_worker is True
            assert nested_forked is False
            assert pid != os.getpid()
            assert nested_result == [1, 4, 9]

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            WorkerPool(0)

    def test_parallelism_property(self):
        assert WorkerPool(1).parallelism == 1
        assert WorkerPool(3).parallelism == 3
        assert not in_worker()  # the test process is not a pool worker


class TestTaskContext:
    def test_serial_map_builds_once_and_reuses(self):
        context = TaskContext(_build_state, 3)
        pool = WorkerPool(1)
        first = pool.map(_state_identity, [1, 2], context=context)
        second = pool.map(_state_identity, [3], context=context)
        markers = {marker for _, marker, _ in first + second}
        assert len(markers) == 1  # one build across both maps
        assert [value for _, _, value in first + second] == [3, 6, 9]

    def test_seeded_value_is_used_serially(self):
        seeded = {"payload": 10, "marker": object()}
        context = TaskContext(_build_state, 3, value=seeded)
        results = WorkerPool(1).map(_state_identity, [1, 2], context=context)
        # The pre-built value (payload 10) served the map; the builder's
        # payload (3) was never used.
        assert [value for _, _, value in results] == [10, 20]
        assert results[0][1] == id(seeded["marker"])

    def test_parallel_map_builds_once_per_worker(self):
        context = TaskContext(_build_state, 2)
        with WorkerPool(2) as pool:
            results = pool.map(_state_identity, [1, 2, 3, 4, 5, 6], context=context)
        assert [value for _, _, value in results] == [2, 4, 6, 8, 10, 12]
        by_pid = {}
        for pid, marker, _ in results:
            by_pid.setdefault(pid, set()).add(marker)
        # Within one worker the context was built exactly once.
        assert all(len(markers) == 1 for markers in by_pid.values())


class TestSharedPool:
    def test_shared_pool_sets_and_clears_active(self):
        assert active_pool() is None
        with shared_pool(2) as pool:
            assert active_pool() is pool
            assert pool.max_workers == 2
        assert active_pool() is None

    def test_nested_shared_pool_reuses_outer(self):
        with shared_pool(2) as outer:
            with shared_pool(4) as inner:
                assert inner is outer  # the outer invocation owns the pool
            assert active_pool() is outer  # inner exit did not close it

    def test_pool_scope_prefers_explicit_pool(self):
        explicit = WorkerPool(2)
        with shared_pool(4):
            with pool_scope(8, pool=explicit) as resolved:
                assert resolved is explicit
        explicit.close()

    def test_pool_scope_serial_request_stays_serial(self):
        # jobs=1 must stay a true serial run even under an active shared
        # pool — and the serial singleton never forks.
        with shared_pool(4):
            with pool_scope(1) as resolved:
                assert resolved.parallelism == 1
                before = pool_forks()
                assert resolved.map(_square, [1, 2, 3]) == [1, 4, 9]
                assert pool_forks() == before

    def test_pool_scope_picks_up_active_pool(self):
        with shared_pool(2) as owner:
            with pool_scope(8) as resolved:
                assert resolved is owner

    def test_pool_scope_private_pool_closed_on_exit(self):
        assert active_pool() is None
        with pool_scope(2) as private:
            private.map(_square, [1, 2, 3])
            assert private.forked
        assert not private.forked  # closed when the scope ended
