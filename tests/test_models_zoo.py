"""Tests for the model zoo registry and the Table I configurations."""

import pytest

from repro.models.config import BottleneckClass, PoolingType
from repro.models.nonrec import deepspeech2, reference_workloads, resnet50
from repro.models.zoo import (
    MODEL_NAMES,
    available_models,
    get_config,
    get_model,
    models_by_bottleneck,
    register_model,
)


class TestRegistry:
    def test_eight_models_registered(self):
        assert len(available_models()) == 8
        assert set(available_models()) == set(MODEL_NAMES)

    def test_lookup_case_insensitive(self):
        assert get_config("DLRM-RMC1").name == "dlrm-rmc1"

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_config("bert")

    def test_get_model_returns_fresh_instances(self):
        a = get_model("ncf", rng=0)
        b = get_model("ncf", rng=0)
        assert a is not b

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_model("ncf", lambda: get_config("ncf"))

    def test_models_by_bottleneck_partition(self):
        grouped = [
            name
            for bottleneck in BottleneckClass
            for name in models_by_bottleneck(bottleneck)
        ]
        assert sorted(grouped) == sorted(MODEL_NAMES)


class TestTable1Configurations:
    def test_ncf(self):
        config = get_config("ncf")
        assert config.embedding.num_tables == 4
        assert config.embedding.lookups_per_table == 1
        assert config.pooling is PoolingType.CONCAT
        assert not config.has_dense_stack

    def test_wnd_dense_features_bypass_stack(self):
        config = get_config("wnd")
        assert config.dense_input_dim == 1000
        assert not config.has_dense_stack
        assert config.predict_fc[0] == 1024

    def test_mt_wnd_multiple_tasks(self):
        assert get_config("mt-wnd").num_tasks == 4
        assert get_config("wnd").num_tasks == 1

    def test_dlrm_variants_lookups(self):
        assert get_config("dlrm-rmc1").embedding.lookups_per_table == 80
        assert get_config("dlrm-rmc2").embedding.lookups_per_table == 80
        assert get_config("dlrm-rmc3").embedding.lookups_per_table == 20

    def test_dlrm_rmc2_has_most_tables(self):
        tables = {
            name: get_config(name).embedding.num_tables
            for name in ("dlrm-rmc1", "dlrm-rmc2", "dlrm-rmc3")
        }
        assert tables["dlrm-rmc2"] == max(tables.values())

    def test_dlrm_rmc3_has_large_dense_stack(self):
        config = get_config("dlrm-rmc3")
        assert config.dense_fc[0] == 2560

    def test_din_attention_with_many_lookups(self):
        config = get_config("din")
        assert config.pooling is PoolingType.ATTENTION
        assert config.embedding.lookups_per_table >= 100

    def test_dien_attention_rnn(self):
        config = get_config("dien")
        assert config.pooling is PoolingType.ATTENTION_RNN
        assert config.gru_hidden_dim > 0

    def test_sla_targets_match_table2(self):
        expected_ms = {
            "dlrm-rmc1": 100.0,
            "dlrm-rmc2": 400.0,
            "dlrm-rmc3": 100.0,
            "ncf": 5.0,
            "wnd": 25.0,
            "mt-wnd": 25.0,
            "din": 100.0,
            "dien": 35.0,
        }
        for name, sla_ms in expected_ms.items():
            assert get_config(name).sla_target_ms == sla_ms

    def test_embedding_storage_order_of_gigabytes(self):
        # The paper notes embedding tables require tens of GB of storage.
        total_gb = get_config("dlrm-rmc2").embedding.storage_bytes / 2**30
        assert total_gb > 10


class TestReferenceWorkloads:
    def test_resnet_more_compute_intense_than_recommendation(self):
        rec_intensity = get_model("dlrm-rmc1", build_executable=False).operational_intensity(1)
        assert resnet50().operational_intensity(1) > rec_intensity

    def test_flops_scale_with_batch(self):
        assert resnet50().flops(8) == pytest.approx(8 * resnet50().flops(1))

    def test_intensity_grows_with_batch(self):
        workload = deepspeech2()
        assert workload.operational_intensity(64) > workload.operational_intensity(1)

    def test_reference_workload_list(self):
        names = {w.name for w in reference_workloads()}
        assert names == {"resnet50", "deepspeech2"}

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            resnet50().flops(0)
