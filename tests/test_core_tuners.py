"""Tests for the batch-size and offload-threshold tuners and the scheduler facade.

These run the real serving simulator at reduced fidelity (few queries, few
bisection iterations) so the suite stays fast while still exercising the full
DeepRecSched pipeline.
"""

import pytest

from repro.core.batch_tuner import BatchSizeTuner
from repro.core.offload_tuner import OffloadThresholdTuner
from repro.core.scheduler import DeepRecSched
from repro.execution.engine import build_engine_pair
from repro.queries.generator import LoadGenerator
from repro.serving.sla import SLATier

FAST = dict(num_queries=150, capacity_iterations=3)


@pytest.fixture(scope="module")
def engines():
    return build_engine_pair("dlrm-rmc1", "skylake", "gtx1080ti")


@pytest.fixture(scope="module")
def generator():
    return LoadGenerator(seed=11)


class TestBatchSizeTuner:
    def test_candidates_are_powers_of_two(self, engines, generator):
        tuner = BatchSizeTuner(engines, generator, **FAST)
        candidates = tuner.candidates()
        assert candidates[0] == 1
        assert candidates[-1] == 1000
        assert all(b > a for a, b in zip(candidates, candidates[1:]))

    def test_restricted_candidate_range(self, engines, generator):
        tuner = BatchSizeTuner(
            engines, generator, min_batch_size=32, max_batch_size=256, **FAST
        )
        candidates = tuner.candidates()
        assert candidates[0] == 32
        assert candidates[-1] == 256

    def test_tuned_batch_beats_static_baseline(self, engines, generator):
        tuner = BatchSizeTuner(
            engines, generator, min_batch_size=16, max_batch_size=1000,
            num_queries=200, capacity_iterations=3,
        )
        tuning = tuner.tune(sla_latency_s=0.1)
        static_qps = tuner.capacity_at(25, sla_latency_s=0.1)
        assert tuning.best_batch_size > 25
        assert tuning.best_qps > static_qps

    def test_result_records_evaluations(self, engines, generator):
        tuner = BatchSizeTuner(
            engines, generator, min_batch_size=64, max_batch_size=256, **FAST
        )
        tuning = tuner.tune(sla_latency_s=0.1)
        assert tuning.num_evaluations >= 2
        assert tuning.best_batch_size in tuning.qps_by_batch_size
        assert tuning.sla_latency_s == 0.1

    def test_invalid_parameters(self, engines, generator):
        with pytest.raises(ValueError):
            BatchSizeTuner(engines, generator, min_batch_size=64, max_batch_size=32)
        with pytest.raises(ValueError):
            BatchSizeTuner(engines, generator, num_queries=0)
        tuner = BatchSizeTuner(engines, generator, **FAST)
        with pytest.raises(ValueError):
            tuner.tune(sla_latency_s=0.0)


class TestOffloadThresholdTuner:
    def test_requires_accelerator(self, generator):
        cpu_only = build_engine_pair("dlrm-rmc1", "skylake", None)
        with pytest.raises(ValueError):
            OffloadThresholdTuner(cpu_only, generator)

    def test_candidates_start_at_unit_threshold(self, engines, generator):
        tuner = OffloadThresholdTuner(engines, generator, **FAST)
        candidates = tuner.candidates()
        assert candidates[0] == 1
        assert candidates[-1] == 1000

    def test_optimum_is_interior(self, engines, generator):
        # The tuned threshold should neither send everything to the GPU nor
        # keep everything on the CPU (the Fig. 10 hump).
        tuner = OffloadThresholdTuner(
            engines, generator, num_queries=200, capacity_iterations=3
        )
        tuning = tuner.tune(batch_size=256, sla_latency_s=0.1)
        assert 16 < tuning.best_threshold <= 1000
        assert 0.0 <= tuning.gpu_work_fraction < 1.0

    def test_result_metadata(self, engines, generator):
        tuner = OffloadThresholdTuner(engines, generator, **FAST)
        tuning = tuner.tune(batch_size=128, sla_latency_s=0.1)
        assert tuning.batch_size == 128
        assert tuning.num_evaluations >= 2

    def test_invalid_arguments(self, engines, generator):
        tuner = OffloadThresholdTuner(engines, generator, **FAST)
        with pytest.raises(ValueError):
            tuner.tune(batch_size=0, sla_latency_s=0.1)
        with pytest.raises(ValueError):
            tuner.tune(batch_size=64, sla_latency_s=0.0)


class TestDeepRecSchedFacade:
    @pytest.fixture(scope="class")
    def scheduler(self):
        return DeepRecSched(
            "dlrm-rmc1", num_queries=150, capacity_iterations=3, seed=11
        )

    def test_baseline_uses_static_batch(self, scheduler):
        point = scheduler.baseline(SLATier.MEDIUM)
        assert point.scheduler == "static"
        assert point.batch_size == 25
        assert point.offload_threshold is None
        assert point.qps > 0

    def test_cpu_optimisation_beats_baseline(self, scheduler):
        baseline = scheduler.baseline(SLATier.MEDIUM)
        tuned = scheduler.optimize_cpu(SLATier.MEDIUM)
        assert tuned.scheduler == "deeprecsched-cpu"
        assert tuned.qps > baseline.qps
        assert tuned.batch_size > baseline.batch_size

    def test_gpu_optimisation_beats_cpu(self, scheduler):
        cpu_point = scheduler.optimize_cpu(SLATier.MEDIUM)
        gpu_point = scheduler.optimize_gpu(SLATier.MEDIUM, batch_size=cpu_point.batch_size)
        assert gpu_point.scheduler == "deeprecsched-gpu"
        assert gpu_point.uses_accelerator
        assert gpu_point.qps > cpu_point.qps
        assert 0.0 < gpu_point.gpu_work_fraction < 1.0

    def test_power_accounting(self, scheduler):
        cpu_point = scheduler.optimize_cpu(SLATier.MEDIUM)
        gpu_point = scheduler.optimize_gpu(SLATier.MEDIUM, batch_size=cpu_point.batch_size)
        assert cpu_point.qps_per_watt > 0
        assert gpu_point.qps_per_watt > 0
        # The GPU adds at least its idle power, so QPS/Watt gains are smaller
        # than QPS gains.
        assert (gpu_point.qps_per_watt / cpu_point.qps_per_watt) < (
            gpu_point.qps / cpu_point.qps
        )

    def test_gpu_scheduler_requires_accelerator(self):
        scheduler = DeepRecSched(
            "ncf", gpu_platform=None, num_queries=100, capacity_iterations=2, seed=0
        )
        with pytest.raises(ValueError):
            scheduler.optimize_gpu(SLATier.MEDIUM)

    def test_scheduler_exposes_model_and_engines(self, scheduler):
        assert scheduler.model_name == "dlrm-rmc1"
        assert scheduler.engines.has_accelerator
