"""Tests for the load generator and query traces."""

import itertools

import numpy as np
import pytest

from repro.queries.arrival import FixedArrival, PoissonArrival
from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.queries.size_dist import FixedQuerySizes
from repro.queries.trace import (
    TRACE_SCHEMA_VERSION,
    DiurnalPattern,
    QueryTrace,
    count_diurnal_queries,
    diurnal_trace_chunks,
    generate_diurnal_trace,
    iter_diurnal_trace,
)


class TestQuery:
    def test_valid_query(self):
        query = Query(query_id=3, arrival_time=1.5, size=100)
        assert query.size == 100

    def test_invalid_query(self):
        with pytest.raises(ValueError):
            Query(query_id=0, arrival_time=0.0, size=0)
        with pytest.raises(ValueError):
            Query(query_id=-1, arrival_time=0.0, size=1)
        with pytest.raises(ValueError):
            Query(query_id=0, arrival_time=-1.0, size=1)


class TestLoadGenerator:
    def test_generates_requested_count(self):
        queries = LoadGenerator(seed=0).generate(50)
        assert len(queries) == 50

    def test_arrival_times_increasing_and_ids_sequential(self):
        queries = LoadGenerator(seed=0).generate(100)
        times = [q.arrival_time for q in queries]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert [q.query_id for q in queries] == list(range(100))

    def test_reproducible_with_seed(self):
        a = LoadGenerator(seed=9).generate(20)
        b = LoadGenerator(seed=9).generate(20)
        assert [(q.arrival_time, q.size) for q in a] == [
            (q.arrival_time, q.size) for q in b
        ]

    def test_with_rate_changes_density_not_sizes(self):
        slow = LoadGenerator(arrival=PoissonArrival(10.0), seed=4)
        fast = slow.with_rate(1000.0)
        slow_queries = slow.generate(200)
        fast_queries = fast.generate(200)
        assert fast_queries[-1].arrival_time < slow_queries[-1].arrival_time
        assert [q.size for q in slow_queries] == [q.size for q in fast_queries]

    def test_custom_distributions_respected(self):
        generator = LoadGenerator(
            arrival=FixedArrival(100.0), sizes=FixedQuerySizes(32), seed=0
        )
        queries = generator.generate(10)
        assert all(q.size == 32 for q in queries)
        gaps = np.diff([q.arrival_time for q in queries])
        assert np.allclose(gaps, 0.01)

    def test_generate_for_duration(self):
        generator = LoadGenerator(arrival=FixedArrival(100.0), seed=0)
        queries = generator.generate_for_duration(0.5)
        assert queries
        assert queries[-1].arrival_time <= 0.5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            LoadGenerator(seed=0).generate(0)
        with pytest.raises(ValueError):
            LoadGenerator(seed=0).with_rate(0.0)


class TestDiurnalPattern:
    def test_multiplier_oscillates_around_one(self):
        pattern = DiurnalPattern(amplitude=0.4, period_s=100.0)
        values = [pattern.rate_multiplier(t) for t in np.linspace(0, 100, 200)]
        assert max(values) == pytest.approx(1.4, abs=0.02)
        assert min(values) == pytest.approx(0.6, abs=0.02)
        assert np.mean(values) == pytest.approx(1.0, abs=0.05)

    def test_zero_amplitude_constant(self):
        pattern = DiurnalPattern(amplitude=0.0, period_s=10.0)
        assert pattern.rate_multiplier(3.0) == pytest.approx(1.0)

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalPattern(amplitude=1.0)


class TestQueryTrace:
    def test_sorts_queries_by_arrival(self):
        trace = QueryTrace(
            [Query(0, 2.0, 10), Query(1, 1.0, 20), Query(2, 3.0, 30)]
        )
        assert [q.arrival_time for q in trace] == [1.0, 2.0, 3.0]

    def test_duration_rate_and_items(self):
        trace = QueryTrace([Query(i, float(i), 10) for i in range(11)])
        assert trace.duration_s == pytest.approx(10.0)
        assert trace.mean_rate_qps == pytest.approx(1.0)
        assert trace.total_items() == 110

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = QueryTrace([Query(i, i * 0.5, 10 + i) for i in range(5)])
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = QueryTrace.load(path)
        assert len(loaded) == 5
        assert [(q.query_id, q.arrival_time, q.size) for q in loaded] == [
            (q.query_id, q.arrival_time, q.size) for q in trace
        ]

    def test_empty_trace_properties(self):
        trace = QueryTrace([])
        assert len(trace) == 0
        assert trace.duration_s == 0.0
        assert trace.mean_rate_qps == 0.0


class TestDiurnalTrace:
    def test_trace_spans_duration(self):
        trace = generate_diurnal_trace(base_rate_qps=100.0, duration_s=30.0, seed=0)
        assert trace.duration_s <= 30.0
        assert len(trace) > 0

    def test_rate_roughly_matches_base(self):
        flat = DiurnalPattern(amplitude=0.0, period_s=60.0)
        trace = generate_diurnal_trace(
            base_rate_qps=200.0, duration_s=60.0, pattern=flat, seed=1
        )
        assert trace.mean_rate_qps == pytest.approx(200.0, rel=0.2)

    def test_traffic_denser_at_peak_than_trough(self):
        pattern = DiurnalPattern(amplitude=0.8, period_s=100.0, phase=0.0)
        trace = generate_diurnal_trace(
            base_rate_qps=300.0, duration_s=100.0, pattern=pattern, seed=2,
            time_step_s=5.0,
        )
        times = np.array([q.arrival_time for q in trace])
        # Peak of sin(2*pi*t/100) is at t=25, trough at t=75.
        peak_count = np.sum((times >= 15) & (times < 35))
        trough_count = np.sum((times >= 65) & (times < 85))
        assert peak_count > trough_count

    def test_reproducible(self):
        a = generate_diurnal_trace(50.0, 20.0, seed=3)
        b = generate_diurnal_trace(50.0, 20.0, seed=3)
        assert len(a) == len(b)
        assert [q.size for q in a] == [q.size for q in b]


class TestBatchTracePins:
    def test_generate_diurnal_trace_is_regression_pinned(self):
        # The vectorized synthesis must keep the seeded draw order of the
        # original per-query loop: these values are the old path's, bit
        # for bit.
        trace = generate_diurnal_trace(50.0, 20.0, seed=3)
        assert len(trace) == 655
        head = list(trace)[:3]
        assert [q.arrival_time for q in head] == [
            0.011230055168693909,
            0.014067652303799694,
            0.035604363620640456,
        ]
        assert [q.size for q in head] == [105, 77, 174]


class TestChunkedSynthesis:
    """The streamed trace path: schema-versioned, O(chunk) memory."""

    def test_schema_version_pinned(self):
        assert TRACE_SCHEMA_VERSION == 1

    def test_stream_is_regression_pinned(self):
        # Schema v1 of the chunked diurnal stream: these exact values are
        # the compatibility contract for recorded large-trace runs.
        head = list(itertools.islice(iter_diurnal_trace(50.0, 120.0, seed=3), 4))
        assert [q.query_id for q in head] == [0, 1, 2, 3]
        assert [q.arrival_time for q in head] == [
            0.04863467956022882,
            0.05302036436917179,
            0.07489096006389806,
            0.07660684675535157,
        ]
        assert [q.size for q in head] == [39, 279, 24, 153]

    def test_count_matches_stream_without_materialising(self):
        count = count_diurnal_queries(50.0, 120.0, seed=3)
        assert count == 3576  # pinned with the schema version
        assert count == sum(1 for _ in iter_diurnal_trace(50.0, 120.0, seed=3))

    def test_stream_sorted_with_sequential_ids(self):
        previous_time = -1.0
        for index, query in enumerate(iter_diurnal_trace(80.0, 90.0, seed=1)):
            assert query.query_id == index
            assert query.arrival_time >= previous_time
            assert query.arrival_time < 90.0
            previous_time = query.arrival_time

    def test_chunks_follow_the_diurnal_law(self):
        # Thinning must modulate density: the peak window of the sinusoid
        # carries more accepted arrivals than the trough window.
        pattern = DiurnalPattern(period_s=100.0, amplitude=0.8, phase=0.0)
        times = np.concatenate(
            [chunk for chunk, _ in diurnal_trace_chunks(
                100.0, 100.0, pattern=pattern, seed=2
            )]
        )
        peak = np.sum((times >= 15) & (times < 35))
        trough = np.sum((times >= 65) & (times < 85))
        assert peak > trough

    def test_chunk_sizes_align_with_arrivals(self):
        for arrivals, sizes in diurnal_trace_chunks(60.0, 120.0, seed=4):
            assert arrivals.size == sizes.size
            assert arrivals.size > 0
            assert np.all(sizes >= 1)


class TestArrivalTimeChunks:
    def test_chunks_are_regression_pinned(self):
        times = np.concatenate(
            list(PoissonArrival(rate_qps=100.0).arrival_time_chunks(
                10, rng=7, chunk_queries=4
            ))
        )
        assert times.size == 10
        assert times[0] == 0.007075292557919215
        assert times[1] == 0.017327326040868264

    def test_yields_exactly_count_in_bounded_chunks(self):
        chunks = list(PoissonArrival(rate_qps=50.0).arrival_time_chunks(
            1000, rng=1, chunk_queries=64
        ))
        assert all(chunk.size <= 64 for chunk in chunks)
        assert sum(chunk.size for chunk in chunks) == 1000
        merged = np.concatenate(chunks)
        assert np.all(np.diff(merged) >= 0)

    def test_chunks_continue_one_generator_stream(self):
        # Different chunk granularity re-associates the cumulative sum but
        # draws the same gap sequence: times agree to float tolerance.
        arrival = PoissonArrival(rate_qps=200.0)
        coarse = np.concatenate(list(arrival.arrival_time_chunks(500, rng=3)))
        fine = np.concatenate(
            list(arrival.arrival_time_chunks(500, rng=3, chunk_queries=17))
        )
        np.testing.assert_allclose(fine, coarse, rtol=1e-12, atol=1e-12)


class TestIterQueries:
    def test_stream_is_regression_pinned(self):
        generator = LoadGenerator(arrival=PoissonArrival(rate_qps=200.0), seed=4)
        head = list(itertools.islice(generator.iter_queries(6), 6))
        assert [q.query_id for q in head] == [0, 1, 2, 3, 4, 5]
        assert head[0].arrival_time == 0.0024670736035535324
        assert head[1].arrival_time == 0.003912067821207477
        assert [q.size for q in head] == [44, 90, 220, 815, 38, 55]

    def test_satisfies_run_stream_contract(self):
        generator = LoadGenerator(arrival=PoissonArrival(rate_qps=900.0), seed=11)
        previous_time = -1.0
        count = 0
        for index, query in enumerate(generator.iter_queries(2000)):
            assert query.query_id == index
            assert query.arrival_time >= previous_time
            previous_time = query.arrival_time
            count += 1
        assert count == 2000
