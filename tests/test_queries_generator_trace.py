"""Tests for the load generator and query traces."""

import numpy as np
import pytest

from repro.queries.arrival import FixedArrival, PoissonArrival
from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.queries.size_dist import FixedQuerySizes
from repro.queries.trace import DiurnalPattern, QueryTrace, generate_diurnal_trace


class TestQuery:
    def test_valid_query(self):
        query = Query(query_id=3, arrival_time=1.5, size=100)
        assert query.size == 100

    def test_invalid_query(self):
        with pytest.raises(ValueError):
            Query(query_id=0, arrival_time=0.0, size=0)
        with pytest.raises(ValueError):
            Query(query_id=-1, arrival_time=0.0, size=1)
        with pytest.raises(ValueError):
            Query(query_id=0, arrival_time=-1.0, size=1)


class TestLoadGenerator:
    def test_generates_requested_count(self):
        queries = LoadGenerator(seed=0).generate(50)
        assert len(queries) == 50

    def test_arrival_times_increasing_and_ids_sequential(self):
        queries = LoadGenerator(seed=0).generate(100)
        times = [q.arrival_time for q in queries]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert [q.query_id for q in queries] == list(range(100))

    def test_reproducible_with_seed(self):
        a = LoadGenerator(seed=9).generate(20)
        b = LoadGenerator(seed=9).generate(20)
        assert [(q.arrival_time, q.size) for q in a] == [
            (q.arrival_time, q.size) for q in b
        ]

    def test_with_rate_changes_density_not_sizes(self):
        slow = LoadGenerator(arrival=PoissonArrival(10.0), seed=4)
        fast = slow.with_rate(1000.0)
        slow_queries = slow.generate(200)
        fast_queries = fast.generate(200)
        assert fast_queries[-1].arrival_time < slow_queries[-1].arrival_time
        assert [q.size for q in slow_queries] == [q.size for q in fast_queries]

    def test_custom_distributions_respected(self):
        generator = LoadGenerator(
            arrival=FixedArrival(100.0), sizes=FixedQuerySizes(32), seed=0
        )
        queries = generator.generate(10)
        assert all(q.size == 32 for q in queries)
        gaps = np.diff([q.arrival_time for q in queries])
        assert np.allclose(gaps, 0.01)

    def test_generate_for_duration(self):
        generator = LoadGenerator(arrival=FixedArrival(100.0), seed=0)
        queries = generator.generate_for_duration(0.5)
        assert queries
        assert queries[-1].arrival_time <= 0.5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            LoadGenerator(seed=0).generate(0)
        with pytest.raises(ValueError):
            LoadGenerator(seed=0).with_rate(0.0)


class TestDiurnalPattern:
    def test_multiplier_oscillates_around_one(self):
        pattern = DiurnalPattern(amplitude=0.4, period_s=100.0)
        values = [pattern.rate_multiplier(t) for t in np.linspace(0, 100, 200)]
        assert max(values) == pytest.approx(1.4, abs=0.02)
        assert min(values) == pytest.approx(0.6, abs=0.02)
        assert np.mean(values) == pytest.approx(1.0, abs=0.05)

    def test_zero_amplitude_constant(self):
        pattern = DiurnalPattern(amplitude=0.0, period_s=10.0)
        assert pattern.rate_multiplier(3.0) == pytest.approx(1.0)

    def test_invalid_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalPattern(amplitude=1.0)


class TestQueryTrace:
    def test_sorts_queries_by_arrival(self):
        trace = QueryTrace(
            [Query(0, 2.0, 10), Query(1, 1.0, 20), Query(2, 3.0, 30)]
        )
        assert [q.arrival_time for q in trace] == [1.0, 2.0, 3.0]

    def test_duration_rate_and_items(self):
        trace = QueryTrace([Query(i, float(i), 10) for i in range(11)])
        assert trace.duration_s == pytest.approx(10.0)
        assert trace.mean_rate_qps == pytest.approx(1.0)
        assert trace.total_items() == 110

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = QueryTrace([Query(i, i * 0.5, 10 + i) for i in range(5)])
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = QueryTrace.load(path)
        assert len(loaded) == 5
        assert [(q.query_id, q.arrival_time, q.size) for q in loaded] == [
            (q.query_id, q.arrival_time, q.size) for q in trace
        ]

    def test_empty_trace_properties(self):
        trace = QueryTrace([])
        assert len(trace) == 0
        assert trace.duration_s == 0.0
        assert trace.mean_rate_qps == 0.0


class TestDiurnalTrace:
    def test_trace_spans_duration(self):
        trace = generate_diurnal_trace(base_rate_qps=100.0, duration_s=30.0, seed=0)
        assert trace.duration_s <= 30.0
        assert len(trace) > 0

    def test_rate_roughly_matches_base(self):
        flat = DiurnalPattern(amplitude=0.0, period_s=60.0)
        trace = generate_diurnal_trace(
            base_rate_qps=200.0, duration_s=60.0, pattern=flat, seed=1
        )
        assert trace.mean_rate_qps == pytest.approx(200.0, rel=0.2)

    def test_traffic_denser_at_peak_than_trough(self):
        pattern = DiurnalPattern(amplitude=0.8, period_s=100.0, phase=0.0)
        trace = generate_diurnal_trace(
            base_rate_qps=300.0, duration_s=100.0, pattern=pattern, seed=2,
            time_step_s=5.0,
        )
        times = np.array([q.arrival_time for q in trace])
        # Peak of sin(2*pi*t/100) is at t=25, trough at t=75.
        peak_count = np.sum((times >= 15) & (times < 35))
        trough_count = np.sum((times >= 65) & (times < 85))
        assert peak_count > trough_count

    def test_reproducible(self):
        a = generate_diurnal_trace(50.0, 20.0, seed=3)
        b = generate_diurnal_trace(50.0, 20.0, seed=3)
        assert len(a) == len(b)
        assert [q.size for q in a] == [q.size for q in b]
