"""Worker-death resilience tests for the self-healing pool.

The contract under test: a worker process that *dies* (SIGKILL — the
process-level analogue of an OOM kill or segfault) breaks the executor
generation; the pool retires it, resubmits every task the crash took down
on a fresh executor with a bounded backoff, and quarantines a task that
keeps killing its workers (failing its future with
:class:`WorkerCrashError`) instead of hanging ``as_completed``.  Ordinary
exceptions are never retried.
"""

import os
import signal

import pytest

from repro.runtime.pool import (
    WorkerCrashError,
    WorkerPool,
    as_completed,
)


def _suicide_once(task):
    """Die hard on first execution (marked by a flag file), succeed after.

    ``task`` is ``(flag_path, value)``: the retry executes in a fresh
    worker of a fresh executor, sees the flag, and completes normally.
    """
    flag_path, value = task
    if not os.path.exists(flag_path):
        with open(flag_path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 10


def _poison(value):
    """Kill the hosting worker every single time: never completes."""
    os.kill(os.getpid(), signal.SIGKILL)
    return value  # pragma: no cover - unreachable


def _boom(value):
    raise ValueError(f"boom {value}")


def _identity(value):
    return value


class TestWorkerDeathRetry:
    def test_killed_worker_task_is_retried_and_completes(self, tmp_path):
        flag = str(tmp_path / "died-once")
        with WorkerPool(2, retry_backoff_s=0.01) as pool:
            futures = [
                pool.submit(_suicide_once, (flag, value)) for value in (1, 2, 3)
            ]
            # as_completed must not hang on the crash; every task lands.
            results = sorted(f.result() for f in as_completed(futures))
        assert results == [10, 20, 30]
        stats = pool.stats
        assert stats["worker_crashes"] >= 1
        assert stats["retries"] >= 1  # the killed task was resubmitted
        assert stats["completed"] == 3
        assert stats["quarantined"] == 0

    def test_mid_map_worker_death_preserves_results(self, tmp_path):
        flag = str(tmp_path / "died-once-map")
        items = [(flag, value) for value in range(6)]
        with WorkerPool(2, retry_backoff_s=0.01) as pool:
            assert pool.map(_suicide_once, items) == [
                value * 10 for value in range(6)
            ]
        assert pool.stats["worker_crashes"] >= 1
        assert pool.stats["retries"] >= 1

    def test_poison_task_is_quarantined_not_hung(self):
        with WorkerPool(2, max_task_retries=2, retry_backoff_s=0.0) as pool:
            bad = pool.submit(_poison, "p")
            with pytest.raises(WorkerCrashError, match="quarantined"):
                bad.result()
            # The pool healed: later work runs on a fresh executor.
            assert pool.map(_identity, [1, 2, 3]) == [1, 2, 3]
        stats = pool.stats
        assert stats["quarantined"] == 1
        # Initial dispatch + max_task_retries resubmissions, each one a
        # lost executor generation.
        assert stats["worker_crashes"] == 3
        assert stats["retries"] == 2

    def test_zero_retry_budget_quarantines_immediately(self):
        with WorkerPool(2, max_task_retries=0, retry_backoff_s=0.0) as pool:
            with pytest.raises(WorkerCrashError):
                pool.submit(_poison, "p").result()
        assert pool.stats == {
            "submitted": 1,
            "completed": 0,
            "worker_crashes": 1,
            "retries": 0,
            "quarantined": 1,
        }

    def test_ordinary_exceptions_are_not_retried(self):
        with WorkerPool(2) as pool:
            bad = pool.submit(_boom, 7)
            with pytest.raises(ValueError, match="boom 7"):
                bad.result()
        stats = pool.stats
        assert stats["retries"] == 0
        assert stats["worker_crashes"] == 0
        assert stats["quarantined"] == 0

    def test_invalid_resilience_parameters(self):
        with pytest.raises(ValueError, match="max_task_retries"):
            WorkerPool(2, max_task_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff_s"):
            WorkerPool(2, retry_backoff_s=-0.1)


class TestDeterministicBackoff:
    """Crash-resubmit backoff is seed-derived: no wall clock, no global RNG.

    The delay for (task, attempt) comes from an ``RngFactory`` child stream
    keyed on the task's submission ordinal, so a replayed run backs off
    identically — and tests inject a recording ``sleeper`` to assert the
    exact delays without ever actually sleeping.
    """

    def test_same_seed_same_delays(self):
        first = WorkerPool(2, retry_backoff_s=0.05, backoff_seed=7)
        second = WorkerPool(2, retry_backoff_s=0.05, backoff_seed=7)
        delays_first = [first._backoff_delay(seq, a) for seq in (1, 2) for a in (1, 2, 3)]
        delays_second = [second._backoff_delay(seq, a) for seq in (1, 2) for a in (1, 2, 3)]
        assert delays_first == delays_second

    def test_different_seed_different_delays(self):
        first = WorkerPool(2, retry_backoff_s=0.05, backoff_seed=7)
        second = WorkerPool(2, retry_backoff_s=0.05, backoff_seed=8)
        assert first._backoff_delay(1, 1) != second._backoff_delay(1, 1)

    def test_delay_jittered_exponential_and_capped(self):
        pool = WorkerPool(2, retry_backoff_s=0.05, backoff_seed=0)
        for attempt in (1, 2, 3):
            base = min(0.05 * (2 ** (attempt - 1)), 0.5)
            delay = pool._backoff_delay(1, attempt)
            assert 0.5 * base <= delay <= base
        # Far along the exponential ramp the cap bounds every delay.
        assert pool._backoff_delay(1, 30) <= 0.5

    def test_zero_backoff_means_zero_delay(self):
        pool = WorkerPool(2, retry_backoff_s=0.0, backoff_seed=3)
        assert pool._backoff_delay(1, 1) == 0.0
        assert pool._backoff_delay(5, 9) == 0.0

    def test_injected_sleeper_records_exact_crash_delays(self):
        recorded = []
        with WorkerPool(
            2,
            max_task_retries=2,
            retry_backoff_s=0.01,
            backoff_seed=11,
            sleeper=recorded.append,
        ) as pool:
            with pytest.raises(WorkerCrashError):
                pool.submit(_poison, "p").result()
        # One sleep per resubmission, each exactly the seed-derived delay
        # for (first submitted task, attempt N) — nothing wall-clock about it.
        reference = WorkerPool(2, retry_backoff_s=0.01, backoff_seed=11)
        assert recorded == [
            reference._backoff_delay(1, attempt) for attempt in (1, 2)
        ]

    def test_sleeper_not_called_without_crashes(self):
        recorded = []
        with WorkerPool(2, sleeper=recorded.append) as pool:
            assert pool.map(_identity, [1, 2, 3]) == [1, 2, 3]
        assert recorded == []
