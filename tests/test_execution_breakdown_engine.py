"""Tests for the operator breakdown helper and engine builders."""

import pytest

from repro.execution.breakdown import compute_breakdown
from repro.execution.engine import (
    build_cpu_engine,
    build_engine_pair,
    build_gpu_engine,
)
from repro.hardware.cpu import skylake
from repro.models.ops import OperatorCategory
from repro.models.zoo import get_model


class TestComputeBreakdown:
    def test_fractions_sum_to_one(self):
        breakdown = compute_breakdown(build_cpu_engine("dlrm-rmc1", "broadwell"), 64)
        assert sum(breakdown.fractions.values()) == pytest.approx(1.0)

    def test_dominant_category_consistency(self):
        breakdown = compute_breakdown(build_cpu_engine("dlrm-rmc2", "broadwell"), 64)
        assert breakdown.dominant_category is OperatorCategory.EMBEDDING
        assert breakdown.embedding_fraction == breakdown.fraction(OperatorCategory.EMBEDDING)

    def test_table2_classification_embedding_models(self):
        for name in ("dlrm-rmc1", "dlrm-rmc2"):
            breakdown = compute_breakdown(build_cpu_engine(name, "broadwell"), 64)
            assert breakdown.embedding_fraction > 0.5

    def test_table2_classification_mlp_models(self):
        for name in ("dlrm-rmc3", "ncf", "wnd", "mt-wnd"):
            breakdown = compute_breakdown(build_cpu_engine(name, "broadwell"), 64)
            assert breakdown.dnn_fraction > 0.5

    def test_table2_classification_attention_models(self):
        din = compute_breakdown(build_cpu_engine("din", "broadwell"), 64)
        dien = compute_breakdown(build_cpu_engine("dien", "broadwell"), 64)
        # DIN splits between embedding and attention; DIEN is GRU-dominated.
        assert din.attention_fraction + din.embedding_fraction > 0.7
        assert dien.attention_fraction > 0.4

    def test_missing_category_fraction_zero(self):
        breakdown = compute_breakdown(build_cpu_engine("ncf", "broadwell"), 64)
        assert breakdown.fraction(OperatorCategory.RECURRENT) == 0.0

    def test_metadata_fields(self):
        breakdown = compute_breakdown(build_cpu_engine("ncf", "broadwell"), 32)
        assert breakdown.model_name == "ncf"
        assert breakdown.batch_size == 32
        assert breakdown.total_latency_s > 0


class TestEngineBuilders:
    def test_build_cpu_engine_from_name(self):
        engine = build_cpu_engine("ncf", "skylake")
        assert engine.platform.name == "skylake"
        assert engine.model.name == "ncf"

    def test_build_cpu_engine_from_objects(self):
        model = get_model("ncf", build_executable=False)
        engine = build_cpu_engine(model, skylake())
        assert engine.model is model

    def test_build_gpu_engine(self):
        engine = build_gpu_engine("wnd")
        assert engine.platform.name == "gtx1080ti"

    def test_engine_pair_shares_model(self):
        pair = build_engine_pair("din", "broadwell", "gtx1080ti")
        assert pair.cpu.model is pair.gpu.model
        assert pair.has_accelerator
        assert pair.model.name == "din"

    def test_cpu_only_pair(self):
        pair = build_engine_pair("din", "broadwell", None)
        assert pair.gpu is None
        assert not pair.has_accelerator

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            build_cpu_engine("ncf", "m1-max")
