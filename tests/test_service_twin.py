"""Tests for the digital twin: cumulative re-simulation and shadow mode."""

import json

import pytest

from repro.queries.generator import LoadGenerator
from repro.queries.trace import DiurnalPattern, generate_diurnal_trace
from repro.service.shadow import (
    ConfigVerdict,
    FleetSpec,
    compare_verdicts,
    load_fleet_spec,
)
from repro.service.twin import DigitalTwin, render_window_reports
from repro.service.windows import WindowManager

#: Low-fidelity search knobs: the capacity answer only needs to be
#: deterministic for these tests, not paper-accurate.
FAST_SEARCH = dict(search_num_queries=80, search_iterations=3, search_max_queries=240)

REAL = FleetSpec(
    name="real",
    model="ncf",
    platform="broadwell",
    num_servers=3,
    batch_size=128,
    num_cores=4,
)
UNDER_PROVISIONED = FleetSpec(
    name="what-if",
    model="ncf",
    platform="broadwell",
    num_servers=1,
    batch_size=128,
    num_cores=2,
)


def make_twin(what_if=None, **kwargs):
    params = dict(
        real=REAL,
        sla_latency_s=0.05,
        load_generator=LoadGenerator(seed=7),
        what_if=what_if,
        **FAST_SEARCH,
    )
    params.update(kwargs)
    return DigitalTwin(**params)


def windowed_stream(num_queries=500, rate_qps=80.0, window_s=2.0, seed=7):
    queries = LoadGenerator(seed=seed).with_rate(rate_qps).generate(num_queries)
    manager = WindowManager(window_s=window_s)
    windows = manager.extend(queries) + manager.flush()
    return queries, windows


class TestCumulativeBitIdentity:
    """Windowed cumulative re-simulation == one-shot batch, bit for bit."""

    def test_final_window_matches_one_shot_batch(self):
        queries, windows = windowed_stream()
        assert len(windows) >= 3  # the slicing has to actually happen
        with make_twin() as twin:
            for window in windows:
                twin.observe(window)
            windowed = twin.last_cumulative_result()
        batch_servers = REAL.build_servers()
        from repro.serving.cluster import ClusterSimulator

        batch = ClusterSimulator(batch_servers, balancer=REAL.policy).run(queries)
        assert windowed.latencies_s == batch.latencies_s  # bit-identical
        assert windowed.p95_latency_s == batch.p95_latency_s
        assert windowed.per_server == batch.per_server

    def test_what_if_side_is_also_bit_identical(self):
        queries, windows = windowed_stream(num_queries=300)
        with make_twin(what_if=UNDER_PROVISIONED) as twin:
            for window in windows:
                twin.observe(window)
            windowed = twin.last_cumulative_result("what-if")
        from repro.serving.cluster import ClusterSimulator

        batch = ClusterSimulator(
            UNDER_PROVISIONED.build_servers(), balancer=UNDER_PROVISIONED.policy
        ).run(queries)
        assert windowed.latencies_s == batch.latencies_s

    def test_identity_is_independent_of_window_size(self):
        queries, coarse = windowed_stream(num_queries=300, window_s=5.0)
        _, fine = windowed_stream(num_queries=300, window_s=1.0)
        assert len(fine) > len(coarse)
        results = []
        for windows in (coarse, fine):
            with make_twin() as twin:
                for window in windows:
                    twin.observe(window)
                results.append(twin.last_cumulative_result())
        assert results[0].latencies_s == results[1].latencies_s

    def test_out_of_order_stream_within_lateness_matches_batch(self):
        queries, _ = windowed_stream(num_queries=200)
        # Swap adjacent events: mild disorder a real feed would show.
        shuffled = list(queries)
        for i in range(0, len(shuffled) - 1, 2):
            shuffled[i], shuffled[i + 1] = shuffled[i + 1], shuffled[i]
        manager = WindowManager(window_s=2.0, allowed_lateness_s=1.0)
        windows = manager.extend(shuffled) + manager.flush()
        assert manager.late_events == 0
        with make_twin() as twin:
            for window in windows:
                twin.observe(window)
            windowed = twin.last_cumulative_result()
        from repro.serving.cluster import ClusterSimulator

        batch = ClusterSimulator(REAL.build_servers(), balancer=REAL.policy).run(
            queries
        )
        assert windowed.latencies_s == batch.latencies_s


class TestCapacityMemoEconomics:
    def test_first_window_cold_then_memo_replays(self):
        _, windows = windowed_stream(num_queries=400)
        with make_twin(what_if=UNDER_PROVISIONED) as twin:
            reports = [twin.observe(window) for window in windows]
            stats = twin.capacity_cache.stats
        assert reports[0].real.evaluations > 0
        assert reports[0].what_if.evaluations > 0
        for report in reports[1:]:
            assert report.real.evaluations == 0
            assert report.what_if.evaluations == 0
        assert stats["stores"] == 2  # one cold search per config
        assert stats["memo_hits"] == 2 * (len(reports) - 1)

    def test_capacity_prediction_stable_across_windows(self):
        _, windows = windowed_stream(num_queries=400)
        with make_twin() as twin:
            capacities = {twin.observe(w).real.capacity_qps for w in windows}
        assert len(capacities) == 1  # the memo replays the same answer

    def test_cumulative_counters_track_history(self):
        _, windows = windowed_stream(num_queries=200)
        with make_twin() as twin:
            for expected, window in enumerate(windows, start=1):
                report = twin.observe(window)
                assert twin.windows_observed == expected
            assert report.cumulative_queries == sum(
                len(w.queries) for w in windows
            )
            assert twin.cumulative_queries == report.cumulative_queries


class TestShadowMode:
    def test_under_provisioned_what_if_diverges_on_diurnal_replay(self):
        trace = generate_diurnal_trace(
            700.0,
            20.0,
            pattern=DiurnalPattern(amplitude=0.5, period_s=20.0),
            seed=17,
            time_step_s=2.0,
        )
        manager = WindowManager(window_s=4.0)
        windows = manager.extend(trace.queries) + manager.flush()
        with make_twin(
            what_if=UNDER_PROVISIONED, search_max_queries=400
        ) as twin:
            reports = [twin.observe(window) for window in windows]
        # The real fleet holds the SLA throughout; the what-if cannot.
        assert all(r.real.green for r in reports)
        diverged = [r for r in reports if r.shadow.diverged]
        assert diverged, "under-provisioned what-if never flagged"
        final = reports[-1]
        assert not final.what_if.green
        assert final.shadow.diverged
        assert "DIVERGED" in final.shadow.describe()
        assert final.what_if.config in final.shadow.describe()
        assert "DIVERGED" in final.summary_line()

    def test_identical_configs_never_diverge(self):
        twin_spec = FleetSpec(**{**REAL.to_dict(), "name": "candidate"})
        _, windows = windowed_stream(num_queries=300)
        with make_twin(what_if=twin_spec) as twin:
            reports = [twin.observe(window) for window in windows]
        for report in reports:
            assert not report.shadow.diverged
            assert report.shadow.p95_delta_s == 0.0
            assert report.shadow.capacity_delta_qps == 0.0
            assert "aligned" in report.shadow.describe()

    def test_no_what_if_means_no_shadow_verdict(self):
        _, windows = windowed_stream(num_queries=120)
        with make_twin() as twin:
            report = twin.observe(windows[0])
        assert report.what_if is None
        assert report.shadow is None
        assert "what-if" not in report.summary_line()

    def test_shadow_verdict_directions(self):
        def verdict(name, p95, green):
            return ConfigVerdict(
                config=name,
                p95_latency_s=p95,
                sla_latency_s=0.1,
                meets_sla=green,
                stable=green,
                capacity_qps=1000.0,
                offered_qps=500.0,
                evaluations=0,
            )

        recovering = compare_verdicts(
            verdict("real", 0.4, False), verdict("what-if", 0.05, True)
        )
        assert recovering.diverged
        assert "meets the 100.0 ms SLA" in recovering.describe()
        aligned_red = compare_verdicts(
            verdict("real", 0.4, False), verdict("what-if", 0.5, False)
        )
        assert not aligned_red.diverged
        assert "both RED" in aligned_red.describe()


class TestTwinReports:
    def test_to_experiment_result_shape(self):
        _, windows = windowed_stream(num_queries=300)
        with make_twin(what_if=UNDER_PROVISIONED) as twin:
            report = twin.observe(windows[0])
        result = report.to_experiment_result()
        assert result.experiment_id == "digital-twin-w0000"
        assert [row[0] for row in result.rows] == ["real", "what-if"]
        assert len(result.rows[0]) == len(result.headers)
        assert result.metadata["window_index"] == 0
        assert "diverged" in result.metadata

    def test_render_window_reports_produces_report_text(self):
        _, windows = windowed_stream(num_queries=300)
        with make_twin() as twin:
            reports = [twin.observe(window) for window in windows[:2]]
        text = render_window_reports(reports)
        assert "digital-twin-w0000" in text
        assert "digital-twin-w0001" in text
        assert "capacity-qps" in text

    def test_median_window_rate_tracks_closed_windows(self):
        _, windows = windowed_stream(num_queries=300)
        with make_twin() as twin:
            reports = [twin.observe(window) for window in windows]
        rates = [w.mean_rate_qps for w in windows]
        assert reports[0].median_window_rate_qps == rates[0]
        assert reports[-1].median_window_rate_qps == pytest.approx(
            sorted(rates)[len(rates) // 2], rel=0.5
        )


class TestTwinGuards:
    def test_empty_window_rejected(self):
        from repro.service.windows import Window

        with make_twin() as twin:
            with pytest.raises(ValueError, match="empty"):
                twin.observe(Window(index=0, start_s=0.0, end_s=1.0, queries=()))

    def test_no_history_rejected(self):
        with make_twin() as twin:
            with pytest.raises(ValueError, match="no windows"):
                twin.last_cumulative_result()

    def test_unknown_config_rejected(self):
        _, windows = windowed_stream(num_queries=120)
        with make_twin() as twin:
            twin.observe(windows[0])
            with pytest.raises(KeyError, match="unknown config"):
                twin.last_cumulative_result("nope")

    def test_duplicate_config_names_rejected(self):
        with pytest.raises(ValueError, match="distinct names"):
            make_twin(what_if=FleetSpec(**{**UNDER_PROVISIONED.to_dict(), "name": "real"}))

    def test_explicit_cache_dir_is_not_deleted_on_close(self, tmp_path):
        _, windows = windowed_stream(num_queries=120)
        twin = make_twin(capacity_cache_dir=tmp_path)
        twin.observe(windows[0])
        twin.close()
        assert tmp_path.exists()
        assert list(tmp_path.iterdir())  # the cold search was persisted


class TestFleetSpec:
    def test_round_trip_and_loading(self, tmp_path):
        path = tmp_path / "what_if.json"
        path.write_text(json.dumps(UNDER_PROVISIONED.to_dict()))
        assert load_fleet_spec(path) == UNDER_PROVISIONED

    def test_name_default_applied_when_missing(self, tmp_path):
        payload = UNDER_PROVISIONED.to_dict()
        del payload["name"]
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        assert load_fleet_spec(path, name="candidate").name == "candidate"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet-spec keys"):
            FleetSpec.from_dict({**UNDER_PROVISIONED.to_dict(), "gpus": 4})

    def test_non_object_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="JSON object"):
            load_fleet_spec(path)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown balancing policy"):
            FleetSpec(
                name="x", model="ncf", num_servers=1, batch_size=8, policy="psychic"
            )


class TestSketchStatisticsTier:
    def test_sketch_twin_reports_same_verdicts(self):
        # On figure-sized windows the sketch tier stays pre-compaction
        # exact, so the verdicts (and the capacity answers, which come
        # from sketch-signature cache entries) must agree with the exact
        # twin's.
        queries, windows = windowed_stream(num_queries=300)
        exact_twin = make_twin()
        sketch_twin = make_twin(latency_stats="sketch")
        with exact_twin, sketch_twin:
            for window in windows:
                exact_report = exact_twin.observe(window)
                sketch_report = sketch_twin.observe(window)
            assert sketch_twin.latency_stats == "sketch"
            assert exact_report.real.meets_sla == sketch_report.real.meets_sla
            assert exact_report.real.p95_latency_s == pytest.approx(
                sketch_report.real.p95_latency_s, rel=1e-9
            )

    def test_size_rollup_accumulates_in_both_modes(self):
        queries, windows = windowed_stream(num_queries=300)
        for mode in ("exact", "sketch"):
            twin = make_twin(latency_stats=mode)
            with twin:
                for window in windows:
                    twin.observe(window)
                rollup = twin.size_rollup
                assert rollup.latency_stats == mode
                assert rollup.windows_folded == len(windows)
                assert rollup.count == len(queries)
                assert rollup.percentile(50.0) > 0.0

    def test_invalid_tier_rejected(self):
        with pytest.raises(ValueError, match="latency_stats"):
            make_twin(latency_stats="histogram")
