"""Tests for the ablation experiment drivers (reduced fidelity)."""

import pytest

from repro.experiments import available_experiments, run_experiment
from repro.serving.sla import SLATier

FAST = dict(num_queries=150, capacity_iterations=3)


class TestAblationRegistry:
    def test_ablations_registered(self):
        registered = set(available_experiments())
        assert {"ablation-arrival", "ablation-size-dist", "ablation-cache-contention"} <= registered


class TestArrivalAblation:
    def test_rows_and_capacities(self):
        result = run_experiment(
            "ablation-arrival",
            arrival_processes=("poisson", "fixed"),
            **FAST,
        )
        assert len(result.rows) == 2
        capacities = result.metadata["capacity_by_arrival"]
        assert all(qps > 0 for qps in capacities.values())

    def test_poisson_is_most_conservative(self):
        result = run_experiment(
            "ablation-arrival",
            arrival_processes=("poisson", "fixed"),
            num_queries=250,
            capacity_iterations=3,
        )
        capacities = result.metadata["capacity_by_arrival"]
        # Smoother arrivals sustain at least as much load as bursty Poisson.
        assert capacities["fixed"] >= 0.9 * capacities["poisson"]


class TestSizeDistributionAblation:
    def test_mismatch_penalty_at_least_one(self):
        result = run_experiment(
            "ablation-size-dist",
            batch_sizes=(128, 256, 512, 1024),
            **FAST,
        )
        assert result.metadata["mismatch_penalty"] >= 0.95
        optima = result.metadata["optimal_batch"]
        # The flat-optimum jitter is bounded: both tuned batches are large,
        # and the lognormal one is within a power-of-two step of production's.
        assert optima["production"] >= 128
        assert optima["lognormal"] <= 2 * optima["production"]

    def test_rows_cover_both_distributions(self):
        result = run_experiment(
            "ablation-size-dist", batch_sizes=(256, 512), **FAST
        )
        assert sorted(result.column("tuned-on")) == ["lognormal", "production"]


class TestCacheContentionAblation:
    def test_removing_contention_never_hurts(self):
        result = run_experiment(
            "ablation-cache-contention",
            batch_sizes=(64, 512),
            **FAST,
        )
        ratios = result.metadata["uplift_without_contention"]
        assert all(ratio >= 0.9 for ratio in ratios.values())

    def test_small_batches_gain_at_least_as_much(self):
        result = run_experiment(
            "ablation-cache-contention",
            batch_sizes=(32, 1024),
            num_queries=250,
            capacity_iterations=3,
        )
        ratios = result.metadata["uplift_without_contention"]
        assert ratios[32] >= ratios[1024] - 0.1

    def test_tier_parameter_accepted(self):
        result = run_experiment(
            "ablation-cache-contention",
            batch_sizes=(256,),
            tier=SLATier.HIGH,
            **FAST,
        )
        assert len(result.rows) == 1
