"""Tests for the roofline and system power models."""

import pytest

from repro.hardware.cpu import skylake
from repro.hardware.gpu import gtx_1080ti
from repro.hardware.power import PowerReport, SystemPowerModel
from repro.hardware.roofline import RooflineModel, RooflinePoint


class TestRoofline:
    def test_ridge_point_equals_machine_balance(self):
        cpu = skylake()
        assert RooflineModel(cpu).ridge_point == pytest.approx(cpu.machine_balance)

    def test_memory_bound_region(self):
        roofline = RooflineModel(skylake())
        low_intensity = roofline.ridge_point / 10
        assert roofline.is_memory_bound(low_intensity)
        assert roofline.attainable_flops(low_intensity) == pytest.approx(
            low_intensity * skylake().memory_bandwidth
        )

    def test_compute_bound_region(self):
        roofline = RooflineModel(skylake())
        high_intensity = roofline.ridge_point * 10
        assert not roofline.is_memory_bound(high_intensity)
        assert roofline.attainable_flops(high_intensity) == pytest.approx(
            skylake().peak_flops
        )

    def test_attainable_is_monotone(self):
        roofline = RooflineModel(skylake())
        curve = roofline.curve([0.1, 1.0, 10.0, 100.0, 1000.0])
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_efficiency_capped_at_one(self):
        roofline = RooflineModel(skylake())
        point = RooflinePoint("x", 1.0, 1e18)
        assert roofline.efficiency(point) == 1.0

    def test_efficiency_fraction(self):
        roofline = RooflineModel(skylake())
        attainable = roofline.attainable_flops(1.0)
        point = RooflinePoint("x", 1.0, attainable / 2)
        assert roofline.efficiency(point) == pytest.approx(0.5)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            RooflinePoint("x", -1.0, 1.0)


class TestPowerModel:
    def test_cpu_only_power(self):
        model = SystemPowerModel(skylake())
        report = model.power(cpu_utilization=1.0, qps=100.0)
        assert report.gpu_watts == 0.0
        assert report.total_watts == pytest.approx(skylake().tdp_watts)

    def test_cpu_plus_gpu_power(self):
        model = SystemPowerModel(skylake(), gtx_1080ti())
        report = model.power(cpu_utilization=0.5, gpu_utilization=0.5, qps=100.0)
        assert report.cpu_watts > 0
        assert report.gpu_watts > 0
        assert report.total_watts == pytest.approx(report.cpu_watts + report.gpu_watts)

    def test_idle_gpu_still_draws_power(self):
        model = SystemPowerModel(skylake(), gtx_1080ti())
        report = model.power(cpu_utilization=0.5, gpu_utilization=0.0)
        assert report.gpu_watts == pytest.approx(gtx_1080ti().idle_power())

    def test_qps_per_watt(self):
        report = PowerReport(cpu_watts=100.0, gpu_watts=100.0, qps=400.0)
        assert report.qps_per_watt == pytest.approx(2.0)

    def test_gpu_reduces_efficiency_when_underused(self):
        cpu_only = SystemPowerModel(skylake())
        with_gpu = SystemPowerModel(skylake(), gtx_1080ti())
        qps = 1000.0
        cpu_report = cpu_only.power(0.8, qps=qps)
        gpu_report = with_gpu.power(0.8, 0.05, qps=qps)
        assert gpu_report.qps_per_watt < cpu_report.qps_per_watt
