"""Tests for query splitting and SLA targets."""

import pytest

from repro.models.zoo import MODEL_NAMES, get_config
from repro.queries.query import Query
from repro.serving.request import Request, num_requests, split_query
from repro.serving.sla import SLATier, TIER_MULTIPLIERS, sla_target, sla_targets


class TestSplitQuery:
    def test_even_split(self):
        query = Query(0, 0.0, 256)
        requests = split_query(query, 64)
        assert len(requests) == 4
        assert all(r.batch_size == 64 for r in requests)

    def test_remainder_in_last_request(self):
        requests = split_query(Query(0, 0.0, 100), 64)
        assert [r.batch_size for r in requests] == [64, 36]

    def test_batch_larger_than_query(self):
        requests = split_query(Query(0, 0.0, 10), 64)
        assert len(requests) == 1
        assert requests[0].batch_size == 10

    def test_sizes_sum_to_query_size(self):
        query = Query(3, 0.0, 777)
        requests = split_query(query, 50)
        assert sum(r.batch_size for r in requests) == 777
        assert all(r.query_id == 3 for r in requests)

    def test_indices_sequential(self):
        requests = split_query(Query(0, 0.0, 200), 64)
        assert [r.index for r in requests] == list(range(len(requests)))

    def test_num_requests_matches_split(self):
        for size, batch in [(1, 1), (100, 64), (1000, 25), (64, 64)]:
            assert num_requests(size, batch) == len(split_query(Query(0, 0.0, size), batch))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            split_query(Query(0, 0.0, 10), 0)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            Request(query_id=0, batch_size=0, index=0)
        with pytest.raises(ValueError):
            Request(query_id=0, batch_size=1, index=-1)


class TestSLATargets:
    def test_medium_matches_published_target(self):
        for name in MODEL_NAMES:
            target = sla_target(name, SLATier.MEDIUM)
            assert target.latency_ms == pytest.approx(get_config(name).sla_target_ms)

    def test_low_and_high_multipliers(self):
        medium = sla_target("dlrm-rmc1", SLATier.MEDIUM).latency_s
        assert sla_target("dlrm-rmc1", SLATier.LOW).latency_s == pytest.approx(0.5 * medium)
        assert sla_target("dlrm-rmc1", SLATier.HIGH).latency_s == pytest.approx(1.5 * medium)

    def test_all_tiers_returned(self):
        targets = sla_targets("ncf")
        assert set(targets) == set(SLATier)
        assert targets[SLATier.LOW].latency_s < targets[SLATier.HIGH].latency_s

    def test_accepts_config_object(self):
        config = get_config("wnd")
        assert sla_target(config).model_name == "wnd"

    def test_tier_multipliers_cover_all_tiers(self):
        assert set(TIER_MULTIPLIERS) == set(SLATier)

    def test_tier_accepts_string_value(self):
        assert sla_target("ncf", "low").tier is SLATier.LOW

    def test_ncf_has_tightest_target(self):
        targets = {name: sla_target(name).latency_s for name in MODEL_NAMES}
        assert min(targets, key=targets.get) == "ncf"
