"""Tests for deterministic fault injection (repro.faults + cluster loop).

The resilience contract under test:

* **Result neutrality** — a simulator built without a plan, with ``None``,
  or with an empty :class:`FaultPlan` produces bit-identical results, and
  carries no :class:`FaultStats` at all.
* **Determinism** — generated plans are pure functions of their seed, and
  a faulted replay of a fixed plan is bit-identical run to run.
* **Semantics** — crashes lose in-flight work and blackhole naive
  dispatches; retries and hedges recover queries within their budget;
  stragglers slow completions without losing them; the failure-aware
  balancer routes around the health view.
* **Honest accounting** — a query lost to faults counts against the SLA
  acceptance (``meets_sla``), so blackholing can never *raise* measured
  capacity.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.execution.engine import build_engine_pair
from repro.faults import (
    CrashWindow,
    FaultPlan,
    FaultStats,
    NodeFaultSchedule,
    RetryPolicy,
    StragglerEpisode,
)
from repro.queries.generator import LoadGenerator
from repro.serving.cluster import (
    ClusterSimulationResult,
    ClusterSimulator,
    find_cluster_max_qps,
    homogeneous_fleet,
)
from repro.serving.simulator import ServingConfig

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def servers():
    engines = build_engine_pair("dlrm-rmc1", "skylake", None)
    config = ServingConfig(batch_size=256, num_cores=8)
    return homogeneous_fleet(engines, config, 3)


@pytest.fixture(scope="module")
def queries():
    return LoadGenerator(seed=11).with_rate(3000.0).generate(3000)


def storm() -> FaultPlan:
    """Node 0 down early, node 2 down late, node 1 straggling in between."""
    return FaultPlan(
        nodes={
            0: NodeFaultSchedule(crashes=(CrashWindow(0.1, 0.45),)),
            1: NodeFaultSchedule(
                stragglers=(StragglerEpisode(0.3, 0.7, slowdown=4.0),)
            ),
            2: NodeFaultSchedule(crashes=(CrashWindow(0.6, 0.85),)),
        }
    )


class TestPlanDataModel:
    def test_generate_is_a_pure_function_of_the_seed(self):
        kwargs = dict(
            crash_rate_hz=0.4,
            mean_downtime_s=0.5,
            straggler_rate_hz=0.2,
            mean_straggler_s=0.5,
        )
        assert FaultPlan.generate(3, 20.0, seed=7, **kwargs) == FaultPlan.generate(
            3, 20.0, seed=7, **kwargs
        )
        assert FaultPlan.generate(3, 20.0, seed=7, **kwargs) != FaultPlan.generate(
            3, 20.0, seed=8, **kwargs
        )

    def test_round_trip_through_dict(self):
        plan = storm()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_zero_rate_generates_the_empty_plan(self):
        assert FaultPlan.generate(3, 20.0, seed=7).is_empty()

    def test_events_are_time_sorted_with_recoveries_before_crashes(self):
        plan = FaultPlan(
            nodes={
                0: NodeFaultSchedule(crashes=(CrashWindow(0.0, 1.0),)),
                1: NodeFaultSchedule(crashes=(CrashWindow(1.0, 2.0),)),
            }
        )
        kinds = [(event.time_s, event.kind) for event in plan.events(2)]
        assert kinds == [
            (0.0, "crash"),
            (1.0, "recover"),
            (1.0, "crash"),
            (2.0, "recover"),
        ]

    def test_events_ignore_nodes_beyond_the_fleet(self):
        plan = FaultPlan(
            nodes={5: NodeFaultSchedule(crashes=(CrashWindow(0.0, 1.0),))}
        )
        assert plan.events(3) == []

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValueError, match="end after it starts"):
            CrashWindow(1.0, 1.0)
        with pytest.raises(ValueError, match="slowdown"):
            StragglerEpisode(0.0, 1.0, slowdown=0.5)
        with pytest.raises(ValueError, match="overlap"):
            NodeFaultSchedule(
                crashes=(CrashWindow(0.0, 1.0), CrashWindow(0.5, 2.0))
            )

    def test_retry_policy_validation_and_round_trip(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        policy = RetryPolicy(max_retries=2, hedge=True, detect_delay_s=0.01)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


class TestResultNeutrality:
    def test_zero_plan_runs_are_bit_identical(self, servers, queries):
        plain = ClusterSimulator(servers, "least-outstanding").run(queries)
        with_none = ClusterSimulator(
            servers, "least-outstanding", fault_plan=None
        ).run(queries)
        with_empty = ClusterSimulator(
            servers,
            "least-outstanding",
            fault_plan=FaultPlan(),
            retry_policy=RetryPolicy(max_retries=2, hedge=True),
        ).run(queries)
        assert plain.latencies_s == with_none.latencies_s
        assert plain.latencies_s == with_empty.latencies_s
        assert plain == with_empty
        assert with_empty.fault_stats is None
        assert with_empty.failed_queries == 0

    def test_faulted_replays_are_deterministic(self, servers, queries):
        runs = [
            ClusterSimulator(
                servers,
                "failure-aware",
                fault_plan=storm(),
                retry_policy=RetryPolicy(max_retries=2, hedge=True),
            ).run(queries)
            for _ in range(2)
        ]
        assert runs[0].latencies_s == runs[1].latencies_s
        assert runs[0].fault_stats == runs[1].fault_stats


class TestFaultSemantics:
    def test_naive_balancing_blackholes_into_crashed_nodes(self, servers, queries):
        result = ClusterSimulator(
            servers, "least-outstanding", fault_plan=storm()
        ).run(queries)
        stats = result.fault_stats
        assert stats.crashes == 2
        assert stats.recoveries == 2
        # In-flight work died with the node, and the crashed node's empty
        # queue kept attracting new dispatches that were lost too.
        assert stats.crash_killed_in_flight > 0
        assert stats.blackholed_dispatches > 0
        assert result.failed_queries > 0
        assert stats.retries == 0

    def test_retry_budget_recovers_queries(self, servers, queries):
        naive = ClusterSimulator(
            servers, "least-outstanding", fault_plan=storm()
        ).run(queries)
        retried = ClusterSimulator(
            servers,
            "least-outstanding",
            fault_plan=storm(),
            retry_policy=RetryPolicy(max_retries=3),
        ).run(queries)
        assert retried.fault_stats.retries > 0
        assert retried.failed_queries < naive.failed_queries
        # Every measured (post-warmup) query either completed or failed.
        warmup = int(len(queries) * servers[0].config.warmup_fraction)
        assert (
            len(retried.latencies_s) + retried.failed_queries
            == len(queries) - warmup
        )

    def test_hedged_retries_dispatch_duplicates(self, servers, queries):
        hedged = ClusterSimulator(
            servers,
            "failure-aware",
            fault_plan=storm(),
            retry_policy=RetryPolicy(max_retries=2, hedge=True),
        ).run(queries)
        assert hedged.fault_stats.hedged_dispatches > 0
        assert hedged.failed_queries == 0

    def test_stragglers_slow_completions_without_losing_them(
        self, servers, queries
    ):
        slow_only = FaultPlan(
            nodes={
                1: NodeFaultSchedule(
                    stragglers=(StragglerEpisode(0.1, 0.9, slowdown=6.0),)
                )
            }
        )
        healthy = ClusterSimulator(servers, "least-outstanding").run(queries)
        straggling = ClusterSimulator(
            servers, "least-outstanding", fault_plan=slow_only
        ).run(queries)
        assert straggling.failed_queries == 0
        assert len(straggling.latencies_s) == len(healthy.latencies_s)
        assert straggling.p95_latency_s > healthy.p95_latency_s

    def test_failure_aware_beats_naive_under_the_same_storm(
        self, servers, queries
    ):
        naive = ClusterSimulator(
            servers, "least-outstanding", fault_plan=storm()
        ).run(queries)
        aware = ClusterSimulator(
            servers,
            "failure-aware",
            fault_plan=storm(),
            retry_policy=RetryPolicy(max_retries=2, hedge=True),
        ).run(queries)
        assert aware.failed_queries < naive.failed_queries
        assert aware.failed_queries == 0


def make_result(p95_latency_s, latencies_s, failed):
    stats = FaultStats(failed_queries=failed) if failed else None
    return ClusterSimulationResult(
        policy="least-outstanding",
        num_servers=1,
        num_queries=len(latencies_s) + failed,
        measured_queries=len(latencies_s),
        duration_s=1.0,
        p50_latency_s=p95_latency_s,
        p95_latency_s=p95_latency_s,
        p99_latency_s=p95_latency_s,
        mean_latency_s=p95_latency_s,
        achieved_qps=1.0,
        offered_qps=1.0,
        fleet_cpu_utilization=0.5,
        per_server=[],
        latencies_s=list(latencies_s),
        fault_stats=stats,
    )


class TestFaultAwareSLAAcceptance:
    """Failed queries are SLA misses: blackholing cannot flatter capacity."""

    def test_failures_count_against_the_sla(self):
        # 90 fast completions + 10 failures: >5% of the offered population
        # missed the SLA even though the completions' p95 looks perfect.
        result = make_result(0.01, [0.01] * 90, failed=10)
        assert not result.meets_sla(0.1)

    def test_rare_failures_within_the_5_percent_budget_pass(self):
        result = make_result(0.01, [0.01] * 99, failed=1)
        assert result.meets_sla(0.1)

    def test_zero_failures_take_the_inherited_check(self):
        assert make_result(0.01, [0.01] * 100, failed=0).meets_sla(0.1)
        assert not make_result(0.2, [0.2] * 100, failed=0).meets_sla(0.1)

    def test_faulted_capacity_never_exceeds_healthy_capacity(self, servers):
        generator = LoadGenerator(seed=11)
        fidelity = dict(num_queries=400, iterations=3, max_queries=1200)
        healthy = find_cluster_max_qps(
            servers, "least-outstanding", 0.1, generator, **fidelity
        )
        # A storm covering most of the search workload's span: without the
        # failure-aware acceptance the blackholed queries would *raise* the
        # accepted rate (they never post a latency).
        faulted = find_cluster_max_qps(
            servers,
            "least-outstanding",
            0.1,
            generator,
            fault_plan=FaultPlan(
                nodes={
                    0: NodeFaultSchedule(crashes=(CrashWindow(0.01, 1.0),))
                }
            ),
            **fidelity,
        )
        assert faulted.max_qps < healthy.max_qps


class TestDegradedFleetExperiment:
    def run_small(self):
        from repro.experiments import run_experiment

        return run_experiment(
            "degraded-fleet",
            num_servers=3,
            crash_rates_hz=(0.0, 0.5),
            duration_s=1.5,
            capacity_num_queries=800,
            capacity_iterations=3,
            capacity_max_queries=2400,
        )

    def test_failure_aware_never_loses_on_violations(self):
        result = self.run_small()
        by_rate = result.metadata["by_rate"]
        for rate, cells in by_rate.items():
            assert (
                cells["failure-aware"]["violations"]
                <= cells["naive"]["violations"]
            ), rate
        worst = by_rate["0.5"]
        assert worst["naive"]["failed_queries"] > 0
        assert (
            worst["failure-aware"]["violations"] < worst["naive"]["violations"]
        )

    def test_experiment_is_deterministic(self):
        first = self.run_small()
        second = self.run_small()
        assert first.rows == second.rows

    def test_zero_rate_arms_agree_with_each_other(self):
        result = self.run_small()
        healthy = result.metadata["by_rate"]["0"]
        assert healthy["naive"]["violations"] == 0
        assert (
            healthy["naive"]["p95_latency_s"]
            == healthy["failure-aware"]["p95_latency_s"]
        )


class TestFaultPlanHash:
    """``FaultPlan.__hash__`` must be stable across interpreter processes.

    The plan's hash feeds set/dict placement wherever plans are deduped; a
    PYTHONHASHSEED-dependent hash would make that placement differ between
    runs.  It is process-stable only because the hashed tuple bottoms out in
    ints and floats (never str/bytes, the only salted types) — the invariant
    the inline RL001 suppression in ``plan.py`` relies on.
    """

    def test_schedule_fields_contain_no_strings(self):
        plan = storm()
        def flatten(value):
            if isinstance(value, (CrashWindow, StragglerEpisode)):
                return [
                    inner
                    for name in value.__dataclass_fields__
                    for inner in flatten(getattr(value, name))
                ]
            if isinstance(value, (tuple, list)):
                return [inner for item in value for inner in flatten(item)]
            return [value]

        leaves = [
            leaf
            for node, schedule in plan.nodes.items()
            for leaf in [node] + flatten(schedule.crashes) + flatten(schedule.stragglers)
        ]
        assert leaves and all(isinstance(leaf, (int, float)) for leaf in leaves)

    def test_hash_identical_across_hash_seeds(self):
        plan = storm()
        script = (
            "from repro.faults import ("
            "CrashWindow, FaultPlan, NodeFaultSchedule, StragglerEpisode);"
            "plan = FaultPlan(nodes={"
            "0: NodeFaultSchedule(crashes=(CrashWindow(0.1, 0.45),)),"
            "1: NodeFaultSchedule(stragglers=(StragglerEpisode(0.3, 0.7, slowdown=4.0),)),"
            "2: NodeFaultSchedule(crashes=(CrashWindow(0.6, 0.85),))});"
            "print(hash(plan))"
        )
        hashes = set()
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [str(SRC_DIR), env.get("PYTHONPATH", "")])
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            hashes.add(int(result.stdout.strip()))
        assert len(hashes) == 1, f"hash varies with PYTHONHASHSEED: {hashes}"
        assert hash(plan) in hashes  # reprolint: disable=RL001 -- the salted-hash behaviour is exactly what this test verifies
