"""Tests for the CPU and GPU platform definitions."""

import pytest

from repro.hardware.cache import CachePolicy
from repro.hardware.cpu import available_cpus, broadwell, get_cpu, skylake
from repro.hardware.gpu import available_gpus, get_gpu, gtx_1080ti
from repro.utils.units import GB


class TestCPUPlatforms:
    def test_broadwell_parameters(self):
        cpu = broadwell()
        assert cpu.num_cores == 28
        assert cpu.simd_width_bits == 256
        assert cpu.cache.policy is CachePolicy.INCLUSIVE
        assert cpu.tdp_watts == pytest.approx(120.0)

    def test_skylake_parameters(self):
        cpu = skylake()
        assert cpu.num_cores == 40
        assert cpu.simd_width_bits == 512
        assert cpu.cache.policy is CachePolicy.EXCLUSIVE
        assert cpu.tdp_watts == pytest.approx(125.0)

    def test_skylake_wider_simd_than_broadwell(self):
        assert skylake().simd_lanes_fp32 == 2 * broadwell().simd_lanes_fp32

    def test_per_core_peak_flops_consistent(self):
        cpu = skylake()
        assert cpu.per_core_peak_flops == pytest.approx(
            cpu.flops_per_cycle_per_core * cpu.frequency_hz
        )
        assert cpu.peak_flops == pytest.approx(cpu.per_core_peak_flops * cpu.num_cores)

    def test_per_core_bandwidth_fraction(self):
        cpu = broadwell()
        assert cpu.per_core_bandwidth == pytest.approx(
            cpu.memory_bandwidth * cpu.per_core_bandwidth_fraction
        )
        assert cpu.per_core_bandwidth < cpu.memory_bandwidth

    def test_registry_lookup(self):
        assert get_cpu("skylake").name == "skylake"
        assert get_cpu("BROADWELL").name == "broadwell"
        assert set(available_cpus()) == {"broadwell", "skylake"}

    def test_registry_custom_core_count(self):
        assert get_cpu("skylake", num_cores=8).num_cores == 8

    def test_unknown_cpu_raises(self):
        with pytest.raises(KeyError):
            get_cpu("epyc")

    def test_invalid_simd_width_rejected(self):
        cpu = skylake()
        with pytest.raises(ValueError):
            type(cpu)(
                name="bad",
                peak_flops=cpu.peak_flops,
                memory_bandwidth=cpu.memory_bandwidth,
                tdp_watts=cpu.tdp_watts,
                num_cores=4,
                frequency_hz=2e9,
                simd_width_bits=384,
            )


class TestGPUPlatform:
    def test_gtx_1080ti_parameters(self):
        gpu = gtx_1080ti()
        assert gpu.peak_flops == pytest.approx(11.3e12)
        assert gpu.num_sms == 28
        assert gpu.tdp_watts == pytest.approx(250.0)

    def test_gpu_bandwidth_far_exceeds_cpu(self):
        assert gtx_1080ti().memory_bandwidth > 4 * skylake().memory_bandwidth

    def test_transfer_time_scales_with_bytes(self):
        gpu = gtx_1080ti()
        small = gpu.transfer_time(1 * GB)
        large = gpu.transfer_time(2 * GB)
        assert large > small
        assert large - small == pytest.approx(1 * GB / gpu.pcie_bandwidth)

    def test_transfer_time_includes_fixed_overhead(self):
        gpu = gtx_1080ti()
        assert gpu.transfer_time(0) == pytest.approx(gpu.transfer_overhead_s)

    def test_transfer_negative_bytes_raises(self):
        with pytest.raises(ValueError):
            gtx_1080ti().transfer_time(-1)

    def test_registry(self):
        assert get_gpu("gtx1080ti").name == "gtx1080ti"
        assert available_gpus() == ["gtx1080ti"]
        with pytest.raises(KeyError):
            get_gpu("a100")
