"""Tests for repro.utils.rng, units, validation, and tables."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, derive_rng
from repro.utils.tables import format_table
from repro.utils.units import (
    GB,
    KB,
    MB,
    bytes_to_gb,
    bytes_to_mb,
    flops_to_gflops,
    ms_to_s,
    s_to_ms,
    s_to_us,
    us_to_s,
)
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestRng:
    def test_derive_from_int_is_reproducible(self):
        a = derive_rng(42).random(5)
        b = derive_rng(42).random(5)
        assert np.allclose(a, b)

    def test_derive_passes_through_generator(self):
        generator = np.random.default_rng(0)
        assert derive_rng(generator) is generator

    def test_factory_children_reproducible(self):
        first = RngFactory(7).child("arrivals").random(4)
        second = RngFactory(7).child("arrivals").random(4)
        assert np.allclose(first, second)

    def test_factory_children_independent(self):
        factory = RngFactory(7)
        a = factory.child("arrivals").random(4)
        b = factory.child("sizes").random(4)
        assert not np.allclose(a, b)

    def test_factory_seed_property(self):
        assert RngFactory(11).seed == 11
        assert RngFactory().seed is None

    def test_spawn_count(self):
        children = RngFactory(3).spawn(4)
        assert len(children) == 4

    def test_spawn_invalid_count(self):
        with pytest.raises(ValueError):
            RngFactory(3).spawn(0)


class TestUnits:
    def test_byte_constants(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_time_conversions_roundtrip(self):
        assert ms_to_s(s_to_ms(0.123)) == pytest.approx(0.123)
        assert us_to_s(s_to_us(0.123)) == pytest.approx(0.123)

    def test_byte_conversions(self):
        assert bytes_to_mb(5 * MB) == pytest.approx(5.0)
        assert bytes_to_gb(3 * GB) == pytest.approx(3.0)

    def test_flops_conversion(self):
        assert flops_to_gflops(2.5e9) == pytest.approx(2.5)


class TestValidation:
    def test_check_positive_accepts_positive(self):
        assert check_positive("x", 3) == 3

    def test_check_positive_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="batch_size"):
            check_positive("batch_size", -2)


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.25]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.500" in text
        assert "3.250" in text

    def test_title_included(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_custom_float_format(self):
        text = format_table(["v"], [[1.23456]], float_fmt=".1f")
        assert "1.2" in text
        assert "1.23" not in text

    def test_alignment_width(self):
        text = format_table(["name", "v"], [["a-very-long-name", 1]])
        header, separator, row = text.splitlines()
        assert len(header) == len(row)
        assert len(separator) == len(header)
