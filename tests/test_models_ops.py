"""Tests for the analytic operator cost models."""

import pytest

from repro.models.ops import (
    AttentionUnit,
    Concat,
    ElementwiseSum,
    EmbeddingGather,
    FullyConnected,
    GRULayer,
    OperatorCategory,
    OperatorCost,
    mlp_operators,
)


class TestOperatorCost:
    def test_total_bytes(self):
        cost = OperatorCost(flops=10.0, regular_bytes=4.0, irregular_bytes=6.0)
        assert cost.total_bytes == 10.0

    def test_operational_intensity(self):
        cost = OperatorCost(flops=20.0, regular_bytes=10.0)
        assert cost.operational_intensity == pytest.approx(2.0)

    def test_zero_traffic_intensity(self):
        assert OperatorCost(flops=5.0, regular_bytes=0.0).operational_intensity == 0.0

    def test_addition(self):
        a = OperatorCost(1.0, 2.0, 3.0)
        b = OperatorCost(10.0, 20.0, 30.0)
        total = a + b
        assert total.flops == 11.0
        assert total.regular_bytes == 22.0
        assert total.irregular_bytes == 33.0


class TestFullyConnected:
    def test_flops_formula(self):
        op = FullyConnected("fc", 128, 64)
        assert op.cost(10).flops == pytest.approx(2 * 10 * 128 * 64)

    def test_flops_scale_linearly_with_batch(self):
        op = FullyConnected("fc", 128, 64)
        assert op.cost(20).flops == pytest.approx(2 * op.cost(10).flops)

    def test_weight_bytes(self):
        op = FullyConnected("fc", 128, 64)
        assert op.weight_bytes() == (128 * 64 + 64) * 4

    def test_no_irregular_traffic(self):
        assert FullyConnected("fc", 8, 8).cost(4).irregular_bytes == 0.0

    def test_category(self):
        assert FullyConnected("fc", 8, 8).category is OperatorCategory.FC

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            FullyConnected("fc", 8, 8).cost(0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            FullyConnected("fc", 0, 8)


class TestEmbeddingGather:
    def test_irregular_bytes_formula(self):
        op = EmbeddingGather("emb", num_tables=4, rows_per_table=1000,
                             embedding_dim=32, lookups_per_table=10)
        cost = op.cost(8)
        assert cost.irregular_bytes == pytest.approx(8 * 4 * 10 * 32 * 4)

    def test_weight_bytes_is_table_storage(self):
        op = EmbeddingGather("emb", 4, 1000, 32, 10)
        assert op.weight_bytes() == 4 * 1000 * 32 * 4

    def test_pooling_flops(self):
        op = EmbeddingGather("emb", 2, 100, 16, 5)
        assert op.cost(3).flops == pytest.approx(3 * 2 * 4 * 16)

    def test_one_lookup_no_pooling_flops(self):
        op = EmbeddingGather("emb", 2, 100, 16, 1)
        assert op.cost(3).flops == 0.0

    def test_memory_dominated_intensity(self):
        op = EmbeddingGather("emb", 8, 1_000_000, 32, 80)
        assert op.cost(64).operational_intensity < 1.0

    def test_category(self):
        assert EmbeddingGather("emb", 1, 1, 1, 1).category is OperatorCategory.EMBEDDING


class TestDataMovementOps:
    def test_concat_zero_flops(self):
        cost = Concat("c", 128).cost(4)
        assert cost.flops == 0.0
        assert cost.regular_bytes == 2 * 4 * 128 * 4

    def test_sum_flops(self):
        cost = ElementwiseSum("s", 64, num_inputs=3).cost(2)
        assert cost.flops == pytest.approx(2 * 64 * 2)

    def test_categories(self):
        assert Concat("c", 1).category is OperatorCategory.CONCAT
        assert ElementwiseSum("s", 1).category is OperatorCategory.SUM


class TestAttentionUnit:
    def test_flops_scale_with_sequence_length(self):
        short = AttentionUnit("a", 32, sequence_length=10).cost(4).flops
        long = AttentionUnit("a", 32, sequence_length=20).cost(4).flops
        assert long == pytest.approx(2 * short)

    def test_flops_scale_with_batch(self):
        op = AttentionUnit("a", 32, sequence_length=10)
        assert op.cost(8).flops == pytest.approx(2 * op.cost(4).flops)

    def test_weight_bytes_positive(self):
        assert AttentionUnit("a", 32, 10).weight_bytes() > 0

    def test_category(self):
        assert AttentionUnit("a", 32, 10).category is OperatorCategory.ATTENTION


class TestGRULayer:
    def test_flops_scale_with_sequence(self):
        short = GRULayer("g", 32, 64, sequence_length=5).cost(4).flops
        long = GRULayer("g", 32, 64, sequence_length=10).cost(4).flops
        assert long == pytest.approx(2 * short)

    def test_weight_traffic_per_timestep(self):
        op = GRULayer("g", 32, 64, sequence_length=10)
        cost = op.cost(1)
        assert cost.regular_bytes >= op.weight_bytes() * 10

    def test_category(self):
        assert GRULayer("g", 8, 8, 4).category is OperatorCategory.RECURRENT


class TestMlpOperators:
    def test_chain_dimensions(self):
        ops = mlp_operators("p", [128, 64, 32, 1])
        assert len(ops) == 3
        assert ops[0].in_features == 128 and ops[0].out_features == 64
        assert ops[-1].in_features == 32 and ops[-1].out_features == 1

    def test_names_are_unique(self):
        ops = mlp_operators("p", [8, 8, 8])
        assert len({op.name for op in ops}) == len(ops)

    def test_too_few_dims_raises(self):
        with pytest.raises(ValueError):
            mlp_operators("p", [8])
