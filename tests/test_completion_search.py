"""Completion-driven capacity search: decision identity, hints, early exits.

Three layers of coverage:

* **Decision machine** (property-based): :class:`BisectionMachine` consumes
  exactly the rate/verdict sequence of the serial :func:`bisect_max_qps`
  for every randomized capacity/bracket/iteration combination, and
  :func:`speculative_rates` always leads with the needed rate.
* **Completion-driven driver** (randomized, threaded): the real
  :func:`_drive_completion` loop fed by a fake pool whose futures resolve
  in random order from a background thread still reproduces the serial
  search's decisions, for any in-flight budget and number of concurrent
  searches.
* **Warm-start tiers and early rejection** (real simulators): near-miss
  bracket hints converge within the cold search's bracket tolerance on
  strictly fewer evaluations across an adjacent-SLA sweep; the in-process
  memo replays without evaluations; single-server fleets share cache
  entries across balancing policies; the certain-rejection exit is
  verdict-identical to the full run.
"""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.engine import build_engine_pair
from repro.queries.generator import LoadGenerator
from repro.runtime.capacity import (
    CapacitySearch,
    _drive_completion,
    _SearchExecution,
    run_capacity_searches,
)
from repro.runtime.pool import Future, WorkerPool
from repro.serving.capacity import (
    BisectionMachine,
    CapacityCache,
    bisect_max_qps,
    speculative_rates,
)
from repro.serving.cluster import (
    ClusterSimulator,
    find_cluster_max_qps,
    homogeneous_fleet,
)
from repro.serving.simulator import (
    CertainAcceptance,
    CertainRejection,
    ServingConfig,
    certain_acceptance_threshold,
    certain_rejection_threshold,
)

SEARCH_KWARGS = dict(num_queries=100, iterations=3, max_queries=1000)


class FakeOutcome:
    """Deterministic stand-in for a simulation result: acceptable iff the
    offered rate is at or under the scenario's capacity."""

    __slots__ = ("rate", "capacity")

    def __init__(self, rate, capacity):
        self.rate = rate
        self.capacity = capacity

    def acceptable(self, sla_latency_s):
        return self.rate <= self.capacity


def drive_machine_serially(machine, capacity):
    """Run a machine to completion; returns (max_qps, result_rate, rates)."""
    rates = []
    while not machine.done:
        rate = machine.next_rate()
        rates.append(rate)
        machine.advance(FakeOutcome(rate, capacity).acceptable(1.0))
    return machine.max_qps, machine.result_rate, rates


class TestBisectionMachineProperty:
    @settings(max_examples=300, deadline=None)
    @given(
        capacity=st.floats(min_value=1e-3, max_value=6000),
        upper=st.floats(min_value=1e-2, max_value=9000),
        iterations=st.integers(min_value=1, max_value=9),
    )
    def test_machine_decision_identical_to_serial_bisection(
        self, capacity, upper, iterations
    ):
        serial = bisect_max_qps(
            lambda rate: FakeOutcome(rate, capacity), upper, 1.0, iterations
        )
        machine = BisectionMachine(upper, iterations)
        max_qps, result_rate, rates = drive_machine_serially(machine, capacity)
        assert (max_qps or 0.0) == serial.max_qps
        assert len(rates) == serial.evaluations
        if serial.result is None:
            assert result_rate is None
        else:
            assert result_rate == serial.max_qps or result_rate == rates[-1]

    @settings(max_examples=150, deadline=None)
    @given(
        capacity=st.floats(min_value=1e-3, max_value=6000),
        upper=st.floats(min_value=1e-2, max_value=9000),
        iterations=st.integers(min_value=1, max_value=7),
        limit=st.integers(min_value=1, max_value=12),
    )
    def test_speculative_rates_lead_with_needed_rate(
        self, capacity, upper, iterations, limit
    ):
        machine = BisectionMachine(upper, iterations)
        while not machine.done:
            speculated = speculative_rates(machine, limit)
            assert speculated[0] == machine.next_rate()
            assert len(speculated) == len(set(speculated))  # deduplicated
            assert len(speculated) <= limit
            rate = machine.next_rate()
            machine.advance(FakeOutcome(rate, capacity).acceptable(1.0))
        assert speculative_rates(machine, limit) == []


class FakeCompletionPool:
    """Pool stub for the completion driver: futures resolve out of order.

    ``submit`` registers an unresolved future; a background thread resolves
    a *random* pending future every tick with the fake capacity verdict, so
    the driver sees arbitrary completion interleavings while the decisions
    must stay those of the serial search.
    """

    def __init__(self, capacity_by_context, seed):
        self._capacity_by_context = capacity_by_context
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._pending = []
        self._stop = False
        self._thread = threading.Thread(target=self._resolver, daemon=True)
        self._thread.start()

    def submit(self, fn, rate, context=None):
        future = Future(rate)
        with self._lock:
            self._pending.append((future, self._capacity_by_context[id(context)]))
        return future

    def _resolver(self):
        while not self._stop:
            with self._lock:
                if self._pending:
                    index = self._rng.randrange(len(self._pending))
                    future, capacity = self._pending.pop(index)
                    future._resolve(FakeOutcome(future.item, capacity))
                    continue
            threading.Event().wait(0.0005)

    def close(self):
        self._stop = True
        self._thread.join()


def build_fake_execution(upper, iterations, sla, capacity, pool_contexts):
    """A bare _SearchExecution around a machine (no cache, no real search)."""
    execution = _SearchExecution.__new__(_SearchExecution)
    execution.search = None
    execution.sla = sla
    execution.cache = None
    execution.bracket_hints = False
    execution.signature = None
    execution.context = object()
    execution.machine = BisectionMachine(upper, iterations)
    execution.replay_rate = None
    execution.results = {}
    execution.pending = {}
    execution.evaluations = 0
    execution.cancelled = 0
    execution.result = None
    pool_contexts[id(execution.context)] = capacity
    return execution


class TestCompletionDriverRandomOrder:
    def test_driver_matches_serial_for_random_orders_and_budgets(self):
        rng = random.Random(20260730)
        for trial in range(30):
            num_searches = rng.randint(1, 4)
            budget = rng.randint(2, 6)
            scenarios = [
                (
                    rng.uniform(1e-3, 6000),  # capacity
                    rng.uniform(1e-2, 9000),  # upper
                    rng.randint(1, 7),  # iterations
                )
                for _ in range(num_searches)
            ]
            contexts = {}
            executions = [
                build_fake_execution(upper, iterations, 1.0, capacity, contexts)
                for capacity, upper, iterations in scenarios
            ]
            pool = FakeCompletionPool(contexts, seed=trial)
            try:
                _drive_completion(executions, pool, budget)
            finally:
                pool.close()
            for execution, (capacity, upper, iterations) in zip(
                executions, scenarios
            ):
                serial = bisect_max_qps(
                    lambda rate: FakeOutcome(rate, capacity), upper, 1.0, iterations
                )
                assert execution.result is not None
                assert execution.result.max_qps == serial.max_qps, (
                    trial,
                    capacity,
                    upper,
                    iterations,
                )
                # Speculation may evaluate extra rates, never fewer than the
                # serial decision path consumed.
                assert execution.evaluations >= serial.evaluations


@pytest.fixture(scope="module")
def engines():
    return build_engine_pair("dlrm-rmc1", "skylake", None)


@pytest.fixture(scope="module")
def config():
    return ServingConfig(batch_size=256, num_cores=8)


class TestRealPoolCrossSearch:
    def test_concurrent_searches_bit_identical_to_serial(
        self, engines, config, monkeypatch
    ):
        import repro.runtime.capacity as runtime_capacity

        monkeypatch.setattr(runtime_capacity, "_host_cores", lambda: 3)
        generator = LoadGenerator(seed=7)
        searches = [
            CapacitySearch.for_fleet(
                homogeneous_fleet(engines, config, size), policy, 0.1, generator,
                **SEARCH_KWARGS,
            )
            for size in (1, 2)
            for policy in ("least-outstanding", "power-of-two")
        ]
        serial = [search.run() for search in searches]
        with WorkerPool(3) as pool:
            concurrent = run_capacity_searches(searches, jobs=3, pool=pool)
        for one, many in zip(serial, concurrent):
            assert many.max_qps == one.max_qps
            assert many.result.p95_latency_s == one.result.p95_latency_s
            assert many.result.latencies_s == one.result.latencies_s


class TestBracketHints:
    def test_adjacent_sla_sweep_fewer_evaluations_same_capacity(
        self, engines, config, tmp_path
    ):
        generator = LoadGenerator(seed=7)
        fleet = homogeneous_fleet(engines, config, 2)
        # SLAs tight enough that the capacity boundary sits *inside* the
        # analytic bracket — where a hint can tighten something.  (When the
        # boundary is at or above the analytic bound, hints clamp to the
        # cold search by design.)
        slas = (0.05, 0.06, 0.07)

        def search(sla):
            return CapacitySearch.for_fleet(
                fleet, "least-outstanding", sla, generator,
                num_queries=150, iterations=4, max_queries=1500,
            )

        cold = {sla: search(sla).run() for sla in slas}
        cache = CapacityCache(tmp_path)
        hinted = {
            sla: search(sla).run(warm_start_cache=cache, bracket_hints=True)
            for sla in slas
        }
        assert cache.stats["hint_hits"] >= 1
        total_cold = sum(result.evaluations for result in cold.values())
        total_hinted = sum(result.evaluations for result in hinted.values())
        assert total_hinted < total_cold
        for sla in slas:
            tolerance = 2.0 * search(sla).convergence_width_qps()
            assert abs(hinted[sla].max_qps - cold[sla].max_qps) <= tolerance
            assert hinted[sla].evaluations <= cold[sla].evaluations

    def test_unusable_hint_falls_back_to_cold_machine(self):
        cold = BisectionMachine(1000.0, 4)
        fallback = BisectionMachine.hinted(999.0, 1000.0, 4)  # margin overflows
        assert fallback.phase == cold.phase == "raise"
        assert BisectionMachine.hinted(0.0, 1000.0, 4).phase == "raise"
        hinted = BisectionMachine.hinted(100.0, 1000.0, 4)
        assert hinted.phase == "hint-upper"

    @settings(max_examples=200, deadline=None)
    @given(
        capacity=st.floats(min_value=1e-3, max_value=6000),
        hint=st.floats(min_value=1e-3, max_value=9000),
        upper=st.floats(min_value=1e-2, max_value=9000),
        iterations=st.integers(min_value=1, max_value=7),
    )
    def test_hinted_machine_converges_near_serial(
        self, capacity, hint, upper, iterations
    ):
        # Whatever the hint quality, the hinted machine terminates and lands
        # within the wider of the two searches' final bracket widths of the
        # serial result (or both report infeasible/unbracketed consistently).
        serial = bisect_max_qps(
            lambda rate: FakeOutcome(rate, capacity), upper, 1.0, iterations
        )
        stop_width = upper * (1.0 - 1.0 / 64.0) / (2.0 ** iterations)
        machine = BisectionMachine.hinted(
            hint, upper, iterations, stop_width=stop_width
        )
        max_qps, result_rate, rates = drive_machine_serially(machine, capacity)
        assert machine.done
        assert len(rates) <= 3 + 2 + 2 + iterations  # raises + probes + bisect
        if serial.result is None or result_rate is None:
            return  # infeasible paths may disagree only through bracket shape
        if serial.max_qps >= capacity or (max_qps or 0.0) >= capacity:
            return  # an unbracketed exit reports the probed upper, not capacity
        # Both converged brackets contain the boundary; widths bound the gap.
        assert abs((max_qps or 0.0) - serial.max_qps) <= max(
            stop_width, upper * 1.6 ** 3
        )


class TestWarmTiers:
    def test_memo_replays_without_evaluations(self, engines, config, tmp_path):
        generator = LoadGenerator(seed=7)
        fleet = homogeneous_fleet(engines, config, 2)
        cache = CapacityCache(tmp_path)
        first = find_cluster_max_qps(
            fleet, "least-outstanding", 0.1, generator,
            warm_start_cache=cache, **SEARCH_KWARGS,
        )
        again = find_cluster_max_qps(
            fleet, "least-outstanding", 0.1, generator,
            warm_start_cache=cache, **SEARCH_KWARGS,
        )
        assert cache.stats["memo_hits"] == 1
        assert again.evaluations == 0
        assert again.max_qps == first.max_qps
        assert again.result.latencies_s == first.result.latencies_s

    def test_single_server_fleet_shares_entries_across_policies(
        self, engines, config, tmp_path
    ):
        generator = LoadGenerator(seed=7)
        fleet = homogeneous_fleet(engines, config, 1)
        cache = CapacityCache(tmp_path)
        first = find_cluster_max_qps(
            fleet, "least-outstanding", 0.1, generator,
            warm_start_cache=cache, **SEARCH_KWARGS,
        )
        other_policy = find_cluster_max_qps(
            fleet, "power-of-two", 0.1, generator,
            warm_start_cache=cache, **SEARCH_KWARGS,
        )
        # The second policy replays the shared entry (one verifying
        # evaluation) and still reports its own policy label.
        assert cache.stats["exact_hits"] == 1
        assert other_policy.evaluations == 1
        assert other_policy.max_qps == first.max_qps
        assert other_policy.result.policy == "power-of-two"
        assert other_policy.result.latencies_s == first.result.latencies_s

    def test_multi_server_fleets_do_not_share_across_policies(
        self, engines, config
    ):
        generator = LoadGenerator(seed=7)

        def signature(size, policy):
            return CapacitySearch.for_fleet(
                homogeneous_fleet(engines, config, size), policy, 0.1, generator,
                **SEARCH_KWARGS,
            ).signature()

        assert signature(1, "least-outstanding") == signature(1, "power-of-two")
        assert signature(2, "least-outstanding") != signature(2, "power-of-two")


class TestHintedIsolation:
    def test_hinted_answers_never_replay_for_hints_off_runs(
        self, engines, config, tmp_path
    ):
        # A hinted search's answer is stored under a *tagged* signature: a
        # later hints-off run sharing the cache must compute the cold
        # answer, not replay the hinted one — while a hints-on rerun may
        # replay it (that is what the caller opted into).
        generator = LoadGenerator(seed=7)
        fleet = homogeneous_fleet(engines, config, 2)
        kwargs = dict(num_queries=150, iterations=4, max_queries=1500)

        def search(sla):
            return CapacitySearch.for_fleet(
                fleet, "least-outstanding", sla, generator, **kwargs
            )

        cold = search(0.06).run()
        cache = CapacityCache(tmp_path)
        search(0.05).run(warm_start_cache=cache)  # donor entry
        hinted = search(0.06).run(warm_start_cache=cache, bracket_hints=True)
        assert cache.stats["hint_hits"] == 1

        hints_off = search(0.06).run(warm_start_cache=cache)
        assert hints_off.max_qps == cold.max_qps
        assert hints_off.result.latencies_s == cold.result.latencies_s

        hints_on_again = search(0.06).run(
            warm_start_cache=cache, bracket_hints=True
        )
        assert hints_on_again.max_qps == hinted.max_qps


class TestBatchDedupe:
    def test_identical_single_server_searches_share_one_bisection(
        self, engines, config
    ):
        # Schema v3 normalises the policy out of single-server signatures;
        # a batch submitting the same fleet-of-one under several policies
        # runs the bisection once and replays followers with one verifying
        # evaluation each — correctly relabelled, identical numbers.
        generator = LoadGenerator(seed=7)
        fleet = homogeneous_fleet(engines, config, 1)
        searches = [
            CapacitySearch.for_fleet(fleet, policy, 0.1, generator, **SEARCH_KWARGS)
            for policy in ("least-outstanding", "power-of-two", "round-robin")
        ]
        leader, first_follower, second_follower = run_capacity_searches(searches)
        assert first_follower.max_qps == leader.max_qps
        assert second_follower.max_qps == leader.max_qps
        assert first_follower.evaluations == 1
        assert second_follower.evaluations == 1
        assert first_follower.result.policy == "power-of-two"
        assert second_follower.result.policy == "round-robin"
        assert first_follower.result.latencies_s == leader.result.latencies_s


class TestUnbracketedExitResult:
    def test_rejected_unbracketed_measurement_reports_full_result(
        self, engines, config
    ):
        # The unbracketed exit reports the final raised rate even when its
        # measurement is rejected; with the early-rejection exit armed that
        # measurement lands as a CertainRejection stub, and the search must
        # re-measure it fully so CapacityResult.result keeps the complete
        # statistics the serial contract promises (regression: ablation
        # drivers read result.p95_latency_s).
        search = CapacitySearch.for_server(
            engines, config, 0.1, LoadGenerator(seed=7), **SEARCH_KWARGS
        )
        execution = _SearchExecution(search, None, False)
        rate = 2000.0
        execution.machine.phase = "unbracketed"
        execution.machine.upper = rate
        execution.results[rate] = CertainRejection(
            sla_latency_s=0.1, measured_queries=10, over_sla_queries=10
        )
        execution.absorb()
        assert execution.result is not None
        assert execution.result.max_qps == rate
        assert not isinstance(execution.result.result, CertainRejection)
        assert execution.result.result.p95_latency_s > 0.0


class TestCertainRejection:
    def test_threshold_is_sound(self):
        # With K = certain_rejection_threshold(n) over-SLA samples among n,
        # the p95 exceeds the SLA for every arrangement of the rest.
        import numpy as np

        rng = random.Random(5)
        for n in (1, 2, 3, 19, 20, 21, 40, 137):
            threshold = certain_rejection_threshold(n)
            for _ in range(20):
                under = [rng.uniform(0.0, 1.0) for _ in range(n - threshold)]
                over = [1.0 + rng.uniform(1e-6, 5.0) for _ in range(threshold)]
                samples = under + over
                rng.shuffle(samples)
                assert float(np.percentile(samples, 95)) > 1.0, (n, threshold)

    def test_verdicts_identical_to_full_run(self, engines, config):
        sla = 0.1
        fleet = homogeneous_fleet(engines, config, 1)
        generator = LoadGenerator(seed=5)
        for rate in (1500.0, 2400.0, 2500.0, 3000.0, 6000.0):
            queries = generator.with_rate(rate).generate(600)
            simulator = ClusterSimulator(fleet, balancer="least-outstanding")
            full = simulator.run(queries)
            fast = simulator.run(queries, reject_above_sla_s=sla)
            assert fast.acceptable(sla) == full.acceptable(sla)
            if isinstance(fast, CertainRejection):
                assert not full.meets_sla(sla)
                assert fast.over_sla_queries >= certain_rejection_threshold(
                    len(queries) - int(len(queries) * 0.1)
                )
            else:
                assert fast.p95_latency_s == full.p95_latency_s
                assert fast.latencies_s == full.latencies_s


class TestCertainAcceptance:
    def test_threshold_is_sound(self):
        # With K = certain_acceptance_threshold(n) over-SLA samples among
        # n, the p95 stays within the SLA for every arrangement of the
        # rest — the certificate can never accept a run the full p95 would
        # reject.
        import numpy as np

        rng = random.Random(6)
        for n in (1, 2, 3, 19, 20, 21, 40, 137):
            threshold = certain_acceptance_threshold(n)
            assert threshold >= 0
            for _ in range(20):
                under = [rng.uniform(0.0, 1.0) for _ in range(n - threshold)]
                over = [1.0 + rng.uniform(1e-6, 5.0) for _ in range(threshold)]
                samples = under + over
                rng.shuffle(samples)
                assert float(np.percentile(samples, 95)) <= 1.0, (n, threshold)

    def test_threshold_is_tight(self):
        # One more over-SLA sample than the threshold CAN push the p95
        # over: the certificate is maximal, not merely safe.
        import numpy as np

        for n in (2, 3, 19, 20, 21, 40, 137):
            threshold = certain_acceptance_threshold(n)
            over_count = threshold + 1
            samples = [1.0] * (n - over_count) + [2.0] * over_count
            assert float(np.percentile(samples, 95)) > 1.0, (n, threshold)

    def test_dual_of_rejection_threshold(self):
        # Between "provably accepted" and "provably rejected" there is a
        # gap, never an overlap: for every n the max over-SLA count that
        # certifies acceptance sits strictly below the min that certifies
        # rejection.
        assert certain_acceptance_threshold(0) == -1
        assert certain_acceptance_threshold(-3) == -1
        for n in range(1, 500):
            assert certain_acceptance_threshold(n) < certain_rejection_threshold(n)

    def test_verdicts_identical_to_full_run(self, engines, config):
        sla = 0.1
        fleet = homogeneous_fleet(engines, config, 1)
        generator = LoadGenerator(seed=5)
        saw_acceptance = saw_other = False
        for rate in (200.0, 600.0, 1500.0, 4000.0):
            queries = generator.with_rate(rate).generate(600)
            simulator = ClusterSimulator(fleet, balancer="least-outstanding")
            full = simulator.run(queries)
            fast = simulator.run(
                queries, reject_above_sla_s=sla, accept_within_sla_s=sla
            )
            assert fast.acceptable(sla) == full.acceptable(sla)
            if isinstance(fast, CertainAcceptance):
                saw_acceptance = True
                assert full.meets_sla(sla)
                # The exit drains the event loop without recording, so the
                # stability inputs are the full run's, bit for bit.
                assert fast.drain_s == full.drain_s
                assert fast.arrival_span_s == full.arrival_span_s
                assert fast.is_stable(sla) == full.is_stable(sla)
                assert fast.over_sla_queries <= certain_acceptance_threshold(
                    len(queries) - int(len(queries) * 0.1)
                )
            else:
                saw_other = True
        # The rate sweep must actually exercise both sides of the exit.
        assert saw_acceptance and saw_other

    def test_accept_only_armed_run_is_exact(self, engines, config):
        # With only the acceptance exit armed, an over-SLA run cannot fire
        # any certificate and must complete bit-identically to the plain
        # run.
        sla = 0.1
        fleet = homogeneous_fleet(engines, config, 1)
        queries = LoadGenerator(seed=5).with_rate(4000.0).generate(600)
        simulator = ClusterSimulator(fleet, balancer="least-outstanding")
        full = simulator.run(queries)
        fast = simulator.run(queries, accept_within_sla_s=sla)
        assert not isinstance(fast, (CertainAcceptance, CertainRejection))
        assert fast.latencies_s == full.latencies_s

    def test_accept_early_search_reports_identical_results(self, engines, config):
        # accept_early shortens accepted probe evaluations; the reported
        # capacity and its backing full result must not move by a bit
        # (which is also why the cache signature omits the flag).
        generator = LoadGenerator(seed=7)
        base = CapacitySearch.for_server(
            engines, config, 0.1, generator, **SEARCH_KWARGS
        ).run()
        early = CapacitySearch.for_server(
            engines, config, 0.1, generator, accept_early=True, **SEARCH_KWARGS
        ).run()
        assert early.max_qps == base.max_qps
        assert early.result is not None and base.result is not None
        assert not isinstance(early.result, (CertainAcceptance, CertainRejection))
        assert early.result.p95_latency_s == base.result.p95_latency_s
        assert early.result.latencies_s == base.result.latencies_s
