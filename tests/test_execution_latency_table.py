"""Exactness tests for the dense latency tables (the execution fast path).

The serving simulators trust ``CPULatencyTable`` / ``GPULatencyTable`` to
return *bit-identical* values to the scalar engine calls, so these tests
assert equality with ``==`` — no tolerance — across the model zoo, both CPU
platforms, and randomised batch sizes / core counts (hypothesis), plus the
scalar fallback path for operator types without a vectorized cost.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.cpu_engine import CPUEngine
from repro.execution.engine import build_cpu_engine, build_gpu_engine
from repro.execution.latency_table import ScaledLatencyTable, operator_cost_columns
from repro.execution.scaled_engine import ScaledCPUEngine
from repro.hardware.cpu import get_cpu
from repro.models.ops import FullyConnected, Operator, OperatorCategory, OperatorCost
from repro.models.zoo import available_models

SETTINGS = settings(max_examples=40, deadline=None)

MODELS = available_models()
_CPU_ENGINES = {}
_GPU_ENGINES = {}


def cpu_engine(model: str, platform: str) -> CPUEngine:
    key = (model, platform)
    if key not in _CPU_ENGINES:
        _CPU_ENGINES[key] = build_cpu_engine(model, platform)
    return _CPU_ENGINES[key]


def gpu_engine(model: str):
    if model not in _GPU_ENGINES:
        _GPU_ENGINES[model] = build_gpu_engine(model)
    return _GPU_ENGINES[model]


class TestCPUTableExactness:
    @SETTINGS
    @given(
        model=st.sampled_from(MODELS),
        platform=st.sampled_from(["skylake", "broadwell"]),
        batch=st.integers(1, 1024),
        cores=st.integers(1, 40),
    )
    def test_lookup_equals_engine_call(self, model, platform, batch, cores):
        engine = cpu_engine(model, platform)
        table = engine.latency_table
        assert table.total_s(batch, cores) == engine.request_latency_s(batch, cores)

    def test_full_grid_exact_for_one_model(self):
        engine = cpu_engine("dlrm-rmc2", "skylake")
        table = engine.latency_table
        for cores in (1, 4, 18):
            for batch in range(1, 130):
                assert table.total_s(batch, cores) == engine.request_latency_s(
                    batch, cores
                )

    def test_columns_are_cached_and_shared(self):
        engine = cpu_engine("ncf", "skylake")
        table = engine.latency_table
        first = table.column(64, 2)
        second = table.column(32, 2)
        assert second is first  # same column object serves smaller ranges
        assert len(first) > 64
        assert math.isnan(first[0])  # index 0 is unused

    def test_entries_built_counter_grows(self):
        engine = build_cpu_engine("wnd", "skylake")
        table = engine.latency_table
        assert table.entries_built == 0
        table.total_s(8, 1)
        assert table.entries_built > 0


class TestGPUTableExactness:
    @SETTINGS
    @given(model=st.sampled_from(MODELS), size=st.integers(1, 2048))
    def test_lookup_equals_engine_call(self, model, size):
        engine = gpu_engine(model)
        table = engine.latency_table
        assert table.total_s(size) == engine.query_latency_s(size)

    def test_totals_grow_on_demand(self):
        engine = build_gpu_engine("din")
        table = engine.latency_table
        assert table.entries_built == 0
        small = table.total_s(10)
        assert table.entries_built > 0
        large = table.total_s(5000)
        assert small == engine.query_latency_s(10)
        assert large == engine.query_latency_s(5000)


class TestScaledTableExactness:
    """The scaled view is exactly ``speed_factor x`` the base table."""

    @SETTINGS
    @given(
        model=st.sampled_from(MODELS),
        platform=st.sampled_from(["skylake", "broadwell"]),
        batch=st.integers(1, 1024),
        cores=st.integers(1, 40),
        factor=st.floats(0.5, 2.0, allow_nan=False),
    )
    def test_entries_are_exactly_factor_times_base(
        self, model, platform, batch, cores, factor
    ):
        engine = cpu_engine(model, platform)
        scaled = ScaledCPUEngine(engine, speed_factor=factor)
        table = scaled.latency_table
        assert table.total_s(batch, cores) == factor * engine.latency_table.total_s(
            batch, cores
        )

    def test_scalar_call_matches_table_bit_for_bit(self):
        engine = cpu_engine("dlrm-rmc1", "skylake")
        scaled = ScaledCPUEngine(engine, speed_factor=1.0375)
        table = scaled.latency_table
        for cores in (1, 4, 16):
            for batch in range(1, 130):
                assert table.total_s(batch, cores) == scaled.request_latency_s(
                    batch, cores
                )

    def test_view_shares_base_build_and_fallback_counters(self):
        base = build_cpu_engine("dlrm-rmc1", "skylake")
        first = ScaledCPUEngine(base, speed_factor=1.05)
        second = ScaledCPUEngine(base, speed_factor=0.95)
        first.latency_table.total_s(64, 2)
        built = base.latency_table.entries_built
        assert built > 0
        # The second view reuses the base column: no extra base entries built.
        second.latency_table.total_s(64, 2)
        assert base.latency_table.entries_built == built
        assert first.latency_table.scalar_fallbacks == 0
        assert second.latency_table.scalar_fallbacks == 0

    def test_scaled_column_follows_base_growth(self):
        engine = build_cpu_engine("ncf", "broadwell")
        scaled = ScaledCPUEngine(engine, speed_factor=1.2)
        table = scaled.latency_table
        small = table.column(32, 2)
        assert table.column(16, 2) is small  # cached view serves smaller ranges
        grown = table.column(4 * len(small), 2)
        assert grown is not small
        assert grown[100] == 1.2 * engine.latency_table.column(4 * len(small), 2)[100]

    def test_invalid_factor_rejected(self):
        engine = cpu_engine("ncf", "skylake")
        with pytest.raises(ValueError):
            ScaledLatencyTable(engine.latency_table, 0.0)
        with pytest.raises(ValueError):
            ScaledCPUEngine(engine, speed_factor=-1.0)


class _OddOperator(Operator):
    """An operator type the vectorized cost builder does not know."""

    def __init__(self) -> None:
        super().__init__("odd", OperatorCategory.OTHER)

    def cost(self, batch_size: int) -> OperatorCost:
        return OperatorCost(
            flops=batch_size**1.5 * 1e6, regular_bytes=batch_size * 4096.0
        )


class _StubModel:
    """Minimal duck-typed model: just an operator list."""

    def __init__(self, operators):
        self._operators = list(operators)

    def operators(self):
        return list(self._operators)


class TestScalarFallback:
    def test_unknown_operator_has_no_vector_form(self):
        import numpy as np

        assert operator_cost_columns(_OddOperator(), np.arange(1.0, 4.0)) is None

    def test_fallback_column_is_still_exact(self):
        model = _StubModel([FullyConnected("fc", 64, 32), _OddOperator()])
        engine = CPUEngine(model, get_cpu("skylake"))
        table = engine.latency_table
        for cores in (1, 3):
            for batch in (1, 2, 7, 33, 100):
                assert table.total_s(batch, cores) == engine.request_latency_s(
                    batch, cores
                )
        assert table.scalar_fallbacks > 0


class TestCacheStats:
    def test_cpu_engine_counts_hits_and_misses(self):
        engine = build_cpu_engine("dlrm-rmc1", "skylake")
        assert engine.cache_stats() == {
            "hits": 0, "misses": 0, "size": 0, "table_entries": 0,
        }
        engine.request_latency_s(16, 2)
        engine.request_latency_s(16, 2)
        engine.request_latency_s(32, 2)
        stats = engine.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["size"] == 2

    def test_gpu_engine_counts_hits_and_misses(self):
        engine = build_gpu_engine("dlrm-rmc1")
        engine.query_latency_s(100)
        engine.query_latency_s(100)
        stats = engine.cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_table_entries_reported(self):
        engine = build_cpu_engine("dlrm-rmc1", "skylake")
        engine.latency_table.total_s(4, 1)
        assert engine.cache_stats()["table_entries"] > 0


@pytest.mark.parametrize("model", MODELS)
def test_every_zoo_model_vectorizes_without_fallback(model):
    """All shipped operator types have a vectorized cost (no silent slow path)."""
    engine = cpu_engine(model, "skylake")
    table = engine.latency_table
    table.total_s(32, 2)
    assert table.scalar_fallbacks == 0
