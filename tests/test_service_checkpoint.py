"""Tests for crash-safe window checkpointing and load shedding.

The resilience contract: a service with a ``--checkpoint-dir`` journals
every observed window; after a crash it restores the journalled history
(without re-simulating it), fast-forwards the window manager past the
journalled stream position, and from then on reports **bit-identical**
cumulative measurements to a run that never crashed.  Load shedding
(``shed_above``) bounds the per-batch re-simulation backlog while
conserving the cumulative event multiset — so it, too, never perturbs
later measurements.
"""

import pytest

from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.service.checkpoint import WindowJournal
from repro.service.ingest import IngestPipeline
from repro.service.shadow import FleetSpec
from repro.service.twin import DigitalTwin
from repro.service.windows import Window, WindowManager


def make_twin(**overrides):
    params = dict(
        real=FleetSpec(
            name="real",
            model="ncf",
            platform="broadwell",
            num_servers=2,
            batch_size=128,
            num_cores=4,
        ),
        sla_latency_s=0.1,
        load_generator=LoadGenerator(seed=5),
        search_num_queries=80,
        search_iterations=3,
        search_max_queries=240,
    )
    params.update(overrides)
    return DigitalTwin(**params)


def stream(num_queries=300, rate_qps=60.0, seed=3):
    return LoadGenerator(seed=seed).with_rate(rate_qps).generate(num_queries)


class TestWindowJournal:
    def test_append_load_round_trip(self, tmp_path):
        journal = WindowJournal(tmp_path)
        windows = [
            Window(0, 0.0, 2.0, (Query(0, 0.5, 16), Query(1, 1.5, 64))),
            Window(2, 4.0, 6.0, (Query(2, 4.25, 32),)),
        ]
        for window in windows:
            journal.append(window)
        assert WindowJournal(tmp_path).load() == windows

    def test_empty_journal_loads_nothing(self, tmp_path):
        journal = WindowJournal(tmp_path)
        assert journal.load() == []
        assert journal.corrupt_records == 0

    def test_torn_tail_is_tolerated_not_fatal(self, tmp_path):
        journal = WindowJournal(tmp_path)
        intact = Window(0, 0.0, 2.0, (Query(0, 0.5, 16),))
        journal.append(intact)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 1, "start_s": 2.0, "que')  # crash mid-write
        loaded = journal.load()
        assert loaded == [intact]
        assert journal.corrupt_records == 1

    def test_corrupt_middle_record_seals_the_journal_there(self, tmp_path):
        journal = WindowJournal(tmp_path)
        journal.append(Window(0, 0.0, 2.0, (Query(0, 0.5, 16),)))
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        journal.append(Window(1, 2.0, 4.0, (Query(1, 2.5, 16),)))
        loaded = journal.load()
        # Nothing past the corruption is trusted: at-least-once re-ingest
        # beats silently adopting a hole in the history.
        assert [w.index for w in loaded] == [0]
        assert journal.corrupt_records == 2


class TestFastForward:
    def test_sealed_windows_read_as_late(self):
        manager = WindowManager(window_s=2.0)
        manager.fast_forward(2, 5.9)
        assert manager.add(Query(0, 1.0, 16)) == []  # window 0: sealed
        assert manager.late_events == 1
        manager.add(Query(1, 6.5, 16))  # window 3: accepted
        assert manager.accepted_events == 1

    def test_fast_forward_with_open_windows_refused(self):
        manager = WindowManager(window_s=2.0)
        manager.add(Query(0, 0.5, 16))
        with pytest.raises(ValueError, match="open windows"):
            manager.fast_forward(3)


class TestCheckpointResume:
    def test_resume_is_bit_identical_to_uninterrupted_run(self, tmp_path):
        queries = stream()
        crash_at = 200

        # Reference: the same stream through a never-crashed pipeline.
        with make_twin() as reference_twin:
            reference = IngestPipeline(WindowManager(2.0), reference_twin)
            for query in queries:
                reference.feed(query)
            reference.finish()
            expected = reference_twin.last_cumulative_result()

        # Crash: journal everything observed, then abandon the pipeline
        # mid-stream without flushing.
        first_twin = make_twin()
        crashed = IngestPipeline(
            WindowManager(2.0), first_twin, journal=WindowJournal(tmp_path)
        )
        for query in queries[:crash_at]:
            crashed.feed(query)
        observed_before_crash = first_twin.windows_observed
        assert observed_before_crash > 0
        first_twin.close()

        # Resume: restore the journal, fast-forward, re-feed the *whole*
        # stream (a replaying producer) — journalled events read as late.
        journal = WindowJournal(tmp_path)
        restored = journal.load()
        assert len(restored) == observed_before_crash
        with make_twin() as resumed_twin:
            resumed_twin.restore(restored)
            manager = WindowManager(2.0)
            manager.fast_forward(
                max(window.index for window in restored),
                max(q.arrival_time for w in restored for q in w.queries),
            )
            resumed = IngestPipeline(
                manager, resumed_twin, journal=journal
            )
            for query in queries:
                resumed.feed(query)
            resumed.finish()

            assert resumed_twin.cumulative_queries == len(queries)
            actual = resumed_twin.last_cumulative_result()
        assert actual.latencies_s == expected.latencies_s
        assert actual.num_queries == expected.num_queries
        # No journalled window was re-observed (no reprocessing), and every
        # already-journalled event re-fed by the producer was dropped late.
        assert manager.late_events == sum(len(w.queries) for w in restored)

    def test_restored_twin_skips_simulation_work(self, tmp_path):
        journal = WindowJournal(tmp_path)
        with make_twin() as twin:
            pipeline = IngestPipeline(WindowManager(2.0), twin, journal=journal)
            for query in stream(num_queries=150):
                pipeline.feed(query)
            pipeline.finish()
            observed = twin.windows_observed

        with make_twin() as resumed:
            resumed.restore(WindowJournal(tmp_path).load())
            # History conserved without a single capacity search: the
            # twin's private cache directory stays empty.
            assert resumed.windows_observed == observed
            assert resumed.capacity_cache.stats["stores"] == 0


class TestLoadShedding:
    def burst_pipeline(self, twin, shed_above):
        # A large lateness keeps every window open until flush, so finish()
        # presents one many-window backlog batch — the shedding trigger.
        manager = WindowManager(window_s=2.0, allowed_lateness_s=1e9)
        return IngestPipeline(manager, twin, shed_above=shed_above)

    def test_backlog_burst_sheds_oldest_windows(self):
        queries = stream(num_queries=240, rate_qps=40.0)
        with make_twin() as twin:
            pipeline = self.burst_pipeline(twin, shed_above=2)
            for query in queries:
                pipeline.feed(query)
            reports = pipeline.finish()
            backlog = twin.windows_observed
            assert backlog > 2
            assert pipeline.shed_windows == backlog - 2
            assert len(reports) == 2
            # The newest windows got the full treatment...
            assert [r.window.index for r in reports] == sorted(
                r.window.index for r in reports
            )
            # ...and shedding conserved the cumulative event multiset.
            assert twin.cumulative_queries == len(queries)
            assert reports[-1].cumulative_queries == len(queries)

    def test_shed_run_measurements_match_unshed_run(self):
        queries = stream(num_queries=240, rate_qps=40.0)
        with make_twin() as shed_twin:
            shed = self.burst_pipeline(shed_twin, shed_above=1)
            for query in queries:
                shed.feed(query)
            shed.finish()
            shed_result = shed_twin.last_cumulative_result()
        with make_twin() as full_twin:
            full = self.burst_pipeline(full_twin, shed_above=0)
            for query in queries:
                full.feed(query)
            full.finish()
            full_result = full_twin.last_cumulative_result()
        assert shed_result.latencies_s == full_result.latencies_s

    def test_shedding_disabled_by_default(self):
        with make_twin() as twin:
            pipeline = self.burst_pipeline(twin, shed_above=0)
            for query in stream(num_queries=120):
                pipeline.feed(query)
            reports = pipeline.finish()
            assert pipeline.shed_windows == 0
            assert len(reports) == twin.windows_observed

    def test_negative_shed_budget_rejected(self):
        with make_twin() as twin:
            with pytest.raises(ValueError, match="shed_above"):
                IngestPipeline(WindowManager(2.0), twin, shed_above=-1)
