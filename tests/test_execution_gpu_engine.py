"""Tests for the GPU latency engine (Fig. 4 behaviours)."""

import pytest

from repro.execution.engine import build_cpu_engine, build_gpu_engine
from repro.models.zoo import MODEL_NAMES


class TestGPULatency:
    def test_latency_positive_and_split(self):
        engine = build_gpu_engine("dlrm-rmc1")
        latency = engine.query_latency(64)
        assert latency.data_loading_s > 0
        assert latency.compute_s > 0
        assert latency.total_s == pytest.approx(latency.data_loading_s + latency.compute_s)

    def test_latency_monotonic_in_query_size(self):
        engine = build_gpu_engine("wnd")
        latencies = [engine.query_latency_s(b) for b in (1, 16, 128, 1024)]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_results_cached(self):
        engine = build_gpu_engine("ncf")
        assert engine.query_latency(64) is engine.query_latency(64)

    def test_invalid_query_size(self):
        with pytest.raises(ValueError):
            build_gpu_engine("ncf").query_latency(0)

    def test_speedup_helper(self):
        engine = build_gpu_engine("dlrm-rmc1")
        assert engine.speedup_over_cpu(1.0, 64) == pytest.approx(
            1.0 / engine.query_latency_s(64)
        )


class TestFig4Behaviours:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_data_loading_dominates_gpu_time(self, name):
        # The paper reports 60-80% of GPU time spent on data loading across
        # batch sizes; allow a slightly wider band for the model.
        engine = build_gpu_engine(name)
        fractions = [
            engine.query_latency(batch).data_loading_fraction
            for batch in (16, 64, 256, 1024)
        ]
        mean_fraction = sum(fractions) / len(fractions)
        assert 0.4 <= mean_fraction <= 0.9

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_gpu_wins_at_large_batches(self, name):
        cpu = build_cpu_engine(name, "broadwell")
        gpu = build_gpu_engine(name)
        assert cpu.request_latency_s(1024) / gpu.query_latency_s(1024) > 1.0

    def test_ncf_loses_to_cpu_at_small_batches(self):
        # Small, cheap models do not amortise the transfer cost at small
        # batches (the crossover annotated in Fig. 4).
        cpu = build_cpu_engine("ncf", "broadwell")
        gpu = build_gpu_engine("ncf")
        assert cpu.request_latency_s(1) / gpu.query_latency_s(1) < 1.0

    def test_speedup_grows_with_batch(self):
        cpu = build_cpu_engine("dlrm-rmc1", "broadwell")
        gpu = build_gpu_engine("dlrm-rmc1")
        speedups = [
            cpu.request_latency_s(b) / gpu.query_latency_s(b) for b in (4, 64, 1024)
        ]
        assert speedups[0] < speedups[1] < speedups[2]

    def test_compute_heavy_models_gain_more_at_large_batch(self):
        # Fig. 4: WnD (compute intensive) benefits more from the GPU than NCF.
        wnd_cpu = build_cpu_engine("wnd", "broadwell")
        wnd_gpu = build_gpu_engine("wnd")
        ncf_cpu = build_cpu_engine("ncf", "broadwell")
        ncf_gpu = build_gpu_engine("ncf")
        wnd_speedup = wnd_cpu.request_latency_s(1024) / wnd_gpu.query_latency_s(1024)
        ncf_speedup = ncf_cpu.request_latency_s(1024) / ncf_gpu.query_latency_s(1024)
        assert wnd_speedup > ncf_speedup
