"""Tests for the hill-climbing optimiser and the static baseline."""

import pytest

from repro.core.hill_climber import hill_climb, power_of_two_candidates
from repro.core.static_scheduler import StaticSchedulerPolicy, static_batch_size
from repro.hardware.cpu import broadwell, skylake


class TestHillClimb:
    def test_finds_peak_of_unimodal_function(self):
        candidates = [1, 2, 4, 8, 16, 32, 64]
        result = hill_climb(candidates, lambda x: -(x - 16) ** 2, patience=2)
        assert result.best_candidate == 16

    def test_stops_after_patience_exceeded(self):
        calls = []

        def objective(x):
            calls.append(x)
            return 100.0 - x  # Strictly decreasing: best is the first candidate.

        result = hill_climb([1, 2, 3, 4, 5, 6], objective, patience=2)
        assert result.best_candidate == 1
        assert calls == [1, 2, 3]

    def test_patience_one_stops_at_first_degradation(self):
        values = {1: 5.0, 2: 10.0, 4: 8.0, 8: 20.0}
        result = hill_climb([1, 2, 4, 8], lambda x: values[x], patience=1)
        assert result.best_candidate == 2
        assert result.num_evaluations == 3

    def test_does_not_stop_while_infeasible(self):
        # Zero-valued (infeasible) prefix must not exhaust the patience budget.
        values = {1: 0.0, 2: 0.0, 4: 0.0, 8: 0.0, 16: 5.0, 32: 7.0, 64: 6.0}
        result = hill_climb(sorted(values), lambda x: values[x], patience=2)
        assert result.best_candidate == 32

    def test_monotonically_increasing_explores_everything(self):
        candidates = [1, 2, 3, 4, 5]
        result = hill_climb(candidates, lambda x: float(x), patience=1)
        assert result.best_candidate == 5
        assert result.num_evaluations == 5

    def test_relative_tolerance_ignores_noise(self):
        values = {1: 100.0, 2: 100.5, 4: 100.8, 8: 100.2}
        result = hill_climb(
            [1, 2, 4, 8], lambda x: values[x], patience=1, relative_tolerance=0.05
        )
        assert result.best_candidate == 1

    def test_evaluations_recorded_in_order(self):
        result = hill_climb([1, 2, 4], lambda x: float(x), patience=2)
        assert [candidate for candidate, _ in result.evaluations] == [1, 2, 4]
        assert result.as_dict()[4] == 4.0

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            hill_climb([], lambda x: x)

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            hill_climb([1], lambda x: x, patience=0)


class TestPowerOfTwoCandidates:
    def test_includes_bounds(self):
        assert power_of_two_candidates(1, 1000) == [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1000]

    def test_exact_power_bounds(self):
        assert power_of_two_candidates(4, 64) == [4, 8, 16, 32, 64]

    def test_non_power_minimum(self):
        candidates = power_of_two_candidates(3, 20)
        assert candidates[0] == 3
        assert candidates[-1] == 20

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            power_of_two_candidates(10, 5)


class TestStaticScheduler:
    def test_skylake_baseline_batch_is_25(self):
        assert static_batch_size(skylake()) == 25

    def test_broadwell_baseline_batch(self):
        assert static_batch_size(broadwell()) == 36

    def test_custom_max_query_size(self):
        policy = StaticSchedulerPolicy(max_query_size=400)
        assert policy.batch_size(skylake()) == 10

    def test_serving_config_has_no_offload(self):
        config = StaticSchedulerPolicy().serving_config(skylake())
        assert config.offload_threshold is None
        assert config.batch_size == 25

    def test_explicit_core_count(self):
        assert StaticSchedulerPolicy().batch_size(skylake(), num_cores=10) == 100

    def test_invalid_max_query_size(self):
        with pytest.raises(ValueError):
            StaticSchedulerPolicy(max_query_size=0)
