"""Tests for the futures layer of the worker pool (submit / as_completed).

The contract: ``submit`` returns a :class:`Future` that resolves inline on
serial pools (and inside workers) and asynchronously on parallel pools;
``as_completed`` yields futures in completion order; ``map`` is
submit-and-gather over the same machinery; workers cache a bounded number of
built task contexts.
"""

import time

import pytest

from repro.runtime.pool import (
    Future,
    TaskContext,
    WorkerPool,
    _WORKER_CONTEXT_SLOTS,
    _WORKER_CONTEXTS,
    _run_contextual_task,
    as_completed,
    pool_forks,
)


def _square(value):
    return value * value


def _boom(value):
    raise ValueError(f"boom {value}")


def _slow_identity(value):
    time.sleep(0.01 * value)
    return value


def _add_state_item(state, item):
    return state + item


class TestSubmitInline:
    def test_serial_pool_resolves_at_submit(self):
        pool = WorkerPool(1)
        before = pool_forks()
        future = pool.submit(_square, 6)
        assert future.done()
        assert future.result() == 36
        assert future.item == 6
        assert pool_forks() == before  # inline: nothing forked

    def test_inline_exception_delivered_at_result(self):
        future = WorkerPool(1).submit(_boom, 3)
        assert future.done()
        with pytest.raises(ValueError, match="boom 3"):
            future.result()

    def test_inline_context_built_once_across_submits(self):
        calls = []

        def builder(payload):
            calls.append(payload)
            return payload * 10

        context = TaskContext(builder, 2)
        pool = WorkerPool(1)
        first = pool.submit(_add_state_item, 1, context=context)
        second = pool.submit(_add_state_item, 2, context=context)
        assert (first.result(), second.result()) == (21, 22)
        assert calls == [2]

    def test_cancel_before_done_marks_only(self):
        future = Future(item="x")
        assert future.cancel() is True
        assert future.cancelled()
        assert not future.done()
        future._resolve(5)  # a process task cannot be revoked; it still lands
        assert future.result() == 5
        assert future.cancelled()

    def test_cancel_after_done_fails(self):
        future = WorkerPool(1).submit(_square, 2)
        assert future.cancel() is False
        assert not future.cancelled()


class TestSubmitParallel:
    def test_parallel_results_and_completion_order(self):
        # Slow item 3 must complete after fast item 0 even though it was
        # submitted first: as_completed yields in completion order.
        with WorkerPool(2) as pool:
            slow = pool.submit(_slow_identity, 3)
            fast = pool.submit(_slow_identity, 0)
            completed = [future.result() for future in as_completed([slow, fast])]
        assert sorted(completed) == [0, 3]
        assert completed[0] == 0

    def test_parallel_exception_delivered_at_result(self):
        with WorkerPool(2) as pool:
            good = pool.submit(_square, 4)
            bad = pool.submit(_boom, 7)
            assert good.result() == 16
            with pytest.raises(ValueError, match="boom 7"):
                bad.result()

    def test_as_completed_yields_already_done_first(self):
        done = Future()
        done._resolve("early")
        with WorkerPool(2) as pool:
            pending = pool.submit(_slow_identity, 1)
            order = list(as_completed([pending, done]))
        assert order[0] is done
        assert order[1] is pending

    def test_map_is_submit_and_gather(self):
        items = list(range(12))
        with WorkerPool(2) as pool:
            assert pool.map(_square, items) == [_square(i) for i in items]


#: Build log for the LRU test (builders must be picklable module-level
#: callables; the test drives the worker entry point in-process).
_BUILT = []


def _logging_builder(payload):
    _BUILT.append(payload)
    return payload


def _context_task(state, item):
    return (state, item)


class TestWorkerContextCache:
    def test_lru_keeps_bounded_contexts(self):
        # Drive the worker entry point directly: each new token builds once,
        # repeats hit the cache, and the LRU evicts beyond its slot bound.
        _WORKER_CONTEXTS.clear()
        _BUILT.clear()
        count = _WORKER_CONTEXT_SLOTS + 2
        contexts = [TaskContext(_logging_builder, index) for index in range(count)]
        for index, context in enumerate(contexts):
            assert _run_contextual_task(context.pack(_context_task, index)) == (
                index,
                index,
            )
        assert _BUILT == list(range(count))
        assert len(_WORKER_CONTEXTS) == _WORKER_CONTEXT_SLOTS

        # The most recent contexts are cached: re-running them builds nothing.
        _BUILT.clear()
        for index in range(count - 1, 2, -1):
            _run_contextual_task(contexts[index].pack(_context_task, index))
        assert _BUILT == []
        # The evicted earliest context rebuilds (and evicts the LRU entry).
        _run_contextual_task(contexts[0].pack(_context_task, 0))
        assert _BUILT == [0]
        _WORKER_CONTEXTS.clear()
