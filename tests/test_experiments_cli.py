"""Tests for the experiment runner, report rendering, and the CLI entry point."""

import pytest

from repro.experiments.__main__ import build_parser, main
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    _parallelism_overrides,
    render_report,
    run_experiments,
)


class TestRenderReport:
    def test_multiple_sections(self):
        first = ExperimentResult("a", "first", headers=["x"])
        first.add_row(1)
        second = ExperimentResult("b", "second", headers=["y"])
        second.add_row(2)
        report = render_report([first, second])
        assert "[a] first" in report
        assert "[b] second" in report

    def test_run_experiments_selected_subset(self):
        results = run_experiments(["table-1"])
        assert len(results) == 1
        assert results[0].experiment_id == "table-1"


class TestParallelismRouting:
    """--jobs/--cache-dir must reach the drivers that understand them."""

    @pytest.mark.parametrize("experiment_id", ["figure-13", "figure-15"])
    def test_jobs_and_cache_dir_reach_driver(self, experiment_id, tmp_path):
        extra = _parallelism_overrides(experiment_id, {}, 4, tmp_path)
        assert extra["jobs"] == 4
        assert extra["capacity_cache_dir"] == str(tmp_path.resolve())

    @pytest.mark.parametrize("experiment_id", ["figure-13", "figure-15"])
    def test_explicit_overrides_win(self, experiment_id):
        extra = _parallelism_overrides(experiment_id, {"jobs": 2}, 8, None)
        assert extra["jobs"] == 2
        assert "capacity_cache_dir" not in extra

    def test_driver_without_jobs_param_untouched(self, tmp_path):
        extra = _parallelism_overrides("table-1", {}, 4, tmp_path)
        assert "jobs" not in extra
        assert "capacity_cache_dir" not in extra

    def test_single_experiment_run_routes_jobs_and_cache(self, tmp_path):
        kwargs = {
            "num_nodes": 1,
            "num_cores_per_node": 8,
            "duration_s": 2.0,
            "policies": ("random",),
        }
        results = run_experiments(
            ["figure-13"],
            overrides={"figure-13": dict(kwargs)},
            processes=2,
            cache_dir=str(tmp_path),
        )
        assert results[0].experiment_id == "figure-13"
        # The replay memo landed next to the sweep cache in the shared dir.
        assert list(tmp_path.glob("fig13-*.json"))
        rerun = run_experiments(
            ["figure-13"],
            overrides={"figure-13": dict(kwargs)},
            processes=2,
            cache_dir=str(tmp_path),
        )
        assert rerun[0].rows == results[0].rows


class TestCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure-11" in output
        assert "table-2" in output

    def test_run_single_experiment(self, capsys):
        assert main(["table-1"]) == 0
        output = capsys.readouterr().out
        assert "[table-1]" in output
        assert "dlrm-rmc1" in output

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table-2", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "[table-2]" in target.read_text()

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert not args.list

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["figure-99"])
