"""Tests for the experiment runner, report rendering, and the CLI entry point."""

import pytest

from repro.experiments.__main__ import build_parser, main
from repro.experiments.registry import experiment_parameters, experiments_accepting
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    SweepRunner,
    _parallelism_overrides,
    render_report,
    run_experiments,
)
from repro.runtime.pool import active_pool, pool_forks, shared_pool

#: Drivers the runtime unification gave a worker budget and a warm-start /
#: replay cache; the CLI must route --jobs/--cache-dir into every one.
PARALLEL_DRIVERS = (
    "ablation-arrival",
    "ablation-cache-contention",
    "ablation-size-dist",
    "figure-9",
    "figure-13",
    "figure-15",
)


class TestRenderReport:
    def test_multiple_sections(self):
        first = ExperimentResult("a", "first", headers=["x"])
        first.add_row(1)
        second = ExperimentResult("b", "second", headers=["y"])
        second.add_row(2)
        report = render_report([first, second])
        assert "[a] first" in report
        assert "[b] second" in report

    def test_run_experiments_selected_subset(self):
        results = run_experiments(["table-1"])
        assert len(results) == 1
        assert results[0].experiment_id == "table-1"


class TestParallelismRouting:
    """--jobs/--cache-dir must reach every driver that understands them."""

    def test_expected_drivers_accept_jobs_and_cache_dir(self):
        # The routing contract is keyed off driver signatures, so first pin
        # which drivers participate: all of them accept both knobs.
        assert set(PARALLEL_DRIVERS) <= set(experiments_accepting("jobs"))
        assert set(PARALLEL_DRIVERS) <= set(
            experiments_accepting("capacity_cache_dir")
        )

    @pytest.mark.parametrize("experiment_id", PARALLEL_DRIVERS)
    def test_jobs_and_cache_dir_reach_driver(self, experiment_id, tmp_path):
        extra = _parallelism_overrides(experiment_id, {}, 4, tmp_path)
        assert extra["jobs"] == 4
        assert extra["capacity_cache_dir"] == str(tmp_path.resolve())

    @pytest.mark.parametrize("experiment_id", experiments_accepting("jobs"))
    def test_every_jobs_accepting_driver_is_routed(self, experiment_id, tmp_path):
        # Exhaustive over the registry: any driver that grows a jobs knob is
        # picked up by the CLI routing automatically.
        extra = _parallelism_overrides(experiment_id, {}, 4, tmp_path)
        assert extra["jobs"] == 4
        if "capacity_cache_dir" in experiment_parameters(experiment_id):
            assert extra["capacity_cache_dir"] == str(tmp_path.resolve())

    @pytest.mark.parametrize("experiment_id", ["figure-13", "figure-15"])
    def test_explicit_overrides_win(self, experiment_id):
        extra = _parallelism_overrides(experiment_id, {"jobs": 2}, 8, None)
        assert extra["jobs"] == 2
        assert "capacity_cache_dir" not in extra

    def test_driver_without_jobs_param_untouched(self, tmp_path):
        extra = _parallelism_overrides("table-1", {}, 4, tmp_path)
        assert "jobs" not in extra
        assert "capacity_cache_dir" not in extra

    def test_pooled_points_do_not_receive_jobs(self, tmp_path):
        # When sweep points execute inside the pool, handing each one a
        # worker budget on top would oversubscribe the host; only the cache
        # directory is still routed.
        extra = _parallelism_overrides("figure-15", {}, 4, tmp_path, pooled=True)
        assert "jobs" not in extra
        assert extra["capacity_cache_dir"] == str(tmp_path.resolve())

    def test_single_experiment_run_routes_jobs_and_cache(self, tmp_path):
        kwargs = {
            "num_nodes": 1,
            "num_cores_per_node": 8,
            "duration_s": 2.0,
            "policies": ("random",),
        }
        results = run_experiments(
            ["figure-13"],
            overrides={"figure-13": dict(kwargs)},
            processes=2,
            cache_dir=str(tmp_path),
        )
        assert results[0].experiment_id == "figure-13"
        # The replay memo landed next to the sweep cache in the shared dir.
        assert list(tmp_path.glob("fig13-*.json"))
        rerun = run_experiments(
            ["figure-13"],
            overrides={"figure-13": dict(kwargs)},
            processes=2,
            cache_dir=str(tmp_path),
        )
        assert rerun[0].rows == results[0].rows


class TestOnePoolPerInvocation:
    """The whole invocation forks at most one process pool."""

    FIG15_KWARGS = dict(
        fleet_sizes=(1, 2),
        policies=("least-outstanding",),
        num_queries=60,
        capacity_iterations=2,
        max_queries=600,
    )

    def test_figure15_run_forks_one_pool(self, monkeypatch):
        # Mirrors the CLI: the invocation owns a shared pool, figure-15's
        # capacity searches (homogeneous sizes + the hetero fleet, jobs=2
        # injected by the runner) all land on it.  The searches' in-flight
        # budget is clamped by physical cores, so force two so the parallel
        # path engages even on a one-core host.
        import repro.runtime.capacity as runtime_capacity

        monkeypatch.setattr(runtime_capacity, "_host_cores", lambda: 2)
        before = pool_forks()
        with shared_pool(2):
            results = run_experiments(
                ["figure-15"],
                overrides={"figure-15": dict(self.FIG15_KWARGS)},
                processes=2,
            )
        assert results[0].experiment_id == "figure-15"
        assert pool_forks() == before + 1

    def test_nested_sweep_points_with_jobs_stay_serial(self, tmp_path):
        # The SweepRunner nested-parallelism wart, tested explicitly: sweep
        # points that themselves carry jobs=2 run inside the pool, where
        # nesting detection makes the inner parallelism serial — the parent
        # forks exactly one pool and results match the serial run.
        points = [
            {
                "num_nodes": 1,
                "num_cores_per_node": 8,
                "duration_s": 2.0,
                "policies": ("random",),
                "jobs": 2,
                "seed": seed,
            }
            for seed in (29, 31)
        ]
        serial = SweepRunner(processes=1).run("figure-13", points)
        before = pool_forks()
        pooled = SweepRunner(processes=2).run("figure-13", points)
        assert pool_forks() == before + 1
        assert [r.rows for r in pooled.results] == [r.rows for r in serial.results]

    def test_single_uncached_point_inherits_worker_budget(self, tmp_path, monkeypatch):
        # A mostly-cached sweep can leave one fresh point; it executes
        # inline, and the sweep's worker budget is re-granted to the driver
        # as jobs so its capacity searches use the shared pool instead of
        # bisecting serially next to an idle pool.  (Force two host cores so
        # the searches' core-clamped budget engages the pool.)
        import repro.runtime.capacity as runtime_capacity

        monkeypatch.setattr(runtime_capacity, "_host_cores", lambda: 2)
        runner = SweepRunner(processes=2, cache_dir=tmp_path)
        with shared_pool(2):
            before = pool_forks()
            outcome = runner.run("figure-15", [dict(self.FIG15_KWARGS)])
            assert pool_forks() == before + 1  # driver searches hit the pool
        assert outcome.cache_misses == 1
        # The memo key ignores the injected budget: a serial rerun hits.
        rerun = SweepRunner(processes=1, cache_dir=tmp_path).run(
            "figure-15", [dict(self.FIG15_KWARGS)]
        )
        assert rerun.cache_hits == 1
        assert rerun.results[0].rows == outcome.results[0].rows

    def test_cli_owns_a_shared_pool(self, monkeypatch, capsys):
        seen = {}

        def fake_run_experiments(ids, processes=None, cache_dir=None):
            seen["active"] = active_pool()
            seen["processes"] = processes
            return []

        monkeypatch.setattr(
            "repro.experiments.__main__.run_experiments", fake_run_experiments
        )
        assert main(["figure-15", "--jobs", "3"]) == 0
        capsys.readouterr()
        assert seen["active"] is not None
        assert seen["active"].max_workers == 3
        assert seen["processes"] == 3
        assert active_pool() is None  # released when the invocation ended


class TestCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure-11" in output
        assert "table-2" in output

    def test_run_single_experiment(self, capsys):
        assert main(["table-1"]) == 0
        output = capsys.readouterr().out
        assert "[table-1]" in output
        assert "dlrm-rmc1" in output

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table-2", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "[table-2]" in target.read_text()

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert not args.list

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["figure-99"])
