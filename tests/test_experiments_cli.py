"""Tests for the experiment runner, report rendering, and the CLI entry point."""

import pytest

from repro.experiments.__main__ import build_parser, main
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import render_report, run_experiments


class TestRenderReport:
    def test_multiple_sections(self):
        first = ExperimentResult("a", "first", headers=["x"])
        first.add_row(1)
        second = ExperimentResult("b", "second", headers=["y"])
        second.add_row(2)
        report = render_report([first, second])
        assert "[a] first" in report
        assert "[b] second" in report

    def test_run_experiments_selected_subset(self):
        results = run_experiments(["table-1"])
        assert len(results) == 1
        assert results[0].experiment_id == "table-1"


class TestCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure-11" in output
        assert "table-2" in output

    def test_run_single_experiment(self, capsys):
        assert main(["table-1"]) == 0
        output = capsys.readouterr().out
        assert "[table-1]" in output
        assert "dlrm-rmc1" in output

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["table-2", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "[table-2]" in target.read_text()

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert not args.list

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["figure-99"])
