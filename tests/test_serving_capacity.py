"""Tests for the latency-bounded capacity search."""

import pytest

from repro.execution.engine import build_engine_pair
from repro.queries.generator import LoadGenerator
from repro.serving.capacity import (
    estimate_upper_bound_qps,
    find_max_qps,
    measurement_queries,
)
from repro.serving.simulator import ServingConfig


@pytest.fixture(scope="module")
def engines():
    return build_engine_pair("dlrm-rmc1", "skylake", "gtx1080ti")


class TestMeasurementQueries:
    def test_scales_with_rate_and_sla(self):
        assert measurement_queries(1000.0, 0.1, 100, 10000) == 500
        assert measurement_queries(1000.0, 0.2, 100, 10000) == 1000

    def test_clamped_to_bounds(self):
        assert measurement_queries(10.0, 0.01, 200, 5000) == 200
        assert measurement_queries(1e6, 1.0, 200, 5000) == 5000

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            measurement_queries(0.0, 0.1, 100, 1000)


class TestUpperBound:
    def test_positive_and_scales_with_batch_efficiency(self, engines):
        small = estimate_upper_bound_qps(engines, ServingConfig(batch_size=8), 170.0)
        large = estimate_upper_bound_qps(engines, ServingConfig(batch_size=512), 170.0)
        assert small > 0
        assert large > small

    def test_gpu_offload_raises_bound(self, engines):
        cpu_only = estimate_upper_bound_qps(engines, ServingConfig(batch_size=256), 170.0)
        with_gpu = estimate_upper_bound_qps(
            engines,
            ServingConfig(batch_size=256, offload_threshold=256),
            170.0,
            large_query_fraction=0.2,
            mean_large_query_size=500.0,
        )
        assert with_gpu > cpu_only

    def test_invalid_mean_size(self, engines):
        with pytest.raises(ValueError):
            estimate_upper_bound_qps(engines, ServingConfig(batch_size=8), 0.0)


class TestFindMaxQps:
    def test_returns_feasible_operating_point(self, engines):
        generator = LoadGenerator(seed=2)
        outcome = find_max_qps(
            engines,
            ServingConfig(batch_size=256),
            sla_latency_s=0.1,
            load_generator=generator,
            num_queries=250,
            iterations=4,
        )
        assert outcome.feasible
        assert outcome.max_qps > 0
        assert outcome.result.acceptable(0.1)

    def test_relaxed_sla_never_reduces_capacity(self, engines):
        generator = LoadGenerator(seed=2)
        tight = find_max_qps(
            engines, ServingConfig(batch_size=256), 0.05, generator,
            num_queries=250, iterations=4,
        )
        relaxed = find_max_qps(
            engines, ServingConfig(batch_size=256), 0.15, generator,
            num_queries=250, iterations=4,
        )
        assert relaxed.max_qps >= 0.8 * tight.max_qps

    def test_infeasible_sla_returns_zero(self, engines):
        # A microsecond-level p95 target cannot be met by any batch size.
        generator = LoadGenerator(seed=2)
        outcome = find_max_qps(
            engines, ServingConfig(batch_size=256), 1e-6, generator,
            num_queries=150, iterations=3,
        )
        assert outcome.max_qps == 0.0
        assert not outcome.feasible

    def test_capacity_result_records_sla(self, engines):
        generator = LoadGenerator(seed=2)
        outcome = find_max_qps(
            engines, ServingConfig(batch_size=128), 0.1, generator,
            num_queries=200, iterations=3,
        )
        assert outcome.sla_latency_s == 0.1

    def test_invalid_arguments(self, engines):
        generator = LoadGenerator(seed=2)
        with pytest.raises(ValueError):
            find_max_qps(engines, ServingConfig(batch_size=64), 0.0, generator)
        with pytest.raises(ValueError):
            find_max_qps(
                engines, ServingConfig(batch_size=64), 0.1, generator, num_queries=0
            )
