"""Tests for the query arrival processes."""

import numpy as np
import pytest

from repro.queries.arrival import (
    FixedArrival,
    PoissonArrival,
    UniformJitterArrival,
    get_arrival_process,
)


class TestPoissonArrival:
    def test_mean_rate_approximately_respected(self):
        process = PoissonArrival(rate_qps=200.0)
        gaps = process.inter_arrival_times(20000, rng=0)
        assert 1.0 / gaps.mean() == pytest.approx(200.0, rel=0.05)

    def test_gaps_positive(self):
        gaps = PoissonArrival(50.0).inter_arrival_times(1000, rng=1)
        assert np.all(gaps > 0)

    def test_exponential_coefficient_of_variation(self):
        gaps = PoissonArrival(100.0).inter_arrival_times(20000, rng=2)
        cv = gaps.std() / gaps.mean()
        assert cv == pytest.approx(1.0, rel=0.05)

    def test_arrival_times_sorted_and_offset(self):
        times = PoissonArrival(100.0).arrival_times(100, rng=3, start=5.0)
        assert np.all(np.diff(times) > 0)
        assert times[0] >= 5.0

    def test_reproducible_with_seed(self):
        a = PoissonArrival(100.0).inter_arrival_times(10, rng=7)
        b = PoissonArrival(100.0).inter_arrival_times(10, rng=7)
        assert np.allclose(a, b)

    def test_with_rate_returns_same_type(self):
        faster = PoissonArrival(10.0).with_rate(100.0)
        assert isinstance(faster, PoissonArrival)
        assert faster.rate_qps == 100.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrival(0.0)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            PoissonArrival(10.0).inter_arrival_times(0)


class TestOtherArrivals:
    def test_fixed_arrival_constant_gaps(self):
        gaps = FixedArrival(20.0).inter_arrival_times(10)
        assert np.allclose(gaps, 0.05)

    def test_uniform_jitter_bounds(self):
        process = UniformJitterArrival(100.0)
        gaps = process.inter_arrival_times(5000, rng=0)
        assert gaps.min() >= 0.5 * 0.01
        assert gaps.max() <= 1.5 * 0.01
        assert gaps.mean() == pytest.approx(0.01, rel=0.05)

    def test_fixed_has_zero_variance(self):
        gaps = FixedArrival(20.0).inter_arrival_times(100)
        assert gaps.std() <= 1e-12


class TestRegistry:
    def test_lookup_each_kind(self):
        assert isinstance(get_arrival_process("poisson", 10.0), PoissonArrival)
        assert isinstance(get_arrival_process("fixed", 10.0), FixedArrival)
        assert isinstance(get_arrival_process("uniform", 10.0), UniformJitterArrival)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_arrival_process("bursty", 10.0)
