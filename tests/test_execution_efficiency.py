"""Tests for the batch-size efficiency curves."""

import pytest

from repro.execution.efficiency import (
    SaturatingCurve,
    gpu_occupancy_curve,
    irregular_access_curve,
    recurrent_efficiency_curve,
    regular_access_curve,
    simd_efficiency_curve,
)


class TestSaturatingCurve:
    def test_monotonically_non_decreasing(self):
        curve = SaturatingCurve(max_efficiency=0.9, half_saturation=16.0)
        values = [curve(b) for b in (1, 2, 4, 8, 16, 64, 256, 1024)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_half_saturation_point(self):
        curve = SaturatingCurve(max_efficiency=0.8, half_saturation=32.0)
        assert curve(32) == pytest.approx(0.4)

    def test_never_exceeds_max(self):
        curve = SaturatingCurve(max_efficiency=0.8, half_saturation=4.0)
        assert curve(10**6) < 0.8

    def test_floor_applied_at_tiny_batches(self):
        curve = SaturatingCurve(max_efficiency=0.8, half_saturation=1000.0, floor=0.05)
        assert curve(1) == pytest.approx(0.05)

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            SaturatingCurve(0.8, 4.0)(0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SaturatingCurve(0.0, 4.0)
        with pytest.raises(ValueError):
            SaturatingCurve(0.8, 0.0)
        with pytest.raises(ValueError):
            SaturatingCurve(0.8, 4.0, floor=0.9)


class TestNamedCurves:
    def test_wider_simd_needs_larger_batches(self):
        avx2 = simd_efficiency_curve(256)
        avx512 = simd_efficiency_curve(512)
        # At a small batch, AVX-2 reaches a larger fraction of its peak.
        assert avx2(8) > avx512(8)
        # Both saturate to the same ceiling at huge batches.
        assert avx2(4096) == pytest.approx(avx512(4096), rel=0.05)

    def test_unsupported_width_raises(self):
        with pytest.raises(ValueError):
            simd_efficiency_curve(1024)

    def test_irregular_saturates_later_than_regular(self):
        irregular = irregular_access_curve()
        regular = regular_access_curve()
        assert irregular.half_saturation > regular.half_saturation

    def test_irregular_slower_than_regular(self):
        assert irregular_access_curve()(64) < regular_access_curve()(64)

    def test_recurrent_curve_is_flat(self):
        recurrent = recurrent_efficiency_curve()
        assert recurrent(256) / recurrent(16) < 1.2

    def test_gpu_occupancy_needs_large_batches(self):
        gpu = gpu_occupancy_curve()
        assert gpu(1) < 0.05
        assert gpu(1024) > 0.7
