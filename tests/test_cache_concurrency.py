"""Concurrent multi-process CapacityCache writers: no torn entries, ever.

The distributed executor makes concurrent cache mutation the *normal*
case, not a corner: many coordinator processes (and the sweep runner's
workers before them) share one warm-start directory on disk.  The cache's
contract under that load is simple — ``store`` is atomic write-then-rename,
so a reader observes each entry either absent or complete, never torn,
and same-signature writers racing with the *same* deterministic value
(the only kind a deterministic sweep produces) always converge to a
readable entry with that value.
"""

import multiprocessing
import sys
import time

from repro.serving.capacity import CapacityCache

_KEYS = list(range(12))


def _expected(key):
    return float(100 + key)


def _hammer_writer(cache_dir, rounds):
    """Store every key, ``rounds`` times over — racing the other writers."""
    cache = CapacityCache(cache_dir)
    for _round in range(rounds):
        for key in _KEYS:
            cache.store({"shared-key": key}, _expected(key))
    sys.exit(0)


def _racing_reader(cache_dir, duration_s):
    """Read every key in a loop while the writers run.

    Exit codes: 0 clean; 1 a read returned a wrong (torn) value; 2 the
    cache counted a corrupt entry — a partially-visible write.
    """
    cache = CapacityCache(cache_dir)
    deadline = time.monotonic() + duration_s
    while time.monotonic() < deadline:
        for key in _KEYS:
            value = cache.load({"shared-key": key}, count=False)
            if value is not None and value != _expected(key):
                sys.exit(1)
    sys.exit(2 if cache.stats["corrupt_entries"] else 0)


class TestConcurrentCacheWriters:
    def test_racing_writers_and_readers_never_see_torn_entries(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(target=_hammer_writer, args=(str(tmp_path), 15))
            for _writer in range(4)
        ]
        readers = [
            ctx.Process(target=_racing_reader, args=(str(tmp_path), 1.0))
            for _reader in range(2)
        ]
        for proc in readers + writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=60)
            assert proc.exitcode == 0, "a writer crashed mid-hammer"
        for proc in readers:
            proc.join(timeout=60)
            assert proc.exitcode == 0, (
                "a racing reader saw a torn or corrupt entry "
                f"(exit code {proc.exitcode})"
            )
        # The settled directory is fully readable with the right values.
        cache = CapacityCache(tmp_path)
        for key in _KEYS:
            assert cache.load({"shared-key": key}, count=False) == _expected(key)
        assert cache.stats["corrupt_entries"] == 0
        # Exactly one file per signature survived — renames replaced, never
        # duplicated — and no scratch files leaked.
        names = sorted(path.name for path in tmp_path.iterdir())
        assert len(names) == len(_KEYS)
        assert all(
            name.startswith("capacity-") and name.endswith(".json")
            for name in names
        )
