"""Tests for ModelConfig and EmbeddingConfig validation and derived widths."""

import pytest

from repro.models.config import (
    BottleneckClass,
    EmbeddingConfig,
    InteractionType,
    ModelConfig,
    PoolingType,
)


def make_config(**overrides) -> ModelConfig:
    params = dict(
        name="test-model",
        dense_input_dim=64,
        dense_fc=(64, 32),
        predict_fc=(32, 1),
        embedding=EmbeddingConfig(4, 1000, 16, 2),
        pooling=PoolingType.SUM,
        interaction=InteractionType.CONCAT,
        bottleneck=BottleneckClass.MLP,
        sla_target_ms=50.0,
    )
    params.update(overrides)
    return ModelConfig(**params)


class TestEmbeddingConfig:
    def test_storage_bytes(self):
        emb = EmbeddingConfig(num_tables=4, rows_per_table=1000,
                              embedding_dim=16, lookups_per_table=2)
        assert emb.storage_bytes == 4 * 1000 * 16 * 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EmbeddingConfig(0, 1000, 16, 2)
        with pytest.raises(ValueError):
            EmbeddingConfig(4, 1000, 0, 2)


class TestModelConfigValidation:
    def test_valid_config_builds(self):
        assert make_config().name == "test-model"

    def test_dense_stack_requires_dense_inputs(self):
        with pytest.raises(ValueError):
            make_config(dense_input_dim=0, dense_fc=(64, 32))

    def test_empty_predict_fc_rejected(self):
        with pytest.raises(ValueError):
            make_config(predict_fc=())

    def test_attention_requires_sequence_length(self):
        with pytest.raises(ValueError):
            make_config(pooling=PoolingType.ATTENTION, sequence_length=0)

    def test_attention_rnn_requires_gru_dim(self):
        with pytest.raises(ValueError):
            make_config(
                pooling=PoolingType.ATTENTION_RNN, sequence_length=10, gru_hidden_dim=0
            )

    def test_invalid_sla(self):
        with pytest.raises(ValueError):
            make_config(sla_target_ms=0.0)


class TestDerivedWidths:
    def test_dense_output_with_stack(self):
        assert make_config().dense_output_dim == 32

    def test_dense_output_without_stack(self):
        config = make_config(dense_fc=(), dense_input_dim=100)
        assert config.dense_output_dim == 100

    def test_sparse_output_sum_pooling(self):
        assert make_config(pooling=PoolingType.SUM).sparse_output_dim == 16

    def test_sparse_output_concat_pooling(self):
        assert make_config(pooling=PoolingType.CONCAT).sparse_output_dim == 4 * 16

    def test_sparse_output_attention_rnn(self):
        config = make_config(
            pooling=PoolingType.ATTENTION_RNN, sequence_length=10, gru_hidden_dim=8
        )
        assert config.sparse_output_dim == 8 + 3 * 16

    def test_interaction_concat_width(self):
        config = make_config()
        assert config.interaction_output_dim == 32 + 16

    def test_interaction_sum_width(self):
        config = make_config(interaction=InteractionType.SUM)
        assert config.interaction_output_dim == max(32, 16)

    def test_sla_seconds(self):
        assert make_config().sla_target_s == pytest.approx(0.05)

    def test_has_dense_stack_flag(self):
        assert make_config().has_dense_stack
        assert not make_config(dense_fc=(), dense_input_dim=10).has_dense_stack
