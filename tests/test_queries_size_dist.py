"""Tests for the query working-set-size distributions (Fig. 5 properties)."""

import numpy as np
import pytest

from repro.queries.size_dist import (
    MAX_QUERY_SIZE,
    FixedQuerySizes,
    LognormalQuerySizes,
    NormalQuerySizes,
    ProductionQuerySizes,
    get_size_distribution,
    work_share_above_percentile,
)


class TestProductionQuerySizes:
    def test_samples_within_bounds(self):
        sizes = ProductionQuerySizes().sample(20000, rng=0)
        assert sizes.min() >= 1
        assert sizes.max() <= MAX_QUERY_SIZE

    def test_samples_are_integers(self):
        sizes = ProductionQuerySizes().sample(100, rng=0)
        assert sizes.dtype.kind == "i"

    def test_heavier_tail_than_lognormal(self):
        production = ProductionQuerySizes().sample(30000, rng=1)
        lognormal = LognormalQuerySizes().sample(30000, rng=1)
        production_ratio = np.percentile(production, 99) / np.percentile(production, 50)
        lognormal_ratio = np.percentile(lognormal, 99) / np.percentile(lognormal, 50)
        assert production_ratio > lognormal_ratio

    def test_top_quartile_carries_about_half_the_work(self):
        share = work_share_above_percentile(ProductionQuerySizes(), 75.0, count=30000, rng=2)
        assert 0.4 <= share <= 0.75

    def test_reproducible_with_seed(self):
        a = ProductionQuerySizes().sample(100, rng=5)
        b = ProductionQuerySizes().sample(100, rng=5)
        assert np.array_equal(a, b)

    def test_percentile_and_mean_helpers(self):
        dist = ProductionQuerySizes()
        assert dist.percentile(75) > dist.percentile(50)
        assert dist.mean() > dist.percentile(50)

    def test_invalid_tail_probability(self):
        with pytest.raises(ValueError):
            ProductionQuerySizes(tail_probability=0.0)
        with pytest.raises(ValueError):
            ProductionQuerySizes(tail_probability=1.0)


class TestOtherDistributions:
    def test_lognormal_median(self):
        sizes = LognormalQuerySizes(median=100.0).sample(30000, rng=0)
        assert np.percentile(sizes, 50) == pytest.approx(100.0, rel=0.1)

    def test_normal_mean(self):
        sizes = NormalQuerySizes(mean=150.0, std=20.0).sample(30000, rng=0)
        assert sizes.mean() == pytest.approx(150.0, rel=0.05)

    def test_normal_clipped_at_one(self):
        sizes = NormalQuerySizes(mean=5.0, std=50.0).sample(5000, rng=0)
        assert sizes.min() >= 1

    def test_fixed_distribution(self):
        sizes = FixedQuerySizes(64).sample(100)
        assert np.all(sizes == 64)

    def test_fixed_larger_than_default_max_allowed(self):
        dist = FixedQuerySizes(5000)
        assert dist.sample(3)[0] == 5000

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            ProductionQuerySizes().sample(0)


class TestRegistry:
    def test_lookup_each_kind(self):
        assert isinstance(get_size_distribution("production"), ProductionQuerySizes)
        assert isinstance(get_size_distribution("lognormal"), LognormalQuerySizes)
        assert isinstance(get_size_distribution("normal"), NormalQuerySizes)
        assert isinstance(get_size_distribution("fixed", size=32), FixedQuerySizes)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_size_distribution("zipf")


class TestWorkShare:
    def test_fixed_distribution_share_is_zero(self):
        # With identical sizes nothing is strictly above the p75 value.
        assert work_share_above_percentile(FixedQuerySizes(64), 75.0, count=1000) == 0.0

    def test_share_decreases_with_percentile(self):
        dist = ProductionQuerySizes()
        share_50 = work_share_above_percentile(dist, 50.0, count=20000, rng=3)
        share_90 = work_share_above_percentile(dist, 90.0, count=20000, rng=3)
        assert share_50 > share_90


class TestDeterministicPercentile:
    """percentile() is closed-form over the integer support — no sampling.

    The pins are cross-validated against 400k-draw Monte-Carlo estimates:
    the analytic CDF answers agree with the empirical quantiles of
    ``sample`` to within one integer step.
    """

    def test_production_percentiles_pinned(self):
        dist = ProductionQuerySizes()
        assert [dist.percentile(p) for p in (25, 50, 75, 95, 99)] == [
            69.0, 131.0, 220.0, 1000.0, 1000.0,
        ]

    def test_lognormal_percentiles_pinned(self):
        dist = LognormalQuerySizes()
        assert [dist.percentile(p) for p in (25, 50, 75, 99)] == [
            58.0, 100.0, 172.0, 643.0,
        ]

    def test_normal_percentiles_pinned(self):
        dist = NormalQuerySizes()
        assert [dist.percentile(p) for p in (25, 50, 75, 99)] == [
            116.0, 150.0, 184.0, 266.0,
        ]

    def test_fixed_percentile_is_the_size(self):
        dist = FixedQuerySizes(64)
        assert dist.percentile(1) == dist.percentile(99) == 64.0

    def test_percentile_is_deterministic_and_monotone(self):
        dist = ProductionQuerySizes()
        values = [dist.percentile(p) for p in range(1, 100, 7)]
        assert values == [dist.percentile(p) for p in range(1, 100, 7)]
        assert values == sorted(values)

    def test_matches_empirical_quantiles(self):
        # The closed-form CDF must agree with what sample() actually
        # produces: the analytic percentile sits within one integer step
        # of the empirical quantile on a large draw.
        for dist in (ProductionQuerySizes(), LognormalQuerySizes(), NormalQuerySizes()):
            samples = dist.sample(200_000, rng=13)
            for pct in (25, 50, 75):
                empirical = float(np.percentile(samples, pct))
                assert abs(dist.percentile(pct) - empirical) <= 2.0, (dist, pct)

    def test_percentile_capped_at_max_size(self):
        dist = ProductionQuerySizes()
        assert dist.percentile(99.999) == float(MAX_QUERY_SIZE)
