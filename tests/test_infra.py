"""Tests for the DeepRecInfra facade and the datacenter cluster simulation."""

import pytest

from repro.execution.engine import build_cpu_engine
from repro.infra.datacenter import ClusterResult, DatacenterCluster, ScaledCPUEngine
from repro.infra.deeprecinfra import DeepRecInfra, InfraConfig
from repro.queries.generator import LoadGenerator
from repro.queries.trace import DiurnalPattern
from repro.serving.simulator import ServingConfig
from repro.serving.sla import SLATier


class TestInfraConfig:
    def test_defaults(self):
        config = InfraConfig()
        assert config.model == "dlrm-rmc1"
        assert config.cpu_platform == "skylake"
        assert config.arrival_process == "poisson"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            InfraConfig(model="gpt-2")

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError):
            InfraConfig(num_cores=-1)


class TestDeepRecInfra:
    @pytest.fixture(scope="class")
    def infra(self):
        return DeepRecInfra(InfraConfig(model="ncf", seed=5))

    def test_engines_match_config(self, infra):
        assert infra.engines.cpu.model.name == "ncf"
        assert infra.engines.has_accelerator

    def test_cpu_only_configuration(self):
        infra = DeepRecInfra(InfraConfig(model="ncf", gpu_platform=None))
        assert not infra.engines.has_accelerator

    def test_sla_tiers(self, infra):
        assert infra.sla(SLATier.MEDIUM).latency_ms == pytest.approx(5.0)
        assert infra.sla(SLATier.LOW).latency_ms == pytest.approx(2.5)

    def test_model_config_access(self, infra):
        assert infra.model_config.name == "ncf"

    def test_generate_queries(self, infra):
        queries = infra.generate_queries(num_queries=50, rate_qps=500.0)
        assert len(queries) == 50
        assert all(q.size >= 1 for q in queries)

    def test_simulate_and_capacity(self, infra):
        queries = infra.generate_queries(num_queries=120, rate_qps=300.0)
        result = infra.simulate(ServingConfig(batch_size=64), queries)
        assert result.p95_latency_s > 0
        capacity = infra.capacity(
            ServingConfig(batch_size=64), SLATier.MEDIUM, num_queries=120, iterations=3
        )
        assert capacity.max_qps > 0

    def test_distribution_choices_respected(self):
        infra = DeepRecInfra(
            InfraConfig(model="ncf", arrival_process="fixed", size_distribution="normal")
        )
        queries = infra.generate_queries(num_queries=20, rate_qps=100.0)
        gaps = [
            b.arrival_time - a.arrival_time for a, b in zip(queries, queries[1:])
        ]
        assert max(gaps) == pytest.approx(min(gaps))


class TestScaledCPUEngine:
    def test_scaling_applied(self):
        base = build_cpu_engine("ncf", "skylake")
        scaled = ScaledCPUEngine(base, speed_factor=1.5)
        assert scaled.request_latency_s(64) == pytest.approx(
            1.5 * base.request_latency_s(64)
        )
        assert scaled.platform is base.platform

    def test_invalid_factor(self):
        base = build_cpu_engine("ncf", "skylake")
        with pytest.raises(ValueError):
            ScaledCPUEngine(base, speed_factor=0.0)


class TestDatacenterCluster:
    @pytest.fixture(scope="class")
    def cluster(self):
        return DatacenterCluster("dlrm-rmc1", num_nodes=6, seed=7)

    @pytest.fixture(scope="class")
    def cluster_result(self, cluster) -> ClusterResult:
        generator = LoadGenerator(seed=7)
        queries = generator.with_rate(240.0).generate(600)
        return cluster.run(queries, batch_size=128)

    def test_node_heterogeneity(self, cluster):
        platforms = {node.platform_name for node in cluster.nodes}
        speeds = {node.speed_factor for node in cluster.nodes}
        assert cluster.num_nodes == 6
        assert platforms <= {"skylake", "broadwell"}
        assert len(speeds) > 1

    def test_all_nodes_receive_traffic(self, cluster_result):
        assert cluster_result.num_nodes == 6
        assert all(
            result.measured_queries > 0
            for result in cluster_result.per_node_results.values()
        )

    def test_percentile_ordering(self, cluster_result):
        assert (
            cluster_result.p50_latency_s
            <= cluster_result.p95_latency_s
            <= cluster_result.p99_latency_s
        )

    def test_subsample_tracks_fleet(self, cluster_result):
        # The Fig. 7 claim, with a generous bound for the small simulated fleet.
        gap = cluster_result.subsample_gap([0, 1, 2])
        assert gap < 0.35

    def test_unknown_node_raises(self, cluster_result):
        with pytest.raises(KeyError):
            cluster_result.node_latencies([999])

    def test_diurnal_run(self, cluster):
        result = cluster.run_diurnal(
            batch_size=128,
            base_rate_qps=200.0,
            duration_s=30.0,
            pattern=DiurnalPattern(amplitude=0.3, period_s=30.0),
            seed=1,
        )
        assert result.p95_latency_s > 0

    def test_tuned_batch_reduces_tail_latency(self):
        # The Fig. 13 protocol at miniature scale: near saturation, the fixed
        # production batch size produces worse tails than a tuned batch size
        # under the same traffic.
        cluster = DatacenterCluster(
            "dlrm-rmc1", num_nodes=1, num_cores=12,
            platform_mix={"skylake": 1.0}, seed=3,
        )
        common = dict(base_rate_qps=2200.0, duration_s=4.0, seed=5)
        fixed = cluster.run_diurnal(batch_size=84, **common)
        tuned = cluster.run_diurnal(batch_size=512, **common)
        assert fixed.p95_latency_s > tuned.p95_latency_s

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DatacenterCluster("dlrm-rmc1", num_nodes=0)
        with pytest.raises(ValueError):
            DatacenterCluster("dlrm-rmc1", num_nodes=2, speed_spread=0.9)
        cluster = DatacenterCluster("dlrm-rmc1", num_nodes=2, seed=0)
        with pytest.raises(ValueError):
            cluster.run([], batch_size=64)
