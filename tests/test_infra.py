"""Tests for the DeepRecInfra facade and the datacenter cluster simulation."""

import pytest

from repro.execution.engine import EnginePair, build_cpu_engine
from repro.infra.datacenter import ClusterResult, DatacenterCluster, ScaledCPUEngine
from repro.infra.deeprecinfra import DeepRecInfra, InfraConfig
from repro.queries.generator import LoadGenerator
from repro.queries.trace import DiurnalPattern
from repro.serving.simulator import ServingConfig, ServingSimulator
from repro.serving.sla import SLATier


class TestInfraConfig:
    def test_defaults(self):
        config = InfraConfig()
        assert config.model == "dlrm-rmc1"
        assert config.cpu_platform == "skylake"
        assert config.arrival_process == "poisson"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            InfraConfig(model="gpt-2")

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError):
            InfraConfig(num_cores=-1)


class TestDeepRecInfra:
    @pytest.fixture(scope="class")
    def infra(self):
        return DeepRecInfra(InfraConfig(model="ncf", seed=5))

    def test_engines_match_config(self, infra):
        assert infra.engines.cpu.model.name == "ncf"
        assert infra.engines.has_accelerator

    def test_cpu_only_configuration(self):
        infra = DeepRecInfra(InfraConfig(model="ncf", gpu_platform=None))
        assert not infra.engines.has_accelerator

    def test_sla_tiers(self, infra):
        assert infra.sla(SLATier.MEDIUM).latency_ms == pytest.approx(5.0)
        assert infra.sla(SLATier.LOW).latency_ms == pytest.approx(2.5)

    def test_model_config_access(self, infra):
        assert infra.model_config.name == "ncf"

    def test_generate_queries(self, infra):
        queries = infra.generate_queries(num_queries=50, rate_qps=500.0)
        assert len(queries) == 50
        assert all(q.size >= 1 for q in queries)

    def test_simulate_and_capacity(self, infra):
        queries = infra.generate_queries(num_queries=120, rate_qps=300.0)
        result = infra.simulate(ServingConfig(batch_size=64), queries)
        assert result.p95_latency_s > 0
        capacity = infra.capacity(
            ServingConfig(batch_size=64), SLATier.MEDIUM, num_queries=120, iterations=3
        )
        assert capacity.max_qps > 0

    def test_distribution_choices_respected(self):
        infra = DeepRecInfra(
            InfraConfig(model="ncf", arrival_process="fixed", size_distribution="normal")
        )
        queries = infra.generate_queries(num_queries=20, rate_qps=100.0)
        gaps = [
            b.arrival_time - a.arrival_time for a, b in zip(queries, queries[1:])
        ]
        assert max(gaps) == pytest.approx(min(gaps))


class TestScaledCPUEngine:
    def test_scaling_applied(self):
        base = build_cpu_engine("ncf", "skylake")
        scaled = ScaledCPUEngine(base, speed_factor=1.5)
        assert scaled.request_latency_s(64) == pytest.approx(
            1.5 * base.request_latency_s(64)
        )
        assert scaled.platform is base.platform

    def test_invalid_factor(self):
        base = build_cpu_engine("ncf", "skylake")
        with pytest.raises(ValueError):
            ScaledCPUEngine(base, speed_factor=0.0)


class TestDatacenterCluster:
    @pytest.fixture(scope="class")
    def cluster(self):
        return DatacenterCluster("dlrm-rmc1", num_nodes=6, seed=7)

    @pytest.fixture(scope="class")
    def cluster_result(self, cluster) -> ClusterResult:
        generator = LoadGenerator(seed=7)
        queries = generator.with_rate(240.0).generate(600)
        return cluster.run(queries, batch_size=128)

    def test_node_heterogeneity(self, cluster):
        platforms = {node.platform_name for node in cluster.nodes}
        speeds = {node.speed_factor for node in cluster.nodes}
        assert cluster.num_nodes == 6
        assert platforms <= {"skylake", "broadwell"}
        assert len(speeds) > 1

    def test_all_nodes_receive_traffic(self, cluster_result):
        assert cluster_result.num_nodes == 6
        assert all(
            result.measured_queries > 0
            for result in cluster_result.per_node_results.values()
        )

    def test_percentile_ordering(self, cluster_result):
        assert (
            cluster_result.p50_latency_s
            <= cluster_result.p95_latency_s
            <= cluster_result.p99_latency_s
        )

    def test_subsample_tracks_fleet(self, cluster_result):
        # The Fig. 7 claim, with a generous bound for the small simulated fleet.
        gap = cluster_result.subsample_gap([0, 1, 2])
        assert gap < 0.35

    def test_unknown_node_raises(self, cluster_result):
        with pytest.raises(KeyError):
            cluster_result.node_latencies([999])

    def test_diurnal_run(self, cluster):
        result = cluster.run_diurnal(
            batch_size=128,
            base_rate_qps=200.0,
            duration_s=30.0,
            pattern=DiurnalPattern(amplitude=0.3, period_s=30.0),
            seed=1,
        )
        assert result.p95_latency_s > 0

    def test_tuned_batch_reduces_tail_latency(self):
        # The Fig. 13 protocol at miniature scale: near saturation, the fixed
        # production batch size produces worse tails than a tuned batch size
        # under the same traffic.
        cluster = DatacenterCluster(
            "dlrm-rmc1", num_nodes=1, num_cores=12,
            platform_mix={"skylake": 1.0}, seed=3,
        )
        common = dict(base_rate_qps=2200.0, duration_s=4.0, seed=5)
        fixed = cluster.run_diurnal(batch_size=84, **common)
        tuned = cluster.run_diurnal(batch_size=512, **common)
        assert fixed.p95_latency_s > tuned.p95_latency_s

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DatacenterCluster("dlrm-rmc1", num_nodes=0)
        with pytest.raises(ValueError):
            DatacenterCluster("dlrm-rmc1", num_nodes=2, speed_spread=0.9)
        cluster = DatacenterCluster("dlrm-rmc1", num_nodes=2, seed=0)
        with pytest.raises(ValueError):
            cluster.run([], batch_size=64)


class TestClusterSimulatorUnification:
    """The datacenter fleet runs as one shared-heap ClusterSimulator pass."""

    @pytest.fixture(scope="class")
    def queries(self):
        return LoadGenerator(seed=13).with_rate(400.0).generate(400)

    def test_single_node_matches_serving_simulator_exactly(self, queries):
        # With one node, every balancing policy degenerates to pass-through
        # and the unified path must reproduce the single-server simulator's
        # measurements bit for bit (the "legacy path" equivalence).
        cluster = DatacenterCluster(
            "dlrm-rmc1", num_nodes=1, num_cores=8,
            platform_mix={"skylake": 1.0}, seed=11,
        )
        node = cluster.nodes[0]
        outcome = cluster.run(queries, batch_size=128, warmup_fraction=0.05)
        scaled = ScaledCPUEngine(
            build_cpu_engine("dlrm-rmc1", node.platform_name), node.speed_factor
        )
        config = ServingConfig(batch_size=128, num_cores=8, warmup_fraction=0.05)
        single = ServingSimulator(EnginePair(cpu=scaled, gpu=None), config).run(queries)
        assert outcome.p50_latency_s == single.p50_latency_s
        assert outcome.p95_latency_s == single.p95_latency_s
        assert outcome.p99_latency_s == single.p99_latency_s
        assert sorted(outcome.latencies_s) == sorted(single.latencies_s)
        node_result = outcome.per_node_results[0]
        assert node_result.measured_queries == single.measured_queries
        assert node_result.cpu_utilization == single.cpu_utilization

    def test_warmup_is_fleet_wide(self, queries):
        # 400 queries over 6 nodes: the legacy per-node warmup floored to
        # int(~66 * 0.01) = 0 on every node; the fleet-wide window drops the
        # first 1 % of the stream by global arrival order exactly once.
        cluster = DatacenterCluster("dlrm-rmc1", num_nodes=6, seed=7)
        outcome = cluster.run(queries, batch_size=128, warmup_fraction=0.01)
        measured = sum(
            result.measured_queries for result in outcome.per_node_results.values()
        )
        assert measured == len(queries) - int(len(queries) * 0.01)

    def test_policy_selectable_and_recorded(self, queries):
        cluster = DatacenterCluster("dlrm-rmc1", num_nodes=4, seed=5)
        random_run = cluster.run(queries, batch_size=128)
        balanced = cluster.run(queries, batch_size=128, policy="least-outstanding")
        assert random_run.policy == "random"
        assert balanced.policy == "least-outstanding"
        assert balanced.fleet is not None
        assert balanced.fleet.max_query_share() <= 1.0
        with pytest.raises(KeyError, match="unknown balancing policy"):
            cluster.run(queries, batch_size=128, policy="no-such-policy")

    def test_query_shares_sum_to_one(self, queries):
        cluster = DatacenterCluster("dlrm-rmc1", num_nodes=4, seed=5)
        shares = cluster.run(queries, batch_size=128).query_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_diurnal_replay_stays_on_fast_path(self):
        cluster = DatacenterCluster("dlrm-rmc1", num_nodes=3, seed=2)
        result = cluster.run_diurnal(
            batch_size=128, base_rate_qps=150.0, duration_s=20.0
        )
        assert result.scalar_fallbacks == 0

    def test_diurnal_seed_follows_cluster_seed(self):
        kwargs = dict(batch_size=128, base_rate_qps=150.0, duration_s=20.0)
        first = DatacenterCluster("ncf", num_nodes=2, seed=1)
        second = DatacenterCluster("ncf", num_nodes=2, seed=2)
        replay_a = first.run_diurnal(**kwargs)
        replay_b = first.run_diurnal(**kwargs)
        other = second.run_diurnal(**kwargs)
        # Same cluster: the derived trace seed is stable across calls.
        assert replay_a.latencies_s == replay_b.latencies_s
        # Different cluster seeds no longer silently share one trace.
        assert replay_a.latencies_s != other.latencies_s
        # An explicit seed still pins one trace across clusters.
        pinned_a = first.run_diurnal(seed=99, **kwargs)
        pinned_b = second.run_diurnal(seed=99, **kwargs)
        assert pinned_a.fleet.num_queries == pinned_b.fleet.num_queries
