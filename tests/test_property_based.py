"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hill_climber import hill_climb, power_of_two_candidates
from repro.execution.efficiency import SaturatingCurve
from repro.models.ops import EmbeddingGather, FullyConnected, OperatorCost
from repro.queries.query import Query
from repro.queries.size_dist import LognormalQuerySizes, ProductionQuerySizes
from repro.serving.request import num_requests, split_query
from repro.utils.stats import PercentileTracker, StreamingStats, geometric_mean, percentile

# Keep examples modest so the suite stays fast and deterministic enough.
SETTINGS = settings(max_examples=60, deadline=None)


class TestSplitQueryProperties:
    @SETTINGS
    @given(size=st.integers(1, 5000), batch=st.integers(1, 2048))
    def test_split_conserves_items(self, size, batch):
        query = Query(0, 0.0, size)
        requests = split_query(query, batch)
        assert sum(r.batch_size for r in requests) == size

    @SETTINGS
    @given(size=st.integers(1, 5000), batch=st.integers(1, 2048))
    def test_split_respects_batch_bound(self, size, batch):
        requests = split_query(Query(0, 0.0, size), batch)
        assert all(1 <= r.batch_size <= batch for r in requests)

    @SETTINGS
    @given(size=st.integers(1, 5000), batch=st.integers(1, 2048))
    def test_request_count_formula(self, size, batch):
        requests = split_query(Query(0, 0.0, size), batch)
        assert len(requests) == num_requests(size, batch)
        assert len(requests) == -(-size // batch)

    @SETTINGS
    @given(size=st.integers(1, 5000), batch=st.integers(1, 2048))
    def test_indices_are_contiguous(self, size, batch):
        requests = split_query(Query(0, 0.0, size), batch)
        assert [r.index for r in requests] == list(range(len(requests)))


class TestStatsProperties:
    @SETTINGS
    @given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=200))
    def test_percentile_within_sample_range(self, samples):
        for pct in (0, 50, 95, 100):
            value = percentile(samples, pct)
            assert min(samples) <= value <= max(samples)

    @SETTINGS
    @given(st.lists(st.floats(0.001, 1e6), min_size=2, max_size=200))
    def test_percentiles_monotone_in_pct(self, samples):
        assert percentile(samples, 50) <= percentile(samples, 95) <= percentile(samples, 99)

    @SETTINGS
    @given(st.lists(st.floats(0.01, 1e4), min_size=1, max_size=100))
    def test_geometric_mean_bounded_by_extremes(self, values):
        gm = geometric_mean(values)
        assert min(values) * 0.999 <= gm <= max(values) * 1.001

    @SETTINGS
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_streaming_stats_match_numpy(self, values):
        stats = StreamingStats()
        for value in values:
            stats.add(value)
        assert np.isclose(stats.mean, np.mean(values), rtol=1e-9, atol=1e-6)
        assert np.isclose(stats.total, np.sum(values), rtol=1e-9, atol=1e-6)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    @SETTINGS
    @given(
        st.lists(st.floats(0.0, 1e3), min_size=1, max_size=100),
        st.integers(0, 20),
    )
    def test_tracker_warmup_count(self, samples, warmup):
        tracker = PercentileTracker(warmup=warmup)
        tracker.extend(samples)
        assert tracker.count == max(0, len(samples) - warmup)
        assert tracker.raw_count == len(samples)

    @SETTINGS
    @given(
        st.lists(st.floats(0.001, 1e3), min_size=1, max_size=40),
        st.integers(1, 4),
    )
    def test_tracker_buffer_growth_preserves_samples(self, samples, repeats):
        # Interleave add() and extend() past the initial buffer capacity and
        # check the recorded stream is exactly the inserted one, in order.
        tracker = PercentileTracker()
        expected = []
        for _ in range(repeats):
            tracker.extend(samples)
            expected.extend(samples)
            for value in samples:
                tracker.add(value)
            expected.extend(samples)
        padding = [0.5] * 300  # force at least one buffer doubling
        tracker.extend(padding)
        expected.extend(padding)
        assert tracker.samples() == expected
        assert tracker.percentile(50) == percentile(expected, 50)


class TestOperatorCostProperties:
    @SETTINGS
    @given(
        in_features=st.integers(1, 2048),
        out_features=st.integers(1, 2048),
        batch_a=st.integers(1, 512),
        batch_b=st.integers(1, 512),
    )
    def test_fc_flops_monotone_in_batch(self, in_features, out_features, batch_a, batch_b):
        op = FullyConnected("fc", in_features, out_features)
        small, large = sorted((batch_a, batch_b))
        assert op.cost(small).flops <= op.cost(large).flops

    @SETTINGS
    @given(
        tables=st.integers(1, 64),
        lookups=st.integers(1, 256),
        dim=st.integers(1, 128),
        batch=st.integers(1, 512),
    )
    def test_embedding_gather_bytes_scale_with_every_dimension(
        self, tables, lookups, dim, batch
    ):
        op = EmbeddingGather("emb", tables, 10_000, dim, lookups)
        cost = op.cost(batch)
        assert cost.irregular_bytes == batch * tables * lookups * dim * 4
        assert cost.total_bytes > 0

    @SETTINGS
    @given(
        flops=st.floats(0, 1e12),
        regular=st.floats(0, 1e12),
        irregular=st.floats(0, 1e12),
    )
    def test_cost_addition_commutative(self, flops, regular, irregular):
        a = OperatorCost(flops, regular, irregular)
        b = OperatorCost(irregular, flops, regular)
        assert (a + b).total_bytes == (b + a).total_bytes
        assert (a + b).flops == (b + a).flops


class TestEfficiencyCurveProperties:
    @SETTINGS
    @given(
        max_eff=st.floats(0.05, 1.0),
        half_sat=st.floats(0.5, 1024.0),
        batch_a=st.integers(1, 4096),
        batch_b=st.integers(1, 4096),
    )
    def test_curve_monotone_and_bounded(self, max_eff, half_sat, batch_a, batch_b):
        curve = SaturatingCurve(max_eff, half_sat, floor=min(0.01, max_eff))
        small, large = sorted((batch_a, batch_b))
        assert curve(small) <= curve(large) + 1e-12
        assert 0 < curve(large) <= max_eff


class TestQuerySizeProperties:
    @SETTINGS
    @given(count=st.integers(1, 2000), seed=st.integers(0, 1000))
    def test_production_samples_in_bounds(self, count, seed):
        sizes = ProductionQuerySizes().sample(count, rng=seed)
        assert sizes.shape == (count,)
        assert sizes.min() >= 1
        assert sizes.max() <= 1000

    @SETTINGS
    @given(count=st.integers(1, 2000), seed=st.integers(0, 1000))
    def test_lognormal_samples_in_bounds(self, count, seed):
        sizes = LognormalQuerySizes().sample(count, rng=seed)
        assert sizes.min() >= 1
        assert sizes.max() <= 1000


class TestHillClimberProperties:
    @SETTINGS
    @given(
        values=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=30),
        patience=st.integers(1, 5),
    )
    def test_best_value_is_max_of_evaluated(self, values, patience):
        candidates = list(range(len(values)))
        result = hill_climb(candidates, lambda i: values[i], patience=patience)
        evaluated = [value for _, value in result.evaluations]
        assert result.best_value == max(evaluated)
        assert values[result.best_candidate] == result.best_value

    @SETTINGS
    @given(minimum=st.integers(1, 100), span=st.integers(0, 2000))
    def test_power_of_two_candidates_sorted_and_bounded(self, minimum, span):
        maximum = minimum + span
        candidates = power_of_two_candidates(minimum, maximum)
        assert candidates[0] == minimum
        assert candidates[-1] == maximum
        assert all(b > a for a, b in zip(candidates, candidates[1:]))
        assert all(minimum <= c <= maximum for c in candidates)
