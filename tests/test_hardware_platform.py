"""Tests for repro.hardware.platform and cache models."""

import pytest

from repro.hardware.cache import (
    CacheHierarchy,
    CachePolicy,
    exclusive_hierarchy,
    inclusive_hierarchy,
)
from repro.hardware.platform import HardwarePlatform


def make_platform(**overrides) -> HardwarePlatform:
    params = dict(
        name="test",
        peak_flops=1e12,
        memory_bandwidth=1e11,
        tdp_watts=100.0,
        idle_power_fraction=0.3,
    )
    params.update(overrides)
    return HardwarePlatform(**params)


class TestHardwarePlatform:
    def test_machine_balance(self):
        platform = make_platform()
        assert platform.machine_balance == pytest.approx(10.0)

    def test_idle_power(self):
        assert make_platform().idle_power() == pytest.approx(30.0)

    def test_power_at_full_utilization_is_tdp(self):
        assert make_platform().power_at_utilization(1.0) == pytest.approx(100.0)

    def test_power_at_zero_utilization_is_idle(self):
        assert make_platform().power_at_utilization(0.0) == pytest.approx(30.0)

    def test_power_is_linear_in_utilization(self):
        platform = make_platform()
        half = platform.power_at_utilization(0.5)
        assert half == pytest.approx((platform.idle_power() + platform.tdp_watts) / 2)

    def test_invalid_utilization_raises(self):
        with pytest.raises(ValueError):
            make_platform().power_at_utilization(1.5)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            make_platform(peak_flops=0)
        with pytest.raises(ValueError):
            make_platform(memory_bandwidth=-1)
        with pytest.raises(ValueError):
            make_platform(idle_power_fraction=1.5)


class TestCacheHierarchy:
    def test_single_core_no_contention(self):
        cache = inclusive_hierarchy(32 * 2**20)
        assert cache.contention_factor(1, 28) == pytest.approx(1.0)

    def test_all_cores_full_contention(self):
        cache = CacheHierarchy(CachePolicy.INCLUSIVE, 32 * 2**20, contention_slope=0.5)
        assert cache.contention_factor(28, 28) == pytest.approx(1.5)

    def test_contention_monotonic_in_active_cores(self):
        cache = inclusive_hierarchy(32 * 2**20)
        factors = [cache.contention_factor(n, 40) for n in range(1, 41)]
        assert all(b >= a for a, b in zip(factors, factors[1:]))

    def test_inclusive_worse_than_exclusive(self):
        inclusive = inclusive_hierarchy(32 * 2**20)
        exclusive = exclusive_hierarchy(32 * 2**20)
        assert inclusive.contention_factor(20, 40) > exclusive.contention_factor(20, 40)

    def test_active_cores_clamped_to_total(self):
        cache = exclusive_hierarchy(32 * 2**20)
        assert cache.contention_factor(100, 40) == cache.contention_factor(40, 40)

    def test_single_core_platform(self):
        cache = exclusive_hierarchy(32 * 2**20)
        assert cache.contention_factor(1, 1) == 1.0

    def test_invalid_arguments(self):
        cache = exclusive_hierarchy(32 * 2**20)
        with pytest.raises(ValueError):
            cache.contention_factor(0, 40)
        with pytest.raises(ValueError):
            cache.contention_factor(1, 0)

    def test_miss_rate_bounds(self):
        cache = inclusive_hierarchy(32 * 2**20)
        low = cache.miss_rate(1, 40)
        high = cache.miss_rate(40, 40)
        assert low == pytest.approx(0.30)
        assert high == pytest.approx(0.60)
        assert low < cache.miss_rate(20, 40) < high

    def test_policy_enum_values(self):
        assert inclusive_hierarchy(1.0).policy is CachePolicy.INCLUSIVE
        assert exclusive_hierarchy(1.0).policy is CachePolicy.EXCLUSIVE
