"""Smoke tests that the runnable examples execute end to end.

The examples are part of the public deliverable; these tests import each one
as a module and call its entry points with reduced workloads where possible,
catching API drift between the library and the examples.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing __main__."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.replace(".py", ""), path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "sla_sweep.py",
            "accelerator_offload.py",
            "production_fleet.py",
            "cluster_fleet.py",
            "capacity_hints_sweep.py",
            "digital_twin.py",
            "fault_storm.py",
            "distributed_sweep.py",
        ],
    )
    def test_example_imports_cleanly(self, name):
        module = load_example(name)
        assert module.__doc__


class TestQuickstartFunctions:
    def test_run_inference(self, capsys):
        quickstart = load_example("quickstart.py")
        quickstart.run_inference()
        output = capsys.readouterr().out
        assert "click-through-rate" in output

    def test_inspect_performance(self, capsys):
        quickstart = load_example("quickstart.py")
        quickstart.inspect_performance()
        output = capsys.readouterr().out
        assert "embedding" in output
        assert "memory-bound" in output


class TestAcceleratorOffloadStudy:
    def test_study_runs_for_small_model(self, capsys):
        example = load_example("accelerator_offload.py")
        example.study("ncf", batch_size=128)
        output = capsys.readouterr().out
        assert "cpu-only" in output
        assert "qps-per-watt" in output


class TestClusterFleetExample:
    def test_compare_policies_reduced_load(self, capsys):
        example = load_example("cluster_fleet.py")
        example.compare_policies(rate_qps=2000.0, num_queries=400)
        output = capsys.readouterr().out
        assert "least-outstanding" in output
        assert "per-server share" in output

    def test_parallel_sweep_demo_reports_cache_hits(self, capsys):
        example = load_example("cluster_fleet.py")
        example.parallel_sweep_demo(batch_sizes=(256,), processes=1)
        output = capsys.readouterr().out
        assert "1/1 cache hits" in output


class TestDigitalTwinExample:
    def test_replay_shows_shadow_divergence(self, capsys):
        example = load_example("digital_twin.py")
        pipeline = example.replay()  # the demo's own sizing (~1 s)
        output = capsys.readouterr().out
        assert "shadow mode:" in output
        assert "DIVERGED" in output  # the under-provisioned what-if flagged
        assert "memo replays" in output
        assert pipeline.reports, "no windows closed during the replay"
        assert all(r.real.green for r in pipeline.reports)


class TestCapacityHintsSweepExample:
    def test_sweep_reports_tiers_and_matching_capacities(self, capsys):
        example = load_example("capacity_hints_sweep.py")
        example.run_sweep()
        output = capsys.readouterr().out
        assert "bracket hints" in output
        assert "hinted qps" in output


class TestFaultStormExample:
    def test_storm_replay_shows_failure_aware_winning(self, capsys):
        example = load_example("fault_storm.py")
        example.storm_replay()
        output = capsys.readouterr().out
        assert "Fault storm" in output
        assert "naive" in output
        assert "failure-aware" in output
        assert "blackholes" in output

    def test_determinism_demo_reports_bit_identical_replays(self, capsys):
        example = load_example("fault_storm.py")
        example.determinism_demo()
        output = capsys.readouterr().out
        assert "bit-identically" in output


class TestDistributedSweepExample:
    def test_fleet_survives_host_kill_bit_identically(self, capsys):
        example = load_example("distributed_sweep.py")
        assert example.run_demo(num_queries=30, iterations=3) == 0
        output = capsys.readouterr().out
        assert "SIGKILL worker" in output
        assert "bit-identical to the serial sweep" in output
