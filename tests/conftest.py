"""Shared fixtures for the test suite."""

import pytest

from repro.execution.engine import EnginePair, build_cpu_engine, build_engine_pair
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import FixedQuerySizes


@pytest.fixture(scope="session")
def rmc1_engines() -> EnginePair:
    """CPU+GPU engine pair for DLRM-RMC1 on Skylake (analytic only)."""
    return build_engine_pair("dlrm-rmc1", "skylake", "gtx1080ti")


@pytest.fixture(scope="session")
def rmc1_cpu_only() -> EnginePair:
    """CPU-only engine pair for DLRM-RMC1 on Skylake."""
    return build_engine_pair("dlrm-rmc1", "skylake", None)


@pytest.fixture(scope="session")
def ncf_engine():
    """CPU engine for NCF on Broadwell (cheap, MLP-dominated)."""
    return build_cpu_engine("ncf", "broadwell")


@pytest.fixture()
def small_load_generator() -> LoadGenerator:
    """Deterministic load generator with the production size distribution."""
    return LoadGenerator(seed=123)


@pytest.fixture()
def fixed_size_generator() -> LoadGenerator:
    """Load generator producing fixed-size (64-item) queries."""
    return LoadGenerator(sizes=FixedQuerySizes(64), seed=123)
