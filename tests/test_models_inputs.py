"""Tests for synthetic input generation."""

import numpy as np
import pytest

from repro.models.inputs import RecommendationBatch, generate_batch, query_input_bytes
from repro.models.zoo import get_config


class TestRecommendationBatch:
    def test_batch_size_and_table_count(self):
        batch = RecommendationBatch(
            dense=np.zeros((4, 8)),
            sparse=[np.zeros((4, 2), dtype=int), np.zeros((4, 3), dtype=int)],
        )
        assert batch.batch_size == 4
        assert batch.num_tables == 2

    def test_mismatched_sparse_batch_raises(self):
        with pytest.raises(ValueError):
            RecommendationBatch(
                dense=np.zeros((4, 8)), sparse=[np.zeros((3, 2), dtype=int)]
            )

    def test_one_dimensional_dense_raises(self):
        with pytest.raises(ValueError):
            RecommendationBatch(dense=np.zeros(4), sparse=[])

    def test_input_bytes(self):
        batch = RecommendationBatch(
            dense=np.zeros((2, 8)), sparse=[np.zeros((2, 3), dtype=int)]
        )
        assert batch.input_bytes() == 2 * 8 * 4 + 2 * 3 * 8

    def test_slice(self):
        batch = RecommendationBatch(
            dense=np.arange(20).reshape(4, 5).astype(float),
            sparse=[np.arange(8).reshape(4, 2)],
        )
        sliced = batch.slice(1, 3)
        assert sliced.batch_size == 2
        assert np.allclose(sliced.dense, batch.dense[1:3])
        assert np.array_equal(sliced.sparse[0], batch.sparse[0][1:3])

    def test_invalid_slice_raises(self):
        batch = RecommendationBatch(dense=np.zeros((4, 2)), sparse=[])
        with pytest.raises(ValueError):
            batch.slice(2, 2)
        with pytest.raises(ValueError):
            batch.slice(0, 5)


class TestGenerateBatch:
    def test_shapes_match_config(self):
        config = get_config("dlrm-rmc1")
        batch = generate_batch(config, 16, rng=0)
        assert batch.dense.shape == (16, config.dense_input_dim)
        assert batch.num_tables == config.embedding.num_tables
        for indices in batch.sparse:
            assert indices.shape == (16, config.embedding.lookups_per_table)

    def test_no_dense_features_for_ncf(self):
        config = get_config("ncf")
        batch = generate_batch(config, 8, rng=0)
        assert batch.dense.shape == (8, 0)

    def test_indices_within_table_bounds(self):
        config = get_config("din")
        batch = generate_batch(config, 8, rng=0)
        for indices in batch.sparse:
            assert indices.min() >= 0
            assert indices.max() < config.embedding.rows_per_table

    def test_reproducible_with_seed(self):
        config = get_config("ncf")
        a = generate_batch(config, 8, rng=3)
        b = generate_batch(config, 8, rng=3)
        assert np.array_equal(a.sparse[0], b.sparse[0])

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            generate_batch(get_config("ncf"), 0)

    def test_popularity_skew(self):
        # Hot items should be far more common than cold ones.
        config = get_config("dlrm-rmc1")
        batch = generate_batch(config, 256, rng=0)
        indices = np.concatenate([s.ravel() for s in batch.sparse])
        median_index = np.median(indices)
        assert median_index < config.embedding.rows_per_table * 0.05


class TestQueryInputBytes:
    def test_formula(self):
        config = get_config("dlrm-rmc1")
        expected_per_item = (
            config.dense_input_dim * 4
            + config.embedding.num_tables * config.embedding.lookups_per_table * 8
        )
        assert query_input_bytes(config, 10) == pytest.approx(10 * expected_per_item)

    def test_scales_linearly(self):
        config = get_config("wnd")
        assert query_input_bytes(config, 20) == pytest.approx(
            2 * query_input_bytes(config, 10)
        )

    def test_matches_materialised_batch(self):
        config = get_config("ncf")
        batch = generate_batch(config, 32, rng=0)
        assert batch.input_bytes() == pytest.approx(query_input_bytes(config, 32))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            query_input_bytes(get_config("ncf"), 0)
