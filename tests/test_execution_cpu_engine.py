"""Tests for the CPU latency engine."""

import pytest

from repro.execution.cpu_engine import CPUEngine
from repro.execution.engine import build_cpu_engine
from repro.models.ops import OperatorCategory
from repro.models.zoo import MODEL_NAMES


class TestRequestLatency:
    def test_latency_positive_and_finite(self):
        engine = build_cpu_engine("dlrm-rmc1", "skylake")
        latency = engine.request_latency(64)
        assert latency.total_s > 0
        assert latency.total_s == pytest.approx(
            latency.compute_s + latency.memory_s + latency.overhead_s
        )

    def test_latency_monotonic_in_batch_size(self):
        engine = build_cpu_engine("wnd", "skylake")
        latencies = [engine.request_latency_s(b) for b in (1, 8, 64, 256, 1024)]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_throughput_improves_with_batch_size(self):
        # The efficiency story behind DeepRecSched: items/s per core grows
        # with the batch size.
        engine = build_cpu_engine("dlrm-rmc1", "skylake")
        assert engine.throughput_items_per_s(256) > engine.throughput_items_per_s(8)

    def test_latency_grows_with_active_cores(self):
        engine = build_cpu_engine("dlrm-rmc1", "broadwell")
        assert engine.request_latency_s(64, active_cores=28) > engine.request_latency_s(
            64, active_cores=1
        )

    def test_active_cores_clamped_to_platform(self):
        engine = build_cpu_engine("dlrm-rmc1", "skylake")
        assert engine.request_latency_s(64, 40) == engine.request_latency_s(64, 400)

    def test_results_cached(self):
        engine = build_cpu_engine("ncf", "skylake")
        first = engine.request_latency(32, 4)
        second = engine.request_latency(32, 4)
        assert first is second

    def test_invalid_arguments(self):
        engine = build_cpu_engine("ncf", "skylake")
        with pytest.raises(ValueError):
            engine.request_latency(0)
        with pytest.raises(ValueError):
            engine.request_latency(8, 0)

    def test_negative_overheads_rejected(self):
        with pytest.raises(ValueError):
            CPUEngine(
                build_cpu_engine("ncf", "skylake").model,
                build_cpu_engine("ncf", "skylake").platform,
                per_request_overhead_s=-1.0,
            )


class TestModelContrasts:
    def test_embedding_model_memory_bound(self):
        engine = build_cpu_engine("dlrm-rmc1", "broadwell")
        latency = engine.request_latency(64)
        assert latency.memory_s > latency.compute_s

    def test_mlp_model_compute_bound(self):
        engine = build_cpu_engine("dlrm-rmc3", "skylake")
        latency = engine.request_latency(64)
        assert latency.compute_s > latency.memory_s

    def test_mtwnd_slower_than_wnd(self):
        wnd = build_cpu_engine("wnd", "skylake").request_latency_s(64)
        mt = build_cpu_engine("mt-wnd", "skylake").request_latency_s(64)
        assert mt > 2 * wnd

    def test_rmc2_slower_than_rmc1(self):
        # RMC2 has 4x the embedding tables of RMC1.
        rmc1 = build_cpu_engine("dlrm-rmc1", "skylake").request_latency_s(64)
        rmc2 = build_cpu_engine("dlrm-rmc2", "skylake").request_latency_s(64)
        assert rmc2 > 2 * rmc1

    def test_llc_residency_differs_across_platforms_for_rmc3(self):
        # DLRM-RMC3's dense weights fit Skylake's larger LLC but not
        # Broadwell's: the mechanism behind the Fig. 12(c) difference.
        assert build_cpu_engine("dlrm-rmc3", "skylake").weights_llc_resident
        assert not build_cpu_engine("dlrm-rmc3", "broadwell").weights_llc_resident

    def test_small_models_resident_everywhere(self):
        assert build_cpu_engine("dlrm-rmc1", "broadwell").weights_llc_resident
        assert build_cpu_engine("ncf", "broadwell").weights_llc_resident


class TestOperatorBreakdown:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_breakdown_sums_to_request_latency_components(self, name):
        engine = build_cpu_engine(name, "broadwell")
        breakdown = engine.operator_breakdown(64)
        total = sum(breakdown.values())
        latency = engine.request_latency(64)
        # The breakdown excludes the per-request overhead.
        assert total == pytest.approx(latency.total_s - 120e-6, rel=1e-6)

    def test_breakdown_positive_entries(self):
        breakdown = build_cpu_engine("din", "broadwell").operator_breakdown(64)
        assert all(value > 0 for value in breakdown.values())

    def test_embedding_dominates_for_rmc2(self):
        breakdown = build_cpu_engine("dlrm-rmc2", "broadwell").operator_breakdown(64)
        total = sum(breakdown.values())
        assert breakdown[OperatorCategory.EMBEDDING] / total > 0.5

    def test_fc_dominates_for_wnd(self):
        breakdown = build_cpu_engine("wnd", "broadwell").operator_breakdown(64)
        total = sum(breakdown.values())
        assert breakdown[OperatorCategory.FC] / total > 0.5
