"""Tier-1 wiring for the documented runnable examples (doctests).

The runtime and service modules carry ``>>>`` examples in their module
docstrings — the documentation layer's executable half.  This test runs the
same selection CI's docs-check step runs with ``pytest --doctest-modules``,
so the examples are part of the ordinary test suite and cannot rot: an API
change that breaks a documented example fails tier-1, not just the docs job.
"""

import doctest

import pytest

import repro.faults.plan
import repro.runtime.capacity
import repro.runtime.pool
import repro.service.checkpoint
import repro.service.ingest
import repro.service.shadow
import repro.service.twin
import repro.service.windows

#: The documented-module selection.  Every module here must carry at least
#: one runnable example; keep in sync with the docs-check CI step.
DOCUMENTED_MODULES = [
    repro.runtime.pool,
    repro.runtime.capacity,
    repro.faults.plan,
    repro.service.windows,
    repro.service.twin,
    repro.service.shadow,
    repro.service.ingest,
    repro.service.checkpoint,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda module: module.__name__
)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its runnable examples"
    assert results.failed == 0
