"""Tests for the fleet-scale cluster simulator, fleet tuning, and the sweep runner."""

import pytest

from repro.core.hill_climber import coordinate_descent
from repro.core.offload_tuner import FleetKnobTuner
from repro.execution.engine import build_engine_pair
from repro.experiments.runner import SweepRunner, canonicalize, config_hash
from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.serving.cluster import (
    ClusterServer,
    ClusterSimulator,
    LeastOutstandingBalancer,
    PowerOfTwoBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    WeightedLeastOutstandingBalancer,
    available_balancers,
    estimate_fleet_upper_bound_qps,
    find_cluster_max_qps,
    get_balancer,
    heterogeneous_fleet,
    homogeneous_fleet,
)
from repro.serving.simulator import ServingConfig, ServingSimulator
from repro.serving.sla import SLATier, sla_target

ALL_POLICIES = (
    "random",
    "round-robin",
    "least-outstanding",
    "weighted-least-outstanding",
    "power-of-two",
    "failure-aware",
)


@pytest.fixture(scope="module")
def engines():
    return build_engine_pair("dlrm-rmc1", "skylake", None)


@pytest.fixture(scope="module")
def config():
    return ServingConfig(batch_size=256, num_cores=8)


@pytest.fixture(scope="module")
def query_stream():
    return LoadGenerator(seed=11).with_rate(900.0).generate(800)


class TestBalancerRegistry:
    def test_five_policies_registered(self):
        assert available_balancers() == sorted(ALL_POLICIES)

    def test_get_balancer_by_name(self):
        assert isinstance(get_balancer("random"), RandomBalancer)
        assert isinstance(get_balancer("round-robin"), RoundRobinBalancer)
        assert isinstance(get_balancer("least-outstanding"), LeastOutstandingBalancer)
        assert isinstance(
            get_balancer("weighted-least-outstanding"),
            WeightedLeastOutstandingBalancer,
        )
        assert isinstance(get_balancer("POWER-OF-TWO"), PowerOfTwoBalancer)

    def test_get_balancer_passthrough_instance(self):
        balancer = LeastOutstandingBalancer()
        assert get_balancer(balancer) is balancer

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError, match="unknown balancing policy"):
            get_balancer("random-drop")


class TestClusterPolicies:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_policy_serves_whole_stream(self, engines, config, query_stream, policy):
        fleet = homogeneous_fleet(engines, config, 4)
        result = ClusterSimulator(fleet, policy).run(query_stream)
        assert result.policy == policy
        assert result.num_servers == 4
        assert result.num_queries == len(query_stream)
        assert sum(s.num_queries for s in result.per_server) == len(query_stream)
        assert sum(s.num_items for s in result.per_server) == sum(
            q.size for q in query_stream
        )
        assert 0.0 < result.p50_latency_s <= result.p95_latency_s <= result.p99_latency_s
        assert 0.0 < result.fleet_cpu_utilization <= 1.0
        assert all(s.num_queries > 0 for s in result.per_server)

    def test_round_robin_is_exactly_balanced(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 4)
        result = ClusterSimulator(fleet, "round-robin").run(query_stream)
        counts = [s.num_queries for s in result.per_server]
        assert max(counts) - min(counts) <= 1

    def test_least_outstanding_drains_to_faster_servers(self, engines):
        # One server has a quarter of the cores.  Near saturation, queues form
        # on it first, so load-aware balancing routes it a below-proportional
        # share of the stream; round-robin keeps feeding it regardless.
        slow = ClusterServer(engines, ServingConfig(batch_size=256, num_cores=2), "slow")
        fast = [
            ClusterServer(engines, ServingConfig(batch_size=256, num_cores=8), f"fast-{i}")
            for i in range(3)
        ]
        loaded = LoadGenerator(seed=11).with_rate(6000.0).generate(2000)
        least = ClusterSimulator([slow] + fast, "least-outstanding").run(loaded)
        rr = ClusterSimulator([slow] + fast, "round-robin").run(loaded)
        assert least.per_server[0].query_share < rr.per_server[0].query_share
        assert least.p95_latency_s < rr.p95_latency_s

    def test_power_of_two_is_seed_reproducible(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 4)
        first = ClusterSimulator(fleet, "power-of-two", balancer_seed=3).run(query_stream)
        second = ClusterSimulator(fleet, "power-of-two", balancer_seed=3).run(query_stream)
        assert [s.num_queries for s in first.per_server] == [
            s.num_queries for s in second.per_server
        ]
        assert first.p95_latency_s == second.p95_latency_s


class TestWeightedLeastOutstanding:
    def test_beats_unweighted_on_speed_spread_fleet(self):
        # On a fleet with a wide per-node speed spread, weighting each node's
        # outstanding items by its service-time multiplier routes less work
        # to slow nodes; near saturation that directly shows up in the tail.
        fleet = heterogeneous_fleet(
            "dlrm-rmc1", ServingConfig(batch_size=128, num_cores=8), 4,
            platform_mix={"skylake": 1.0}, speed_spread=0.3, rng=7,
        )
        stream = LoadGenerator(seed=11).with_rate(3600.0).generate(2000)
        weighted = ClusterSimulator(fleet, "weighted-least-outstanding").run(stream)
        unweighted = ClusterSimulator(fleet, "least-outstanding").run(stream)
        assert weighted.p95_latency_s < unweighted.p95_latency_s
        assert weighted.mean_latency_s < unweighted.mean_latency_s
        # The slowest node absorbs a smaller share under the weighted policy.
        slowest = max(
            range(len(fleet)), key=lambda i: fleet[i].engines.cpu.speed_factor
        )
        assert (
            weighted.per_server[slowest].query_share
            < unweighted.per_server[slowest].query_share
        )

    def test_reset_without_prepare_drops_stale_weights(self):
        # A prepared instance reused without a fresh prepare() (bare
        # kernels, or pointed at a different same-size fleet) must fall back
        # to all-1.0 weights, not silently apply the old fleet's speed
        # factors.
        class StubKernel:
            def __init__(self, outstanding):
                self.outstanding_items = outstanding

        class StubEngine:
            def __init__(self, speed_factor):
                self.speed_factor = speed_factor

        balancer = WeightedLeastOutstandingBalancer()
        fleet = [
            ClusterServer(
                engines=type("P", (), {"cpu": StubEngine(factor)})(),
                config=ServingConfig(batch_size=64),
            )
            for factor in (2.0, 1.0)
        ]
        balancer.prepare(fleet)
        balancer.reset(2)
        # Prepared run: node 0 is twice as slow, so equal outstanding items
        # route to node 1.
        assert balancer.choose(None, [StubKernel(10), StubKernel(10)]) == 1
        # Reused without prepare(): stale weights are dropped; ties break to
        # the lowest index exactly like least-outstanding.
        balancer.reset(2)
        assert balancer.choose(None, [StubKernel(10), StubKernel(10)]) == 0

    def test_degenerates_to_least_outstanding_on_homogeneous_fleet(
        self, engines, config, query_stream
    ):
        # Unscaled engines weigh 1.0 per node, so the weighted policy's
        # decisions — and hence the whole run — match least-outstanding
        # exactly.
        fleet = homogeneous_fleet(engines, config, 4)
        weighted = ClusterSimulator(fleet, "weighted-least-outstanding").run(
            query_stream
        )
        plain = ClusterSimulator(fleet, "least-outstanding").run(query_stream)
        assert [s.num_queries for s in weighted.per_server] == [
            s.num_queries for s in plain.per_server
        ]
        assert weighted.p95_latency_s == plain.p95_latency_s
        assert weighted.latencies_s == plain.latencies_s


class TestRandomBalancer:
    def test_seed_reproducible(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 4)
        first = ClusterSimulator(fleet, "random", balancer_seed=9).run(query_stream)
        second = ClusterSimulator(fleet, "random", balancer_seed=9).run(query_stream)
        assert [s.num_queries for s in first.per_server] == [
            s.num_queries for s in second.per_server
        ]
        assert first.p95_latency_s == second.p95_latency_s

    def test_different_seeds_route_differently(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 4)
        first = ClusterSimulator(fleet, "random", balancer_seed=1).run(query_stream)
        second = ClusterSimulator(fleet, "random", balancer_seed=2).run(query_stream)
        assert [s.num_queries for s in first.per_server] != [
            s.num_queries for s in second.per_server
        ]

    def test_roughly_uniform_shares(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 4)
        result = ClusterSimulator(fleet, "random").run(query_stream)
        for summary in result.per_server:
            assert summary.query_share == pytest.approx(0.25, abs=0.08)

    def test_max_query_share_empty_returns_zero(self, engines, config, query_stream):
        # Regression: max() over an empty per_server list used to raise.
        result = ClusterSimulator(homogeneous_fleet(engines, config, 1), "random").run(
            query_stream
        )
        result.per_server = []
        assert result.max_query_share() == 0.0


class TestPerServerLatencies:
    def test_collection_is_opt_in(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 2)
        plain = ClusterSimulator(fleet, "round-robin").run(query_stream)
        assert plain.per_server_latencies is None
        collected = ClusterSimulator(
            fleet, "round-robin", collect_per_server_latencies=True
        ).run(query_stream)
        assert collected.per_server_latencies is not None
        assert len(collected.per_server_latencies) == 2
        # Per-server slices partition the pooled measured latencies exactly.
        pooled = sorted(
            latency
            for slice_ in collected.per_server_latencies
            for latency in slice_
        )
        assert pooled == sorted(collected.latencies_s)
        assert collected.p95_latency_s == plain.p95_latency_s


class TestHeterogeneousFleetConstructor:
    def test_reproducible_from_seed(self):
        config = ServingConfig(batch_size=128, num_cores=8)
        first = heterogeneous_fleet("dlrm-rmc1", config, 6, rng=3)
        second = heterogeneous_fleet("dlrm-rmc1", config, 6, rng=3)
        assert [s.name for s in first] == [s.name for s in second]
        assert [s.engines.cpu.speed_factor for s in first] == [
            s.engines.cpu.speed_factor for s in second
        ]

    def test_platform_mix_and_speed_spread_respected(self):
        config = ServingConfig(batch_size=128, num_cores=8)
        fleet = heterogeneous_fleet(
            "dlrm-rmc1", config, 12, platform_mix={"skylake": 1.0}, speed_spread=0.1,
            rng=5,
        )
        assert all(s.engines.cpu.platform.name == "skylake" for s in fleet)
        factors = [s.engines.cpu.speed_factor for s in fleet]
        assert all(0.9 <= f <= 1.1 for f in factors)
        assert len(set(factors)) > 1

    def test_base_engine_shared_per_platform(self):
        config = ServingConfig(batch_size=128, num_cores=8)
        fleet = heterogeneous_fleet(
            "ncf", config, 8, platform_mix={"skylake": 0.5, "broadwell": 0.5}, rng=2
        )
        bases = {s.engines.cpu.platform.name: set() for s in fleet}
        for server in fleet:
            bases[server.engines.cpu.platform.name].add(id(server.engines.cpu.base_engine))
        assert all(len(ids) == 1 for ids in bases.values())

    def test_fleet_runs_on_fast_path(self, query_stream):
        config = ServingConfig(batch_size=128, num_cores=8)
        fleet = heterogeneous_fleet("dlrm-rmc1", config, 4, rng=7)
        result = ClusterSimulator(fleet, "least-outstanding").run(query_stream)
        assert result.num_queries == len(query_stream)
        assert all(
            s.engines.cpu.latency_table.scalar_fallbacks == 0 for s in fleet
        )

    def test_invalid_parameters(self):
        config = ServingConfig(batch_size=128)
        with pytest.raises(ValueError):
            heterogeneous_fleet("dlrm-rmc1", config, 0)
        with pytest.raises(ValueError):
            heterogeneous_fleet("dlrm-rmc1", config, 2, speed_spread=0.9)
        with pytest.raises(ValueError):
            heterogeneous_fleet("dlrm-rmc1", config, 2, platform_mix={"skylake": 0.0})


class TestHeterogeneousFleet:
    def test_mixed_cpu_gpu_fleet_offloads_large_queries(self, rmc1_engines, engines):
        gpu_config = ServingConfig(batch_size=256, num_cores=8, offload_threshold=256)
        cpu_config = ServingConfig(batch_size=256, num_cores=8)
        fleet = [
            ClusterServer(rmc1_engines, gpu_config, "gpu-0"),
            ClusterServer(engines, cpu_config, "cpu-0"),
        ]
        queries = LoadGenerator(seed=23).with_rate(600.0).generate(600)
        result = ClusterSimulator(fleet, "least-outstanding").run(queries)
        gpu_summary = result.per_server[0]
        cpu_summary = result.per_server[1]
        assert gpu_summary.gpu_work_fraction > 0.0
        assert gpu_summary.gpu_utilization > 0.0
        assert cpu_summary.gpu_work_fraction == 0.0
        assert result.num_queries == len(queries)

    def test_mixed_platform_fleet_runs(self, engines, query_stream):
        broadwell = build_engine_pair("dlrm-rmc1", "broadwell", None)
        fleet = [
            ClusterServer(engines, ServingConfig(batch_size=256, num_cores=8), "sky"),
            ClusterServer(broadwell, ServingConfig(batch_size=128, num_cores=8), "bdw"),
        ]
        result = ClusterSimulator(fleet, "power-of-two").run(query_stream)
        assert result.num_servers == 2
        assert all(s.num_queries > 0 for s in result.per_server)

    def test_invalid_fleet_rejected(self, engines):
        with pytest.raises(ValueError, match="at least one server"):
            ClusterSimulator([], "round-robin")
        bad = ClusterServer(engines, ServingConfig(batch_size=64, offload_threshold=32))
        with pytest.raises(ValueError, match="no accelerator"):
            ClusterSimulator([bad], "round-robin")


class TestSingleServerEquivalence:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_cluster_of_one_matches_serving_simulator(
        self, engines, config, query_stream, policy
    ):
        single = ServingSimulator(engines, config).run(query_stream)
        cluster = ClusterSimulator(homogeneous_fleet(engines, config, 1), policy).run(
            query_stream
        )
        assert cluster.p50_latency_s == single.p50_latency_s
        assert cluster.p95_latency_s == single.p95_latency_s
        assert cluster.p99_latency_s == single.p99_latency_s
        assert cluster.mean_latency_s == single.mean_latency_s
        assert cluster.achieved_qps == single.achieved_qps
        assert cluster.offered_qps == single.offered_qps
        assert cluster.duration_s == single.duration_s
        assert cluster.drain_s == single.drain_s
        assert cluster.measured_queries == single.measured_queries
        assert cluster.per_server[0].cpu_utilization == single.cpu_utilization
        assert cluster.latencies_s == single.latencies_s


class TestFleetCapacity:
    def test_upper_bound_scales_with_fleet(self, engines, config):
        generator = LoadGenerator(seed=7)
        one = estimate_fleet_upper_bound_qps(homogeneous_fleet(engines, config, 1), generator)
        four = estimate_fleet_upper_bound_qps(homogeneous_fleet(engines, config, 4), generator)
        assert four == pytest.approx(4 * one)

    def test_fleet_capacity_grows_with_servers(self, engines, config):
        target = sla_target("dlrm-rmc1", SLATier.MEDIUM)
        generator = LoadGenerator(seed=7)
        outcomes = {
            n: find_cluster_max_qps(
                homogeneous_fleet(engines, config, n),
                "least-outstanding",
                target.latency_s,
                generator,
                num_queries=150,
                iterations=3,
                max_queries=1500,
            )
            for n in (1, 2)
        }
        assert outcomes[1].feasible and outcomes[2].feasible
        assert outcomes[2].max_qps > 1.5 * outcomes[1].max_qps
        assert outcomes[2].result.acceptable(target.latency_s)


class TestParallelCapacitySearch:
    SEARCH_KWARGS = dict(num_queries=100, iterations=3, max_queries=1000)

    def test_parallel_search_returns_same_qps_as_serial(self, engines, config):
        target = sla_target("dlrm-rmc1", SLATier.MEDIUM)
        generator = LoadGenerator(seed=7)
        fleet = homogeneous_fleet(engines, config, 2)
        serial = find_cluster_max_qps(
            fleet, "least-outstanding", target.latency_s, generator,
            **self.SEARCH_KWARGS,
        )
        parallel = find_cluster_max_qps(
            fleet, "least-outstanding", target.latency_s, generator, jobs=2,
            **self.SEARCH_KWARGS,
        )
        # Speculative parallel bisection walks the identical decision tree,
        # so the outcome matches the serial search exactly — not approximately.
        assert parallel.max_qps == serial.max_qps
        assert parallel.result.p95_latency_s == serial.result.p95_latency_s
        assert parallel.result.measured_queries == serial.result.measured_queries

    def test_invalid_jobs_rejected(self, engines, config):
        with pytest.raises(ValueError, match="jobs"):
            find_cluster_max_qps(
                homogeneous_fleet(engines, config, 1),
                "round-robin",
                0.1,
                LoadGenerator(seed=7),
                jobs=0,
                **self.SEARCH_KWARGS,
            )

    def test_warm_start_cache_replays_bit_identically(self, engines, config, tmp_path):
        target = sla_target("dlrm-rmc1", SLATier.MEDIUM)
        generator = LoadGenerator(seed=7)
        fleet = homogeneous_fleet(engines, config, 2)
        serial = find_cluster_max_qps(
            fleet, "least-outstanding", target.latency_s, generator,
            **self.SEARCH_KWARGS,
        )
        cold = find_cluster_max_qps(
            fleet, "least-outstanding", target.latency_s, generator,
            warm_start_cache=tmp_path, **self.SEARCH_KWARGS,
        )
        entries = list(tmp_path.glob("capacity-*.json"))
        assert len(entries) == 1
        warm = find_cluster_max_qps(
            fleet, "least-outstanding", target.latency_s, generator,
            warm_start_cache=tmp_path, **self.SEARCH_KWARGS,
        )
        # The schema-versioned signature pins every decision input, so the
        # warm replay is exactly the cold serial search's outcome — not an
        # approximation.
        assert warm.max_qps == cold.max_qps == serial.max_qps
        assert warm.result.p95_latency_s == serial.result.p95_latency_s
        assert warm.result.measured_queries == serial.result.measured_queries
        assert warm.result.acceptable(target.latency_s)

    def test_warm_start_signature_distinguishes_workload_params(
        self, engines, config
    ):
        from repro.queries.size_dist import ProductionQuerySizes
        from repro.runtime.capacity import CapacitySearch

        fleet = homogeneous_fleet(engines, config, 2)

        def signature(sizes):
            return CapacitySearch.for_fleet(
                fleet, "round-robin", 0.1, LoadGenerator(seed=7, sizes=sizes),
                num_queries=100, iterations=3, max_queries=1000,
            ).signature()

        heavy = signature(ProductionQuerySizes(body_median=95.0))
        light = signature(ProductionQuerySizes(body_median=5.0))
        assert heavy is not None and light is not None
        # Same distribution class, different parameters -> different cache
        # entries; a collision would replay the wrong workload's capacity.
        assert heavy != light
        assert signature(ProductionQuerySizes(body_median=95.0)) == heavy

    def test_warm_start_ignores_foreign_entries(self, engines, config, tmp_path):
        (tmp_path / "capacity-bogus.json").write_text("{not json")
        outcome = find_cluster_max_qps(
            homogeneous_fleet(engines, config, 1),
            "round-robin",
            sla_target("dlrm-rmc1", SLATier.MEDIUM).latency_s,
            LoadGenerator(seed=7),
            warm_start_cache=tmp_path,
            **self.SEARCH_KWARGS,
        )
        assert outcome.feasible


class TestCoordinateDescent:
    def test_finds_separable_optimum(self):
        def objective(knobs):
            return -((knobs["x"] - 3) ** 2) - ((knobs["y"] - 20) ** 2)

        outcome = coordinate_descent(
            {"x": [1, 2, 3, 4, 5], "y": [10, 20, 30]}, objective, patience=2
        )
        assert outcome.best_knobs == {"x": 3, "y": 20}
        assert outcome.best_value == 0
        # Memoisation: no assignment is evaluated twice.
        seen = [tuple(sorted(k.items())) for k, _ in outcome.evaluations]
        assert len(seen) == len(set(seen))

    def test_rejects_empty_knobs(self):
        with pytest.raises(ValueError):
            coordinate_descent({}, lambda knobs: 0.0)
        with pytest.raises(ValueError):
            coordinate_descent({"x": []}, lambda knobs: 0.0)


class TestFleetKnobTuner:
    def test_tunes_batch_and_policy(self, engines):
        tuner = FleetKnobTuner(
            [engines, engines],
            LoadGenerator(seed=7),
            num_cores=8,
            num_queries=100,
            capacity_iterations=2,
            batch_candidates=[64, 256],
            policies=["round-robin", "least-outstanding"],
            sweeps=1,
        )
        target = sla_target("dlrm-rmc1", SLATier.MEDIUM)
        outcome = tuner.tune(target.latency_s)
        assert outcome.best_batch_size in (64, 256)
        assert outcome.best_policy in ("round-robin", "least-outstanding")
        assert outcome.best_threshold is None
        assert outcome.best_qps > 0
        assert outcome.num_evaluations >= 2

    def test_threshold_candidates_require_accelerator(self, engines):
        with pytest.raises(ValueError, match="no server has an accelerator"):
            FleetKnobTuner(
                [engines], LoadGenerator(seed=7), threshold_candidates=[128]
            )

    def test_accelerator_fleet_tunes_threshold_by_default(self, rmc1_engines):
        tuner = FleetKnobTuner(
            [rmc1_engines, rmc1_engines],
            LoadGenerator(seed=7),
            num_cores=8,
            num_queries=80,
            capacity_iterations=2,
            batch_candidates=[256],
            policies=["round-robin"],
            sweeps=1,
        )
        target = sla_target("dlrm-rmc1", SLATier.MEDIUM)
        outcome = tuner.tune(target.latency_s)
        # With an accelerator attached, the offload threshold is a tuned knob
        # even when no explicit candidates are given.
        assert outcome.best_threshold is not None
        assert outcome.best_qps > 0
        assert any("offload_threshold" in knobs for knobs, _ in outcome.evaluations)


class TestSweepRunnerCache:
    POINTS = [{"models": ("dlrm-rmc1",)}, {"models": ("ncf",)}]

    def test_cache_hits_on_rerun(self, tmp_path):
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        cold = runner.run("table-1", self.POINTS)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        warm = runner.run("table-1", self.POINTS)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert [r.rows for r in warm.results] == [r.rows for r in cold.results]
        assert [r.experiment_id for r in warm.results] == ["table-1", "table-1"]

    def test_partial_cache_reuse(self, tmp_path):
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        runner.run("table-1", self.POINTS[:1])
        mixed = runner.run("table-1", self.POINTS)
        assert (mixed.cache_hits, mixed.cache_misses) == (1, 1)

    def test_parallel_workers_match_serial_results(self, tmp_path):
        serial = SweepRunner(processes=1).run("table-1", self.POINTS)
        parallel = SweepRunner(processes=2, cache_dir=tmp_path).run(
            "table-1", self.POINTS
        )
        assert [r.rows for r in parallel.results] == [r.rows for r in serial.results]
        assert parallel.processes == 2

    def test_without_cache_dir_everything_recomputes(self):
        runner = SweepRunner(processes=1)
        assert runner.run("table-1", self.POINTS[:1]).cache_misses == 1
        assert runner.run("table-1", self.POINTS[:1]).cache_misses == 1

    def test_duplicate_points_computed_once_per_run(self, tmp_path):
        runner = SweepRunner(processes=1, cache_dir=tmp_path)
        outcome = runner.run("table-1", [self.POINTS[0]] * 3)
        assert (outcome.cache_hits, outcome.cache_misses) == (2, 1)
        assert len(outcome.results) == 3
        assert outcome.results[0].rows == outcome.results[2].rows

    def test_uncacheable_kwargs_allowed_without_cache_dir(self):
        # Hashing only happens when a cache directory is configured, so
        # kwargs that cannot be canonicalised (here: a set) still sweep.
        point = {"models": {"ncf"}}
        outcome = SweepRunner(processes=1).run("table-1", [point])
        assert outcome.results[0].experiment_id == "table-1"
        with pytest.raises(TypeError, match="cannot canonicalise"):
            config_hash("table-1", point)

    def test_config_hash_is_stable_and_order_insensitive(self):
        first = config_hash("figure-9", {"a": 1, "b": (1, 2)})
        second = config_hash("FIGURE-9", {"b": [1, 2], "a": 1})
        assert first == second
        assert config_hash("figure-9", {"a": 2}) != first

    def test_config_hash_ignores_worker_budget(self):
        # `jobs` cannot change results, so it must not splinter the cache.
        assert config_hash("figure-15", {"jobs": 8, "seed": 5}) == config_hash(
            "figure-15", {"seed": 5}
        )

    def test_config_hash_ignores_capacity_cache_dir(self):
        # Warm starts replay bit-identical results, so the warm-start
        # directory is result-neutral and must not splinter the memo either.
        assert config_hash(
            "figure-15", {"capacity_cache_dir": "/tmp/a", "seed": 5}
        ) == config_hash("figure-15", {"seed": 5})

    def test_canonicalize_handles_enums_and_rejects_objects(self):
        assert canonicalize({"tier": SLATier.LOW}) == {"tier": "low"}
        with pytest.raises(TypeError, match="cannot canonicalise"):
            canonicalize(object())

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            SweepRunner(processes=1).run("table-1", [])


class TestRunStream:
    """run_stream: the constant-memory companion to run()."""

    def test_bit_identical_to_batch_run(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 4)
        batch = ClusterSimulator(fleet, "least-outstanding").run(query_stream)
        streamed = ClusterSimulator(fleet, "least-outstanding").run_stream(
            iter(query_stream), len(query_stream)
        )
        assert streamed.latencies_s == batch.latencies_s
        assert streamed.p95_latency_s == batch.p95_latency_s
        assert streamed.p95_late_window_s == batch.p95_late_window_s
        assert streamed.drain_s == batch.drain_s
        assert streamed.per_server == batch.per_server

    def test_early_exits_match_batch_run(self, engines, config):
        sla = 0.1
        fleet = homogeneous_fleet(engines, config, 1)
        from repro.serving.simulator import CertainAcceptance, CertainRejection

        for rate in (200.0, 4000.0):
            queries = LoadGenerator(seed=5).with_rate(rate).generate(600)
            batch = ClusterSimulator(fleet, "least-outstanding").run(
                queries, reject_above_sla_s=sla, accept_within_sla_s=sla
            )
            streamed = ClusterSimulator(fleet, "least-outstanding").run_stream(
                iter(queries), len(queries),
                reject_above_sla_s=sla, accept_within_sla_s=sla,
            )
            assert type(streamed) is type(batch)
            if isinstance(batch, CertainAcceptance):
                assert streamed == batch
            elif isinstance(batch, CertainRejection):
                assert streamed == batch

    def test_chunked_diurnal_trace_streams_end_to_end(self, engines, config):
        from repro.queries.trace import count_diurnal_queries, iter_diurnal_trace

        fleet = homogeneous_fleet(engines, config, 2)
        total = count_diurnal_queries(120.0, 60.0, seed=9)
        result = ClusterSimulator(fleet, "least-outstanding").run_stream(
            iter_diurnal_trace(120.0, 60.0, seed=9), total
        )
        assert result.num_queries == total
        assert result.measured_queries == total - int(total * 0.1)

    def test_non_sequential_ids_rejected(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 2)
        shifted = [
            Query(q.query_id + 1, q.arrival_time, q.size) for q in query_stream
        ]
        with pytest.raises(ValueError, match="arrival index"):
            ClusterSimulator(fleet, "round-robin").run_stream(
                iter(shifted), len(shifted)
            )

    def test_unsorted_arrivals_rejected(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 2)
        swapped = list(query_stream)
        swapped[5] = Query(5, swapped[200].arrival_time, swapped[5].size)
        with pytest.raises(ValueError, match="pre-sorted"):
            ClusterSimulator(fleet, "round-robin").run_stream(
                iter(swapped), len(swapped)
            )

    def test_length_mismatch_rejected(self, engines, config, query_stream):
        fleet = homogeneous_fleet(engines, config, 2)
        with pytest.raises(ValueError, match="yielded"):
            ClusterSimulator(fleet, "round-robin").run_stream(
                iter(query_stream), len(query_stream) + 5
            )

    def test_empty_stream_rejected(self, engines, config):
        fleet = homogeneous_fleet(engines, config, 2)
        with pytest.raises(ValueError, match="empty"):
            ClusterSimulator(fleet, "round-robin").run_stream(iter([]), 1)


class TestSketchLatencyStats:
    """latency_stats='sketch': fixed-space statistics, same verdicts."""

    def test_p95_within_rank_error_of_exact(self, engines, config, query_stream):
        import numpy as np

        fleet = homogeneous_fleet(engines, config, 4)
        exact = ClusterSimulator(fleet, "least-outstanding").run(query_stream)
        sketched = ClusterSimulator(
            fleet, "least-outstanding", latency_stats="sketch"
        ).run(query_stream)
        # The documented contract: a sketch p95 is an exact percentile of
        # some rank within RANK_ERROR_BOUND of 95.
        low, high = np.percentile(exact.latencies_s, [94.0, 96.0])
        assert low <= sketched.p95_latency_s <= high
        assert sketched.mean_latency_s == pytest.approx(
            exact.mean_latency_s, rel=1e-9
        )
        assert sketched.measured_queries == exact.measured_queries
        assert sketched.latencies_s == []  # samples are not retained

    def test_stream_peak_memory_is_constant(self, engines, config):
        # The acceptance criterion for the sketch tier: streaming a trace
        # holds O(1) latency state, while the exact tier's buffer grows
        # linearly with the stream.
        import tracemalloc

        fleet = homogeneous_fleet(engines, config, 2)
        queries = LoadGenerator(seed=11).with_rate(900.0).generate(6000)

        def peak_bytes(latency_stats):
            simulator = ClusterSimulator(
                fleet, "least-outstanding", latency_stats=latency_stats
            )
            tracemalloc.start()
            simulator.run_stream(iter(queries), len(queries))
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        exact_peak = peak_bytes("exact")
        sketch_peak = peak_bytes("sketch")
        # 6000 retained floats vs a bounded compactor hierarchy: the
        # sketch run must not pay per-sample memory.
        assert sketch_peak < exact_peak

    def test_sketch_rejects_per_server_collection(self, engines, config):
        fleet = homogeneous_fleet(engines, config, 2)
        with pytest.raises(ValueError, match="exact mode"):
            ClusterSimulator(
                fleet,
                "round-robin",
                latency_stats="sketch",
                collect_per_server_latencies=True,
            )

    def test_sketch_rejects_fault_plans(self, engines, config):
        from repro.faults import CrashWindow, FaultPlan, NodeFaultSchedule

        fleet = homogeneous_fleet(engines, config, 2)
        plan = FaultPlan(
            nodes={0: NodeFaultSchedule(crashes=(CrashWindow(0.1, 0.4),))}
        )
        with pytest.raises(ValueError, match="fault"):
            ClusterSimulator(
                fleet, "round-robin", latency_stats="sketch", fault_plan=plan
            )

    def test_invalid_mode_rejected(self, engines, config):
        fleet = homogeneous_fleet(engines, config, 2)
        with pytest.raises(ValueError, match="latency_stats"):
            ClusterSimulator(fleet, "round-robin", latency_stats="histogram")
