"""Benchmarks regenerating the characterisation figures (Fig. 1 and Fig. 3-7)."""


def test_bench_fig1_roofline(run_and_report):
    """Fig. 1: recommendation models sit in the memory-bound roofline region."""
    result = run_and_report("figure-1")
    assert result.metadata["max_rec_intensity"] < result.metadata["ridge_point"]
    rows = {row[0]: row for row in result.rows}
    assert rows["resnet50"][1] > result.metadata["max_rec_intensity"]


def test_bench_fig3_operator_breakdown(run_and_report):
    """Fig. 3: operator time breakdown at batch 64 groups models by bottleneck."""
    result = run_and_report("figure-3")
    dominant = result.metadata["dominant_by_model"]
    assert dominant["dlrm-rmc1"] == "embedding"
    assert dominant["dlrm-rmc2"] == "embedding"
    for name in ("dlrm-rmc3", "ncf", "wnd", "mt-wnd"):
        assert dominant[name] == "fc"
    assert dominant["dien"] == "recurrent"


def test_bench_fig4_gpu_speedup(run_and_report):
    """Fig. 4: GPU-over-CPU speedup grows with batch size; crossover varies."""
    result = run_and_report("figure-4")
    for row in result.rows:
        speedup_small, speedup_large = row[1], row[6]
        assert speedup_large > speedup_small
        assert speedup_large > 1.0
    loading = result.column("data-loading-fraction")
    assert sum(loading) / len(loading) >= 0.45


def test_bench_fig5_query_size_distributions(run_and_report):
    """Fig. 5: production query sizes have a heavier tail than lognormal."""
    result = run_and_report("figure-5")
    assert (
        result.metadata["production_tail_ratio_p99_p50"]
        > result.metadata["lognormal_tail_ratio_p99_p50"]
    )
    assert 0.35 <= result.metadata["production_top_quartile_work_share"] <= 0.8


def test_bench_fig6_large_query_execution_share(run_and_report):
    """Fig. 6: the top quartile of queries carries ~half of CPU time and gains most on GPU."""
    result = run_and_report("figure-6")
    for row in result.rows:
        assert 0.3 <= row[2] <= 0.7  # large-query share of CPU time
        assert row[3] > 1.0  # GPU speedup on the large-query population


def test_bench_fig7_subsampling(run_and_report):
    """Fig. 7: a handful of nodes tracks the fleet-wide latency distribution.

    The ~15 % bound holds under real balancing too — the gap is reported per
    policy (random and least-outstanding) since the fleet unification.
    """
    result = run_and_report("figure-7")
    assert result.metadata["max_gap"] < 0.15
    for gap in result.metadata["gap_by_policy"].values():
        assert gap < 0.15
