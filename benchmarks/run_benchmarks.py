#!/usr/bin/env python
"""Wall-clock benchmark harness for the serving/simulation fast path.

Times nine representative workloads end to end and writes ``BENCH_7.json``:

* ``fig9-batch-sweep`` — single-server capacity bisections across a batch-size
  grid (the Fig. 9 experiment at reduced fidelity);
* ``fig15-cluster-scaling`` — the full fleet-scaling experiment (Fig. 15
  extension), the heaviest consumer of the cluster event core;
* ``cluster-capacity-search`` — one ``find_cluster_max_qps`` fleet bisection;
* ``capacity-sweep-shared`` — a *sweep* of fleet capacity searches run twice
  against one warm-start cache under one shared worker pool: the workload
  the ``repro.runtime`` unification targets (pool reuse + replay-exact warm
  starts);
* ``capacity-sweep-shared-j4`` — the same sweep workload on the
  completion-driven runtime at ``jobs=4`` (regardless of ``--jobs``) with a
  shared ``CapacityCache`` instance and the opt-in near-miss bracket-hint
  tier: what a sweep caller gets from the futures-based scheduler.  Tracked
  as its own case so the perf trend keeps the ``jobs=1`` trajectory clean;
* ``fig13-production`` — the Fig. 13 diurnal fleet replay (fixed vs tuned
  batch size under random balancing), post-unification running through the
  shared-heap ``ClusterSimulator`` on scaled latency tables;
* ``fig13-fault-hooks`` — a fig13-scale fleet replay driven through the
  fault-instrumented cluster loop with a plan that never fires (its one
  crash window opens after the trace ends): the pure bookkeeping overhead
  of fault hooks on a no-fault run, which the perf-trend gate keeps
  bounded;
* ``fig7-subsampling`` — the Fig. 7 subsampling experiment (two 16-node
  fleets replaying 2 400 queries each);
* ``large-trace-diurnal`` — a ≥10⁶-query diurnal cluster run streamed
  through the chunked thinning synthesiser
  (:func:`repro.queries.trace.iter_diurnal_trace`) into
  ``ClusterSimulator.run_stream`` in sketch mode: no per-query list, no
  retained latency samples.  The case additionally records ``events`` and
  ``events_per_sec`` (queries simulated per wall-clock second), which the
  perf-trend gate tracks as a higher-is-better series, so large-trace
  throughput is regression-guarded directly, not just figure wall-clock.

Each case records wall-clock seconds plus the speedup against the pre-PR
baseline numbers embedded below (measured on the same machine, same case
kwargs, at the commit recorded in ``BASELINE_COMMIT`` — the commit just
before the PR that last rebuilt that case's hot path).  Every case also
snapshots ``peak_rss_mb``, the process high-water RSS right after the case
ran.  The counter is process-wide and monotone across the harness, so a
case's value bounds everything up to and including it — the large-trace
case runs last precisely so its snapshot exposes any O(trace-length) memory
creep.  ``--quick`` shrinks every case for CI smoke runs; quick-mode
baselines are recorded separately so the speedup column stays meaningful
there too.

Usage::

    python benchmarks/run_benchmarks.py                # full run, BENCH_7.json
    python benchmarks/run_benchmarks.py --quick        # CI smoke sizes
    python benchmarks/run_benchmarks.py --jobs 4       # parallel capacity search
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

try:
    import resource
except ImportError:  # non-POSIX: RSS snapshots are simply omitted
    resource = None  # type: ignore[assignment]

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import run_experiment  # noqa: E402
from repro.execution.engine import build_engine_pair  # noqa: E402
from repro.queries.generator import LoadGenerator  # noqa: E402
from repro.serving.cluster import find_cluster_max_qps, homogeneous_fleet  # noqa: E402
from repro.serving.simulator import ServingConfig  # noqa: E402
from repro.serving.sla import SLATier, sla_target  # noqa: E402

#: Pre-PR wall-clock seconds per case, measured on the recording host with
#: the same script, same kwargs, best-of-3, jobs=1, at the commit in
#: :data:`BASELINE_COMMIT`.  The speedup column of BENCH_6.json is computed
#: against these numbers.  (``capacity-sweep-shared`` was measured with the
#: engine caches pre-warmed by the preceding cases, mirroring its position
#: in the harness order, so its speedup isolates pool reuse + warm starts
#: rather than one-time table builds.  ``fig13-fault-hooks``'s baseline is
#: the *same* replay through the plain no-fault loop on the same checkout —
#: its speedup therefore reads directly as fault-hook overhead, 1.0x being
#: free.)
PRE_PR_BASELINE_S: Dict[str, Dict[str, float]] = {
    "full": {
        "fig9-batch-sweep": 1.03,
        "fig15-cluster-scaling": 1.90,
        "cluster-capacity-search": 0.24,
        "capacity-sweep-shared": 0.296,
        "capacity-sweep-shared-j4": 0.296,
        "fig13-production": 0.513,
        "fig13-fault-hooks": 0.297,
        "fig7-subsampling": 0.266,
        "large-trace-diurnal": 3.84,
    },
    "quick": {
        "fig9-batch-sweep": 0.34,
        "fig15-cluster-scaling": 0.20,
        "cluster-capacity-search": 0.08,
        "capacity-sweep-shared": 0.066,
        "capacity-sweep-shared-j4": 0.066,
        "fig13-production": 0.268,
        "fig13-fault-hooks": 0.044,
        "fig7-subsampling": 0.064,
        "large-trace-diurnal": 0.344,
    },
}

#: Commit each case's baseline was measured at: the commit just before the PR
#: that last rebuilt the case's hot path.  (``capacity-sweep-shared-j4`` runs
#: the same sweep workload as ``capacity-sweep-shared``, so it shares that
#: case's pre-runtime-unification baseline: the old runtime had no faster
#: path for a jobs=4 request on the recording host than its serial one.)
BASELINE_COMMIT: Dict[str, str] = {
    "fig9-batch-sweep": "cb22c24 (pre fast-path PR)",
    "fig15-cluster-scaling": "cb22c24 (pre fast-path PR)",
    "cluster-capacity-search": "cb22c24 (pre fast-path PR)",
    "capacity-sweep-shared": "56f3891 (pre runtime-unification PR)",
    "capacity-sweep-shared-j4": "56f3891 (pre runtime-unification PR)",
    "fig13-production": "5baf554 (pre fleet-unification PR)",
    "fig13-fault-hooks": "9e6e0fb (plain no-fault loop, same checkout host)",
    "fig7-subsampling": "5baf554 (pre fleet-unification PR)",
    # The same diurnal trace materialised as a list and run through the
    # exact-stats batch path on the same checkout host: the speedup column
    # reads as the throughput price of the streaming sketch path (~0.9x,
    # from the counting pass and lazy Query yield), bought for an O(1)
    # peak RSS — 335 MiB batch-exact vs ~46 MiB streamed at 10^6 queries.
    "large-trace-diurnal": "916babd (exact batch-list path, same checkout host)",
}


def _accepted_kwargs(func: Callable[..., Any], kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Drop kwargs the callable does not accept (pre-/post-PR compatibility)."""
    parameters = inspect.signature(func).parameters
    return {key: value for key, value in kwargs.items() if key in parameters}


def bench_fig9(quick: bool, jobs: int) -> None:
    kwargs: Dict[str, Any] = dict(
        models=("dlrm-rmc1", "dien"),
        batch_sizes=(64, 256, 1024),
        num_queries=300,
        capacity_iterations=3,
    )
    if quick:
        kwargs.update(models=("dlrm-rmc1",), batch_sizes=(64, 256), num_queries=120,
                      capacity_iterations=2)
    run_experiment("figure-9", **kwargs)


def bench_fig15(quick: bool, jobs: int) -> None:
    kwargs: Dict[str, Any] = dict(jobs=jobs)
    if quick:
        kwargs.update(
            fleet_sizes=(1, 2),
            policies=("least-outstanding",),
            num_queries=100,
            capacity_iterations=3,
            max_queries=1000,
        )
    from repro.experiments.registry import get_experiment

    kwargs = _accepted_kwargs(get_experiment("figure-15"), kwargs)
    run_experiment("figure-15", **kwargs)


def bench_capacity_search(quick: bool, jobs: int) -> None:
    engines = build_engine_pair("dlrm-rmc1", "skylake", None)
    fleet = homogeneous_fleet(engines, ServingConfig(batch_size=256, num_cores=8), 2)
    target = sla_target("dlrm-rmc1", SLATier.MEDIUM)
    kwargs: Dict[str, Any] = dict(
        num_queries=250, iterations=5, max_queries=3000, jobs=jobs
    )
    if quick:
        kwargs.update(num_queries=100, iterations=3, max_queries=1000)
    kwargs = _accepted_kwargs(find_cluster_max_qps, kwargs)
    find_cluster_max_qps(
        fleet, "least-outstanding", target.latency_s, LoadGenerator(seed=5), **kwargs
    )


def bench_capacity_sweep(quick: bool, jobs: int) -> None:
    # A sweep of fleet capacity searches, run twice against one warm-start
    # cache: pass 1 measures cold searches sharing one worker pool, pass 2
    # the replay-exact warm starts.  Pre-runtime-PR checkouts run the same
    # workload without a shared pool (each search owned its own), so the
    # speedup column isolates exactly what the unification bought.
    import tempfile

    engines = build_engine_pair("dlrm-rmc1", "skylake", None)
    config = ServingConfig(batch_size=256, num_cores=8)
    target = sla_target("dlrm-rmc1", SLATier.MEDIUM)
    if quick:
        sizes, policies = (1, 2), ("least-outstanding",)
        kwargs: Dict[str, Any] = dict(num_queries=80, iterations=3, max_queries=800)
    else:
        sizes, policies = (1, 2), ("least-outstanding", "power-of-two")
        kwargs = dict(num_queries=200, iterations=5, max_queries=2500)
    try:
        from repro.runtime.pool import shared_pool
    except ImportError:  # pre-runtime-PR: no invocation-wide pool to share
        from contextlib import nullcontext as shared_pool

    with tempfile.TemporaryDirectory() as cache_dir:
        with shared_pool(jobs):
            for _pass in range(2):
                for size in sizes:
                    for policy in policies:
                        find_cluster_max_qps(
                            homogeneous_fleet(engines, config, size),
                            policy,
                            target.latency_s,
                            LoadGenerator(seed=5),
                            jobs=jobs,
                            warm_start_cache=cache_dir,
                            **kwargs,
                        )


def bench_capacity_sweep_j4(quick: bool, jobs: int) -> None:
    # The capacity-sweep-shared workload on the completion-driven runtime at
    # a fixed jobs=4 (tracked separately so the jobs=1 trajectory stays
    # clean): one shared CapacityCache *instance* across both passes (its
    # in-process memo replays pass 2 without re-verification) and the
    # opt-in near-miss bracket-hint tier for pass 1's adjacent searches.
    # On multi-core hosts the futures scheduler additionally overlaps each
    # search's speculative evaluations; the in-flight budget is clamped by
    # physical cores, so a one-core recording host measures the scheduling +
    # warm-tier wins alone.
    import tempfile

    from repro.serving.capacity import CapacityCache

    engines = build_engine_pair("dlrm-rmc1", "skylake", None)
    config = ServingConfig(batch_size=256, num_cores=8)
    target = sla_target("dlrm-rmc1", SLATier.MEDIUM)
    if quick:
        sizes, policies = (1, 2), ("least-outstanding",)
        kwargs: Dict[str, Any] = dict(num_queries=80, iterations=3, max_queries=800)
    else:
        sizes, policies = (1, 2), ("least-outstanding", "power-of-two")
        kwargs = dict(num_queries=200, iterations=5, max_queries=2500)
    kwargs.update(jobs=4, bracket_hints=True)
    kwargs = _accepted_kwargs(find_cluster_max_qps, kwargs)
    from repro.runtime.pool import shared_pool

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = CapacityCache(cache_dir)
        with shared_pool(4):
            for _pass in range(2):
                for size in sizes:
                    for policy in policies:
                        find_cluster_max_qps(
                            homogeneous_fleet(engines, config, size),
                            policy,
                            target.latency_s,
                            LoadGenerator(seed=5),
                            warm_start_cache=cache,
                            **kwargs,
                        )


def bench_fig13(quick: bool, jobs: int) -> None:
    # policies=("random",) replays exactly the pre-unification workload
    # (fixed + tuned batch under uniform-random assignment), so the speedup
    # isolates the event-core/latency-table change, not extra sweep points.
    kwargs: Dict[str, Any] = dict(policies=("random",), jobs=jobs)
    if quick:
        kwargs.update(duration_s=3.0)
    from repro.experiments.registry import get_experiment

    kwargs = _accepted_kwargs(get_experiment("figure-13"), kwargs)
    run_experiment("figure-13", **kwargs)


def bench_fig13_fault_hooks(quick: bool, jobs: int) -> None:
    # A fig13-scale fleet replay through the *fault-instrumented* cluster
    # loop: the plan's only crash window opens after the last arrival, so
    # no fault ever fires and the seconds measure the hooks' bookkeeping
    # (health view, fault tracks, merged transition stream) alone.  The
    # baseline is the identical replay through the plain no-fault loop on
    # the same checkout, so the speedup column reads as hook overhead
    # directly (1.0x = free) and the trend gate bounds it across PRs.
    from repro.faults import CrashWindow, FaultPlan, NodeFaultSchedule, RetryPolicy
    from repro.serving.cluster import ClusterSimulator

    engines = build_engine_pair("dlrm-rmc1", "skylake", None)
    fleet = homogeneous_fleet(engines, ServingConfig(batch_size=256, num_cores=8), 4)
    num_queries = 15000 if quick else 100000
    queries = LoadGenerator(seed=5).with_rate(7000.0).generate(num_queries)
    horizon = queries[-1].arrival_time
    plan = FaultPlan(
        nodes={
            0: NodeFaultSchedule(
                crashes=(CrashWindow(horizon + 1.0, horizon + 2.0),)
            )
        }
    )
    ClusterSimulator(
        fleet,
        "least-outstanding",
        fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=2),
    ).run(queries)


def bench_large_trace(quick: bool, jobs: int) -> int:
    # The BENCH_7 tentpole case: a >=10^6-query diurnal trace (quick: ~10^5)
    # streamed through the chunked thinning synthesiser into the cluster
    # event core with latency_stats="sketch" -- no materialised query list,
    # no retained latency samples -- so the seconds here track large-trace
    # throughput and peak RSS stays O(1) in the trace length.  Returns the
    # query count so the harness can record events_per_sec.
    from repro.queries.trace import count_diurnal_queries, iter_diurnal_trace
    from repro.serving.cluster import ClusterSimulator

    base_rate, duration = (200.0, 900.0) if quick else (480.0, 3600.0)
    engines = build_engine_pair("dlrm-rmc1", "skylake", None)
    fleet = homogeneous_fleet(engines, ServingConfig(batch_size=256, num_cores=8), 4)
    total = count_diurnal_queries(base_rate, duration, seed=9)
    simulator = ClusterSimulator(fleet, "least-outstanding", latency_stats="sketch")
    simulator.run_stream(iter_diurnal_trace(base_rate, duration, seed=9), total)
    return total


def bench_fig7(quick: bool, jobs: int) -> None:
    # figure-7 has no worker knob: its two fleet replays are sequential by
    # design, so this case always runs serially regardless of --jobs.
    kwargs: Dict[str, Any] = dict(policies=("random",))
    if quick:
        kwargs.update(num_nodes=8, queries_per_node=60)
    from repro.experiments.registry import get_experiment

    kwargs = _accepted_kwargs(get_experiment("figure-7"), kwargs)
    run_experiment("figure-7", **kwargs)


CASES: Dict[str, Callable[[bool, int], Any]] = {
    "fig9-batch-sweep": bench_fig9,
    "fig15-cluster-scaling": bench_fig15,
    "cluster-capacity-search": bench_capacity_search,
    "capacity-sweep-shared": bench_capacity_sweep,
    "capacity-sweep-shared-j4": bench_capacity_sweep_j4,
    "fig13-production": bench_fig13,
    "fig13-fault-hooks": bench_fig13_fault_hooks,
    "fig7-subsampling": bench_fig7,
    # Last on purpose: its peak-RSS snapshot then bounds the whole harness,
    # so O(trace-length) memory creep anywhere shows up here.
    "large-trace-diurnal": bench_large_trace,
}


def _peak_rss_mb() -> Optional[float]:
    """Process high-water RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    if resource is None:
        return None
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes there, KiB on Linux
        peak_kb /= 1024.0
    return round(peak_kb / 1024.0, 1)


def run_cases(
    quick: bool, jobs: int, repeats: int
) -> Tuple[Dict[str, float], Dict[str, int], Dict[str, float]]:
    """Run every case ``repeats`` times, returning best wall-clock seconds,
    per-case event counts (cases that report them), and per-case peak-RSS
    snapshots.

    Best-of-N damps scheduler/thermal noise; the first iteration also warms
    imports and lazily built tables the way a long-lived process would be.
    """
    timings: Dict[str, float] = {}
    events: Dict[str, int] = {}
    rss: Dict[str, float] = {}
    for name, case in CASES.items():
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            outcome = case(quick, jobs)
            best = min(best, time.perf_counter() - started)
            if isinstance(outcome, int):
                events[name] = outcome
        timings[name] = best
        peak = _peak_rss_mb()
        if peak is not None:
            rss[name] = peak
        rate = f"  {events[name] / best:10.0f} ev/s" if name in events else ""
        print(f"{name:28s} {best:8.2f} s{rate}")
    return timings, events, rss


def build_report(
    timings: Dict[str, float],
    quick: bool,
    jobs: int,
    repeats: int,
    events: Optional[Dict[str, int]] = None,
    rss: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    mode = "quick" if quick else "full"
    baselines = PRE_PR_BASELINE_S[mode]
    events = events or {}
    rss = rss or {}
    cases: Dict[str, Any] = {}
    speedups = []
    for name, seconds in timings.items():
        baseline: Optional[float] = baselines.get(name)
        entry: Dict[str, Any] = {"seconds": round(seconds, 3), "baseline_s": baseline}
        if baseline:
            entry["speedup"] = round(baseline / seconds, 2)
            entry["baseline_commit"] = BASELINE_COMMIT.get(name)
            speedups.append(baseline / seconds)
        if name in events:
            entry["events"] = events[name]
            entry["events_per_sec"] = round(events[name] / seconds, 1)
        if name in rss:
            entry["peak_rss_mb"] = rss[name]
        cases[name] = entry
    report: Dict[str, Any] = {
        "bench_id": "BENCH_7",
        "mode": mode,
        "jobs": jobs,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "cases": cases,
    }
    peak = _peak_rss_mb()
    if peak is not None:
        report["peak_rss_mb"] = peak
    if speedups:
        product = 1.0
        for value in speedups:
            product *= value
        report["geomean_speedup"] = round(product ** (1.0 / len(speedups)), 2)
    return report


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke sizes (seconds, not minutes)."
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="Worker processes for the parallel capacity search (0 = all cores).",
    )
    parser.add_argument(
        "--output",
        default="",
        help="Output JSON path (default: BENCH_6.json at the repo root for "
        "full runs; bench_quick.json for --quick, so a quick run never "
        "overwrites the committed full-mode trajectory).",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=0,
        help="Iterations per case, best-of-N (default: 2 full, 1 quick).",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    if jobs < 1:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    repeats = args.repeats if args.repeats else (1 if args.quick else 2)
    if repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    timings, events, rss = run_cases(args.quick, jobs, repeats)
    report = build_report(timings, args.quick, jobs, repeats, events, rss)
    if args.output:
        output = Path(args.output)
    elif args.quick:
        # Quick-mode seconds must never land in the committed BENCH_N.json:
        # the perf-trend gate compares full-mode numbers across PRs.
        output = _REPO_ROOT / "bench_quick.json"
    else:
        output = _REPO_ROOT / "BENCH_7.json"
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {output}")
    for name, entry in report["cases"].items():
        speedup = entry.get("speedup")
        note = f"{speedup:.2f}x vs pre-PR" if speedup else "no baseline recorded"
        rate = entry.get("events_per_sec")
        extra = f"  {rate:10.0f} ev/s" if rate else ""
        print(f"  {name:28s} {entry['seconds']:8.2f} s{extra}  ({note})")
    if report.get("peak_rss_mb") is not None:
        print(f"  peak RSS: {report['peak_rss_mb']:.1f} MiB")
    return 0


if __name__ == "__main__":
    sys.exit(main())
