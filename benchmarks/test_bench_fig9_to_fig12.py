"""Benchmarks regenerating the scheduler design-space figures (Fig. 9-12)."""

from repro.serving.sla import SLATier


def test_bench_fig9_batch_size_sweep(run_and_report):
    """Fig. 9: the optimal per-request batch size varies with SLA and model."""
    result = run_and_report(
        "figure-9",
        models=["dlrm-rmc1", "dlrm-rmc3", "dien"],
        tiers=[SLATier.LOW, SLATier.MEDIUM],
        num_queries=350,
        capacity_iterations=4,
    )
    optima = result.metadata["optimal_batch"]
    # Relaxing the target never shrinks the optimal batch size.
    for model_optima in optima.values():
        assert model_optima["medium"] >= model_optima["low"]
    # Embedding-dominated models prefer batches at least as large as MLP ones.
    assert optima["dlrm-rmc1"]["medium"] >= optima["dlrm-rmc3"]["medium"]


def test_bench_fig10_offload_threshold_sweep(run_and_report):
    """Fig. 10: throughput peaks at an intermediate GPU query-size threshold."""
    result = run_and_report(
        "figure-10",
        num_queries=350,
        capacity_iterations=4,
    )
    for model, optimum in result.metadata["optimal_threshold"].items():
        assert 1 < optimum < 1000, model


def test_bench_fig11_headline_throughput(run_and_report):
    """Fig. 11: DeepRecSched-CPU and -GPU beat the static baseline at every tier."""
    result = run_and_report(
        "figure-11",
        num_queries=250,
        capacity_iterations=3,
    )
    geomeans = result.metadata["geomean_speedups"]
    for tier in ("low", "medium", "high"):
        assert geomeans[tier]["cpu"] > 1.2
        assert geomeans[tier]["gpu"] > geomeans[tier]["cpu"]


def test_bench_fig12_optimal_batch_drivers(run_and_report):
    """Fig. 12: the optimum shifts with SLA, size distribution, model, and platform.

    Panels (a) and (b) reproduce the paper's orderings.  Panel (c)'s claim
    (Broadwell's optimum exceeds Skylake's for DLRM-RMC3) is a known
    deviation in this reproduction — see EXPERIMENTS.md — so the benchmark
    only checks that both platforms settle on a non-trivial batch size.
    """
    result = run_and_report(
        "figure-12",
        num_queries=300,
        capacity_iterations=3,
    )
    panel_a = result.metadata["panel_a"]
    panel_b = result.metadata["panel_b"]
    panel_c = result.metadata["panel_c"]
    # (a) relaxing the target never shrinks the production-distribution optimum.
    assert panel_a["production-high"] >= panel_a["production-low"]
    # (a) lognormal-tuned batches are no larger than production-tuned ones at
    # the relaxed target (the flat-optimum jitter documented in EXPERIMENTS.md
    # is bounded to one power-of-two step).
    assert panel_a["lognormal-high"] <= 2 * panel_a["production-high"]
    # (b) embedding-dominated models pick batches at least as large as MLP ones.
    assert panel_b["dlrm-rmc1"] >= panel_b["dlrm-rmc3"]
    # (c) both platforms move well beyond the static baseline batch size.
    assert panel_c["broadwell"] >= 64
    assert panel_c["skylake"] >= 64
