"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table or figure through its experiment
driver, prints the resulting rows (so the captured output is the reproduced
artifact), and asserts the qualitative claims the paper makes about it.
"""

import random
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np  # noqa: E402
import pytest  # noqa: E402

from repro.experiments import run_experiment  # noqa: E402


@pytest.fixture(autouse=True)
def _deterministic_seeds():
    """Pin the global RNGs before every benchmark so results are order-independent.

    The library itself threads explicit seeds through ``RngFactory``, but any
    component that falls back to the global numpy/stdlib generators must see
    the same stream regardless of which benchmarks ran earlier in the session.
    """
    random_state = random.getstate()
    np_state = np.random.get_state()
    random.seed(20200530)  # ISCA 2020, the paper's venue date.
    np.random.seed(20200530 % 2**32)
    yield
    random.setstate(random_state)
    np.random.set_state(np_state)


@pytest.fixture
def run_and_report(benchmark, capsys):
    """Run an experiment driver once under pytest-benchmark and print its table."""

    def runner(experiment_id: str, **kwargs):
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, **kwargs), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.to_table())
        return result

    return runner
