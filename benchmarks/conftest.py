"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper table or figure through its experiment
driver, prints the resulting rows (so the captured output is the reproduced
artifact), and asserts the qualitative claims the paper makes about it.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest  # noqa: E402

from repro.experiments import run_experiment  # noqa: E402


@pytest.fixture
def run_and_report(benchmark, capsys):
    """Run an experiment driver once under pytest-benchmark and print its table."""

    def runner(experiment_id: str, **kwargs):
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, **kwargs), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.to_table())
        return result

    return runner
