"""Fleet-scaling benchmark: cluster capacity vs fleet size and balancing policy."""


def test_bench_cluster_scaling(run_and_report):
    """QPS-at-SLA scales with fleet size; load-aware balancing beats round-robin."""
    result = run_and_report("figure-15")
    qps = result.metadata["qps_by_policy"]
    efficiency = result.metadata["scaling_efficiency"]
    hetero = result.metadata["hetero_qps"]

    sizes = sorted(next(iter(qps.values())), key=int)
    smallest, largest = sizes[0], sizes[-1]
    for policy, by_size in qps.items():
        # Capacity grows meaningfully with fleet size under every policy.
        assert by_size[largest] > 2.5 * by_size[smallest], policy
        # No policy loses more than a sliver of linear scaling at benchmark fidelity.
        assert efficiency[policy][largest] >= 0.9, policy

    for policy in ("least-outstanding", "power-of-two"):
        # Load-aware balancing sustains at least round-robin's capacity everywhere.
        for size in sizes:
            assert qps[policy][size] >= qps["round-robin"][size], (policy, size)
        # Attaching accelerators to half the fleet adds real capacity.
        assert hetero[policy] > 1.2 * qps[policy][largest], policy
