"""Ablation benchmarks for the design choices DESIGN.md calls out."""


def test_bench_ablation_arrival_process(run_and_report):
    """Poisson arrivals are the conservative (production) capacity assumption."""
    result = run_and_report("ablation-arrival")
    capacities = result.metadata["capacity_by_arrival"]
    assert capacities["fixed"] >= 0.9 * capacities["poisson"]
    assert capacities["uniform"] >= 0.9 * capacities["poisson"]


def test_bench_ablation_size_distribution(run_and_report):
    """Tuning against lognormal sizes and deploying on production traffic costs throughput.

    The QPS-vs-batch surface is flat near its optimum, so the exact argmax
    under each distribution jitters between adjacent power-of-two batch sizes
    at benchmark fidelity; the robust claim checked here is that the
    production-tuned operating point is at least as good on production traffic
    as the lognormal-tuned one (the paper's 1.2-1.7x penalty).
    """
    result = run_and_report("ablation-size-dist")
    assert result.metadata["mismatch_penalty"] >= 0.95
    optima = result.metadata["optimal_batch"]
    assert optima["production"] >= 128
    assert optima["lognormal"] >= 128


def test_bench_ablation_cache_contention(run_and_report):
    """LLC contention is a real driver of the batch-size preference."""
    result = run_and_report("ablation-cache-contention")
    ratios = result.metadata["uplift_without_contention"]
    assert all(ratio >= 0.9 for ratio in ratios.values())
    smallest, largest = min(ratios), max(ratios)
    assert ratios[smallest] >= ratios[largest] - 0.1
