"""Distributed executor benchmark: loopback round-trip task throughput.

Not a paper figure — a harness-health benchmark for the remote execution
layer: dispatch a batch of trivial tasks through a loopback worker and
check the per-task protocol overhead (pickle + frame + TCP + inner pool)
stays far below the cost of one capacity-search evaluation, so
distributing a sweep is never slower than the work it ships.
"""

import os
import re
import subprocess
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _payload(value):
    return value * 2


def _spawn_worker(slots):
    env = dict(os.environ)
    extra = os.pathsep.join(
        [str(_REPO_ROOT / "src"), str(_REPO_ROOT / "benchmarks")]
    )
    env["PYTHONPATH"] = extra + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runtime.remote",
            "worker",
            "--port",
            "0",
            "--slots",
            str(slots),
            "--once",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
        cwd=str(_REPO_ROOT),
    )
    line = proc.stdout.readline()
    match = re.search(r"listening (\d+)", line)
    if not match:
        proc.kill()
        proc.wait(timeout=10)
        raise RuntimeError(f"worker did not announce a port: {line!r}")
    return proc, int(match.group(1))


def test_bench_remote_round_trip_overhead():
    """Loopback dispatch sustains a healthy task rate with zero fallbacks."""
    from repro.runtime.remote import RemoteWorkerPool

    tasks = 60
    proc, port = _spawn_worker(slots=2)
    pool = RemoteWorkerPool([("127.0.0.1", port)])
    start = time.perf_counter()
    try:
        results = pool.map(_payload, range(tasks))
    finally:
        pool.close()
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)
        proc.stdout.close()
    elapsed = time.perf_counter() - start

    assert results == [2 * value for value in range(tasks)]
    stats = pool.stats
    assert stats["completed"] == tasks
    assert stats["local_fallbacks"] == 0
    assert stats["worker_failures"] == 0
    rate = tasks / elapsed
    print(
        f"\nremote round-trip: {tasks} tasks in {elapsed:.2f}s "
        f"({rate:.0f} tasks/s, {1e3 * elapsed / tasks:.1f} ms/task)"
    )
    # One capacity evaluation simulates for ~100ms+; protocol overhead must
    # sit well under that or distribution could never pay for itself.
    assert rate > 5
