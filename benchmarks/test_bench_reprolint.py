"""reprolint-selfcheck: the whole-tree lint must stay fast enough to gate CI.

The static-analysis job runs ``python -m tools.reprolint src tests
benchmarks examples tools`` on every push; a linter that creeps past a few
seconds stops being a gate people keep enabled.  This benchmark times the
full CLI (subprocess, cold interpreter — exactly what CI pays) and holds it
under a 10 s budget with generous headroom over the ~1-2 s it takes today.
"""

import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_TARGETS = ("src", "tests", "benchmarks", "examples", "tools")


def test_bench_reprolint_selfcheck(capsys):
    started = time.perf_counter()
    result = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *LINT_TARGETS],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    elapsed_s = time.perf_counter() - started

    with capsys.disabled():
        print()
        print(f"reprolint-selfcheck: {elapsed_s:.2f} s wall (budget 10 s)")
        print(result.stdout.strip())

    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 finding(s)" in result.stdout
    assert elapsed_s < 10.0, f"reprolint took {elapsed_s:.2f} s; budget is 10 s"
