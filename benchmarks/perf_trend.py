#!/usr/bin/env python
"""Perf-trend gate: trajectory table over all BENCH_*.json + regression check.

Every PR that touches a hot path records a ``BENCH_N.json`` at the repo root
(``benchmarks/run_benchmarks.py``).  This tool reads the whole trajectory and

* prints a per-case table of wall-clock seconds across the benches, with a
  trend column (best-prior seconds / latest seconds — >1 means the latest
  bench is faster) and a geomean trend row across the cases the latest bench
  shares with any prior one;
* prints a second table for cases that record ``events_per_sec`` (the
  large-trace throughput series, BENCH_7 onward) and echoes the latest
  bench's per-case ``peak_rss_mb`` snapshots when recorded — benches that
  predate those fields are tolerated and simply absent from these rows;
* **fails** (exit 1) when the latest bench regresses any tracked case by more
  than the threshold (default 25 %) against the *best* prior recording of
  that case — in seconds (lower is better) and, where recorded, in
  ``events_per_sec`` (higher is better).  The committed numbers are all
  measured on the recording host, so the comparison is deterministic at CI
  time.

The table is written as GitHub-flavoured markdown to the path in the
``GITHUB_STEP_SUMMARY`` environment variable when set (the Actions job
summary), and always echoed to stdout.  ``--chart out.svg`` additionally
renders the same trajectory as a standalone SVG line chart (wall-clock
seconds per case across the benches, log-scale y) that CI uploads as an
artifact next to the table.

Usage::

    python benchmarks/perf_trend.py                 # gate at 25 %
    python benchmarks/perf_trend.py --threshold 1.5 # allow up to 50 %
    python benchmarks/perf_trend.py --root path/    # read BENCH_*.json there
    python benchmarks/perf_trend.py --chart perf_trend.svg
"""

from __future__ import annotations

import argparse
import json
import math
import os
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

_BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")


def load_benches(root: Path) -> List[Tuple[int, Dict[str, Any]]]:
    """Full-mode ``BENCH_N.json`` files under ``root``, sorted by N.

    Quick-mode recordings (CI smoke sizes) are skipped: their seconds are a
    different workload, and mixing them into the trajectory would either
    trip the gate spuriously or mask a real full-mode regression.
    """
    benches: List[Tuple[int, Dict[str, Any]]] = []
    for path in root.glob("BENCH_*.json"):
        match = _BENCH_PATTERN.match(path.name)
        if not match:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"unreadable bench file {path}: {error}")
        if not isinstance(payload.get("cases"), dict):
            raise SystemExit(f"bench file {path} has no 'cases' mapping")
        if payload.get("mode", "full") != "full":
            print(f"skipping {path.name}: mode={payload['mode']!r} (not full)")
            continue
        benches.append((int(match.group(1)), payload))
    benches.sort(key=lambda item: item[0])
    return benches


def _case_metric(bench: Dict[str, Any], key: str) -> Dict[str, float]:
    """Case name -> positive numeric ``key`` for one bench payload.

    Absent keys are skipped, not errors: benches recorded before a metric
    existed (e.g. ``events_per_sec``, added with BENCH_7) stay loadable.
    """
    values: Dict[str, float] = {}
    for name, entry in bench["cases"].items():
        value = entry.get(key) if isinstance(entry, dict) else None
        if isinstance(value, (int, float)) and value > 0:
            values[name] = float(value)
    return values


def case_seconds(bench: Dict[str, Any]) -> Dict[str, float]:
    """Case name -> wall-clock seconds for one bench payload."""
    return _case_metric(bench, "seconds")


def case_events_per_sec(bench: Dict[str, Any]) -> Dict[str, float]:
    """Case name -> events/sec throughput (cases that record it only)."""
    return _case_metric(bench, "events_per_sec")


def case_peak_rss_mb(bench: Dict[str, Any]) -> Dict[str, float]:
    """Case name -> peak-RSS snapshot in MiB (cases that record it only)."""
    return _case_metric(bench, "peak_rss_mb")


def _geomean(values: List[float]) -> Optional[float]:
    if not values:
        return None
    return math.exp(sum(math.log(value) for value in values) / len(values))


def build_table(benches: List[Tuple[int, Dict[str, Any]]]) -> str:
    """Markdown trajectory table: cases x benches, plus a geomean-trend row."""
    if not benches:
        return "_no BENCH_*.json files found_"
    by_bench = {number: case_seconds(bench) for number, bench in benches}
    numbers = [number for number, _ in benches]
    cases = sorted({name for seconds in by_bench.values() for name in seconds})
    latest = numbers[-1]

    header = (
        "| case | "
        + " | ".join(f"BENCH_{number} (s)" for number in numbers)
        + " | trend |"
    )
    divider = "|" + " --- |" * (len(numbers) + 2)
    lines = [header, divider]
    trends: List[float] = []
    for case in cases:
        cells = []
        for number in numbers:
            value = by_bench[number].get(case)
            cells.append(f"{value:.3f}" if value is not None else "—")
        prior = [
            by_bench[number][case]
            for number in numbers[:-1]
            if case in by_bench[number]
        ]
        current = by_bench[latest].get(case)
        if prior and current:
            trend = min(prior) / current
            trends.append(trend)
            trend_cell = f"{trend:.2f}x"
        else:
            trend_cell = "new" if current else "dropped"
        lines.append(f"| {case} | " + " | ".join(cells) + f" | {trend_cell} |")

    geomean = _geomean(trends)
    if geomean is not None:
        lines.append(
            "| **geomean (latest vs best prior)** | "
            + " | ".join("" for _ in numbers)
            + f" | **{geomean:.2f}x** |"
        )
    return "\n".join(lines)


def build_throughput_table(benches: List[Tuple[int, Dict[str, Any]]]) -> str:
    """Markdown throughput table (events/sec, higher is better) + RSS notes.

    Empty string when no bench records ``events_per_sec`` — benches older
    than BENCH_7 never do, so the seconds table stands alone for them.
    """
    by_bench = {number: case_events_per_sec(bench) for number, bench in benches}
    numbers = [number for number, _ in benches]
    cases = sorted({name for values in by_bench.values() for name in values})
    if not cases:
        return ""
    latest = numbers[-1]
    header = (
        "| case (events/sec) | "
        + " | ".join(f"BENCH_{number}" for number in numbers)
        + " | trend |"
    )
    lines = [header, "|" + " --- |" * (len(numbers) + 2)]
    for case in cases:
        cells = []
        for number in numbers:
            value = by_bench[number].get(case)
            cells.append(f"{value:,.0f}" if value is not None else "—")
        prior = [
            by_bench[number][case]
            for number in numbers[:-1]
            if case in by_bench[number]
        ]
        current = by_bench[latest].get(case)
        if prior and current:
            trend_cell = f"{current / max(prior):.2f}x"
        else:
            trend_cell = "new" if current else "dropped"
        lines.append(f"| {case} | " + " | ".join(cells) + f" | {trend_cell} |")
    rss = case_peak_rss_mb(benches[-1][1])
    if rss:
        lines.append("")
        lines.append(
            f"_peak RSS at BENCH_{latest}: "
            + ", ".join(
                f"{name} = {value:.1f} MiB" for name, value in sorted(rss.items())
            )
            + "_"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# SVG trajectory chart
# --------------------------------------------------------------------------- #

#: Categorical series colors (fixed assignment order, light-mode steps) and
#: the chart's surface/ink tokens.  The ordering is the colorblind-safety
#: mechanism: this sequence passes the adjacent-pair CVD/normal-vision gates
#: as validated; hues are assigned to cases in first-seen order and never
#: cycled.  Three slots sit below 3:1 contrast on the surface, which is why
#: every line also carries a direct end label (and the markdown table is the
#: chart's table view).
_SERIES_COLORS = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)
_SURFACE = "#fcfcfb"
_TEXT_PRIMARY = "#0b0b0b"
_TEXT_SECONDARY = "#52514e"
_GRID = "#e8e7e4"

#: Ink for cases beyond the 8 validated categorical slots.  Hues are never
#: cycled (a 9th series sharing the 1st's blue would defeat the validated
#: adjacent-pair separation), so overflow series all wear this neutral and
#: rely on their direct end labels for identity.
_OVERFLOW = "#8a8984"


def _series_color(index: int) -> str:
    """Fixed-order slot color, neutral past the validated palette."""
    if index < len(_SERIES_COLORS):
        return _SERIES_COLORS[index]
    return _OVERFLOW


def _log_ticks(lo: float, hi: float) -> List[float]:
    """1–2–5 decade ticks covering [lo, hi] (log-scale y gridlines)."""
    ticks = []
    exponent = math.floor(math.log10(lo))
    while 10 ** exponent <= hi:
        for mantissa in (1.0, 2.0, 5.0):
            value = mantissa * 10 ** exponent
            if lo * 0.999 <= value <= hi * 1.001:
                ticks.append(value)
        exponent += 1
    return ticks or [lo, hi]


def build_chart_svg(benches: List[Tuple[int, Dict[str, Any]]]) -> str:
    """Standalone SVG: per-case wall-clock trajectory across the benches.

    Cases are series (fixed color order, direct-labeled at the line end —
    the labels double as the legend), benches the x positions, seconds the
    log-scale y.  Pure stdlib so the CI artifact needs no plotting stack.
    """
    from xml.sax.saxutils import escape

    by_bench = {number: case_seconds(bench) for number, bench in benches}
    numbers = [number for number, _ in benches]
    cases = sorted({name for seconds in by_bench.values() for name in seconds})
    if not numbers or not cases:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="400" height="80">'
            f'<rect width="400" height="80" fill="{_SURFACE}"/>'
            f'<text x="16" y="44" font-family="sans-serif" font-size="13" '
            f'fill="{_TEXT_SECONDARY}">no BENCH_*.json recordings found</text></svg>'
        )

    width, height = 960, 520
    left, right, top, bottom = 70, 250, 56, 46
    plot_w, plot_h = width - left - right, height - top - bottom

    values = [s for seconds in by_bench.values() for s in seconds.values()]
    lo, hi = min(values) * 0.8, max(values) * 1.25
    log_lo, log_hi = math.log10(lo), math.log10(hi)

    def x_pos(index: int) -> float:
        if len(numbers) == 1:
            return left + plot_w / 2
        return left + plot_w * index / (len(numbers) - 1)

    def y_pos(seconds: float) -> float:
        span = (math.log10(seconds) - log_lo) / (log_hi - log_lo)
        return top + plot_h * (1.0 - span)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="Benchmark wall-clock trajectory per case">',
        f'<rect width="{width}" height="{height}" fill="{_SURFACE}"/>',
        f'<text x="{left}" y="26" font-family="sans-serif" font-size="15" '
        f'font-weight="600" fill="{_TEXT_PRIMARY}">Benchmark trajectory — '
        f'wall-clock seconds per case</text>',
        f'<text x="{left}" y="43" font-family="sans-serif" font-size="12" '
        f'fill="{_TEXT_SECONDARY}">committed BENCH_*.json recordings, '
        f'log-scale seconds (lower is faster)</text>',
    ]

    for tick in _log_ticks(lo, hi):
        y = y_pos(tick)
        label = f"{tick:g}"
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" y2="{y:.1f}" '
            f'stroke="{_GRID}" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{left - 8}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="11" '
            f'fill="{_TEXT_SECONDARY}">{label}s</text>'
        )
    for index, number in enumerate(numbers):
        x = x_pos(index)
        parts.append(
            f'<text x="{x:.1f}" y="{top + plot_h + 20}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="11" '
            f'fill="{_TEXT_SECONDARY}">BENCH_{number}</text>'
        )

    # End labels double as the legend; nudge apart so none collide.
    labels = []
    for series_index, case in enumerate(cases):
        color = _series_color(series_index)
        points = [
            (x_pos(i), y_pos(by_bench[number][case]), by_bench[number][case])
            for i, number in enumerate(numbers)
            if case in by_bench[number]
        ]
        if not points:
            continue
        if len(points) > 1:
            path = " ".join(
                f"{'M' if i == 0 else 'L'}{x:.1f},{y:.1f}"
                for i, (x, y, _) in enumerate(points)
            )
            parts.append(
                f'<path d="{path}" fill="none" stroke="{color}" '
                f'stroke-width="2" stroke-linejoin="round"/>'
            )
        for x, y, _ in points:
            # 2px surface ring separates overlapping markers.
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}" '
                f'stroke="{_SURFACE}" stroke-width="2"/>'
            )
        end_x, end_y, end_value = points[-1]
        labels.append((end_y, end_x, color, case, end_value))

    labels.sort()
    min_gap, previous = 15.0, -1e9
    for end_y, end_x, color, case, end_value in labels:
        y = max(end_y, previous + min_gap)
        y = min(max(y, top + 6), top + plot_h + 4)
        previous = y
        parts.append(
            f'<line x1="{end_x + 6:.1f}" y1="{end_y:.1f}" '
            f'x2="{left + plot_w + 14}" y2="{y:.1f}" stroke="{_GRID}" '
            f'stroke-width="1"/>'
        )
        parts.append(
            f'<rect x="{left + plot_w + 18}" y="{y - 5:.1f}" width="10" '
            f'height="3" rx="1.5" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{left + plot_w + 34}" y="{y + 4:.1f}" '
            f'font-family="sans-serif" font-size="12" fill="{_TEXT_PRIMARY}">'
            f"{escape(case)} "
            f'<tspan fill="{_TEXT_SECONDARY}">{end_value:.3f}s</tspan></text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def check_regressions(
    benches: List[Tuple[int, Dict[str, Any]]], threshold: float
) -> List[str]:
    """Cases the latest bench regresses by more than ``threshold``x.

    A case is compared against the *best* (fastest) prior bench that records
    it; cases new in the latest bench have no prior and are never flagged.
    A case tracked by any prior bench but *absent* from the latest is a
    failure too — otherwise renaming or dropping a case would silently
    un-track its regressions.
    """
    if len(benches) < 2:
        return []
    by_bench = {number: case_seconds(bench) for number, bench in benches}
    numbers = [number for number, _ in benches]
    latest = numbers[-1]
    failures = []
    tracked = {
        case for number in numbers[:-1] for case in by_bench[number]
    }
    for case in sorted(tracked - set(by_bench[latest])):
        failures.append(
            f"{case}: tracked by prior benches but missing from BENCH_{latest} "
            f"— dropping or renaming a case un-tracks its regressions; carry "
            f"it forward (or deliberately prune it from the prior files)"
        )
    for case, current in sorted(by_bench[latest].items()):
        prior = [
            by_bench[number][case]
            for number in numbers[:-1]
            if case in by_bench[number]
        ]
        if not prior:
            continue
        best = min(prior)
        if current > threshold * best:
            failures.append(
                f"{case}: BENCH_{latest} took {current:.3f}s vs best prior "
                f"{best:.3f}s ({current / best:.2f}x, threshold {threshold:.2f}x)"
            )
    # Throughput gate: events_per_sec is higher-is-better, so the comparison
    # inverts — fail when the latest rate drops below best-prior / threshold.
    # Benches that predate the field contribute nothing, so BENCH_1..6 never
    # trip (or mask) a throughput failure.
    rates = {number: case_events_per_sec(bench) for number, bench in benches}
    for case, current in sorted(rates[latest].items()):
        prior = [
            rates[number][case] for number in numbers[:-1] if case in rates[number]
        ]
        if not prior:
            continue
        best = max(prior)
        if current < best / threshold:
            failures.append(
                f"{case}: BENCH_{latest} ran {current:,.0f} events/sec vs best "
                f"prior {best:,.0f} ({current / best:.2f}x, floor "
                f"{1.0 / threshold:.2f}x)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default="",
        help="Directory holding BENCH_*.json (default: the repo root).",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="Fail when the latest bench exceeds best-prior seconds by this "
        "factor on any shared case (default 1.25 = a 25%% regression).",
    )
    parser.add_argument(
        "--chart",
        default="",
        help="Also render the trajectory as a standalone SVG line chart at "
        "this path (uploaded as a CI artifact next to the job summary).",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error(f"--threshold must be > 1.0, got {args.threshold}")
    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent

    benches = load_benches(root)
    table = build_table(benches)
    throughput = build_throughput_table(benches)
    if throughput:
        table += "\n\n" + throughput
    title = "## Benchmark trajectory\n\n"
    print(title + table)

    if args.chart:
        chart_path = Path(args.chart)
        chart_path.write_text(build_chart_svg(benches) + "\n")
        print(f"\nwrote trajectory chart to {chart_path}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(title + table + "\n")

    failures = check_regressions(benches, args.threshold)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    if benches:
        latest = benches[-1][0]
        print(f"\nno case of BENCH_{latest} regresses past {args.threshold:.2f}x.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
