#!/usr/bin/env python
"""Perf-trend gate: trajectory table over all BENCH_*.json + regression check.

Every PR that touches a hot path records a ``BENCH_N.json`` at the repo root
(``benchmarks/run_benchmarks.py``).  This tool reads the whole trajectory and

* prints a per-case table of wall-clock seconds across the benches, with a
  trend column (best-prior seconds / latest seconds — >1 means the latest
  bench is faster) and a geomean trend row across the cases the latest bench
  shares with any prior one;
* **fails** (exit 1) when the latest bench regresses any tracked case by more
  than the threshold (default 25 %) against the *best* prior recording of
  that case — the committed numbers are all measured on the recording host,
  so the comparison is deterministic at CI time.

The table is written as GitHub-flavoured markdown to the path in the
``GITHUB_STEP_SUMMARY`` environment variable when set (the Actions job
summary), and always echoed to stdout.

Usage::

    python benchmarks/perf_trend.py                 # gate at 25 %
    python benchmarks/perf_trend.py --threshold 1.5 # allow up to 50 %
    python benchmarks/perf_trend.py --root path/    # read BENCH_*.json there
"""

from __future__ import annotations

import argparse
import json
import math
import os
import re
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

_BENCH_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")


def load_benches(root: Path) -> List[Tuple[int, Dict[str, Any]]]:
    """Full-mode ``BENCH_N.json`` files under ``root``, sorted by N.

    Quick-mode recordings (CI smoke sizes) are skipped: their seconds are a
    different workload, and mixing them into the trajectory would either
    trip the gate spuriously or mask a real full-mode regression.
    """
    benches: List[Tuple[int, Dict[str, Any]]] = []
    for path in root.glob("BENCH_*.json"):
        match = _BENCH_PATTERN.match(path.name)
        if not match:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"unreadable bench file {path}: {error}")
        if not isinstance(payload.get("cases"), dict):
            raise SystemExit(f"bench file {path} has no 'cases' mapping")
        if payload.get("mode", "full") != "full":
            print(f"skipping {path.name}: mode={payload['mode']!r} (not full)")
            continue
        benches.append((int(match.group(1)), payload))
    benches.sort(key=lambda item: item[0])
    return benches


def case_seconds(bench: Dict[str, Any]) -> Dict[str, float]:
    """Case name -> wall-clock seconds for one bench payload."""
    seconds: Dict[str, float] = {}
    for name, entry in bench["cases"].items():
        value = entry.get("seconds") if isinstance(entry, dict) else None
        if isinstance(value, (int, float)) and value > 0:
            seconds[name] = float(value)
    return seconds


def _geomean(values: List[float]) -> Optional[float]:
    if not values:
        return None
    return math.exp(sum(math.log(value) for value in values) / len(values))


def build_table(benches: List[Tuple[int, Dict[str, Any]]]) -> str:
    """Markdown trajectory table: cases x benches, plus a geomean-trend row."""
    if not benches:
        return "_no BENCH_*.json files found_"
    by_bench = {number: case_seconds(bench) for number, bench in benches}
    numbers = [number for number, _ in benches]
    cases = sorted({name for seconds in by_bench.values() for name in seconds})
    latest = numbers[-1]

    header = (
        "| case | "
        + " | ".join(f"BENCH_{number} (s)" for number in numbers)
        + " | trend |"
    )
    divider = "|" + " --- |" * (len(numbers) + 2)
    lines = [header, divider]
    trends: List[float] = []
    for case in cases:
        cells = []
        for number in numbers:
            value = by_bench[number].get(case)
            cells.append(f"{value:.3f}" if value is not None else "—")
        prior = [
            by_bench[number][case]
            for number in numbers[:-1]
            if case in by_bench[number]
        ]
        current = by_bench[latest].get(case)
        if prior and current:
            trend = min(prior) / current
            trends.append(trend)
            trend_cell = f"{trend:.2f}x"
        else:
            trend_cell = "new" if current else "dropped"
        lines.append(f"| {case} | " + " | ".join(cells) + f" | {trend_cell} |")

    geomean = _geomean(trends)
    if geomean is not None:
        lines.append(
            "| **geomean (latest vs best prior)** | "
            + " | ".join("" for _ in numbers)
            + f" | **{geomean:.2f}x** |"
        )
    return "\n".join(lines)


def check_regressions(
    benches: List[Tuple[int, Dict[str, Any]]], threshold: float
) -> List[str]:
    """Cases the latest bench regresses by more than ``threshold``x.

    A case is compared against the *best* (fastest) prior bench that records
    it; cases new in the latest bench have no prior and are never flagged.
    A case tracked by any prior bench but *absent* from the latest is a
    failure too — otherwise renaming or dropping a case would silently
    un-track its regressions.
    """
    if len(benches) < 2:
        return []
    by_bench = {number: case_seconds(bench) for number, bench in benches}
    numbers = [number for number, _ in benches]
    latest = numbers[-1]
    failures = []
    tracked = {
        case for number in numbers[:-1] for case in by_bench[number]
    }
    for case in sorted(tracked - set(by_bench[latest])):
        failures.append(
            f"{case}: tracked by prior benches but missing from BENCH_{latest} "
            f"— dropping or renaming a case un-tracks its regressions; carry "
            f"it forward (or deliberately prune it from the prior files)"
        )
    for case, current in sorted(by_bench[latest].items()):
        prior = [
            by_bench[number][case]
            for number in numbers[:-1]
            if case in by_bench[number]
        ]
        if not prior:
            continue
        best = min(prior)
        if current > threshold * best:
            failures.append(
                f"{case}: BENCH_{latest} took {current:.3f}s vs best prior "
                f"{best:.3f}s ({current / best:.2f}x, threshold {threshold:.2f}x)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default="",
        help="Directory holding BENCH_*.json (default: the repo root).",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="Fail when the latest bench exceeds best-prior seconds by this "
        "factor on any shared case (default 1.25 = a 25%% regression).",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error(f"--threshold must be > 1.0, got {args.threshold}")
    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent

    benches = load_benches(root)
    table = build_table(benches)
    title = "## Benchmark trajectory\n\n"
    print(title + table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(title + table + "\n")

    failures = check_regressions(benches, args.threshold)
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    if benches:
        latest = benches[-1][0]
        print(f"\nno case of BENCH_{latest} regresses past {args.threshold:.2f}x.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
