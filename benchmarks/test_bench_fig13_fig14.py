"""Benchmarks regenerating the deployment figures (Fig. 13 and Fig. 14)."""


def test_bench_fig13_production_cluster(run_and_report):
    """Fig. 13: tuned batch size reduces p95/p99 latency on a loaded fleet."""
    result = run_and_report("figure-13")
    assert result.metadata["p95_reduction"] >= 1.0
    assert result.metadata["p99_reduction"] > 1.0


def test_bench_fig14_cpu_gpu_tradeoff(run_and_report):
    """Fig. 14: CPU+GPU raises QPS everywhere; GPU share falls as targets relax."""
    result = run_and_report(
        "figure-14",
        num_queries=300,
        capacity_iterations=3,
    )
    cpu_qps = result.column("cpu-qps")
    gpu_qps = result.column("gpu-qps")
    assert all(g > c for g, c in zip(gpu_qps, cpu_qps))
    fractions = result.column("gpu-work-fraction")
    # The share of work on the accelerator does not grow materially as the
    # target relaxes (the paper sees it fall; our tuned threshold keeps it
    # roughly flat — see EXPERIMENTS.md).
    assert fractions[-1] <= fractions[0] + 0.10
