"""Benchmarks regenerating Table I and Table II."""


def test_bench_table1_model_architectures(run_and_report):
    """Table I: architectural features of the eight recommendation models."""
    result = run_and_report("table-1")
    assert len(result.rows) == 8
    lookups = dict(zip(result.column("model"), result.column("lookups")))
    assert lookups["dlrm-rmc1"] > lookups["dlrm-rmc3"]
    assert lookups["din"] >= 100


def test_bench_table2_bottlenecks_and_slas(run_and_report):
    """Table II: measured runtime bottleneck and published SLA target per model."""
    result = run_and_report("table-2")
    assert len(result.rows) == 8
    assert result.metadata["bottleneck_agreement"] >= 0.75
    sla = dict(zip(result.column("model"), result.column("sla-target-ms")))
    assert sla["ncf"] == 5.0
    assert sla["dlrm-rmc2"] == 400.0
