"""RL009 — documentation test citations must name tests that exist.

The docs layer promises behaviour "cited to its enforcing test": prose in
``docs/*.md`` names concrete pytest node ids
(``tests/test_faults.py::TestResultNeutrality::test_zero_plan_runs_are_bit_identical``)
so every documented guarantee is machine-checkable.  Those citations rot
silently when a test is renamed — ``tools/check_docs.py`` validates links
and anchors, but not node ids.  This rule closes that gap: it builds a
test-node manifest by parsing the test tree with ``ast`` (every module-level
``test_*`` function and every ``test_*`` method of a ``Test*`` class —
exactly the nodes pytest's default collection discovers, without paying a
collection run) and fails on any cited node that does not exist.

Citations are recognised inside backticks, in the form
```
`tests/test_x.py::TestClass::test_method` or `benchmarks/test_y.py::test_fn`
```
with an optional parametrisation suffix (``[...]``), which is ignored —
parameter ids are runtime values the AST cannot see.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Sequence, Set

from tools.reprolint.engine import Finding

#: ```tests/....py::node`` or ```benchmarks/....py::node::node``` citations.
CITATION_RE = re.compile(
    r"`(?P<file>(?:tests|benchmarks)/[\w/.-]+\.py)"
    r"::(?P<node>[\w.]+(?:::[\w.]+)*)(?:\[[^\]`]*\])?`"
)

RULE_ID = "RL009"


def test_manifest(root: Path, test_dirs: Sequence[str] = ("tests", "benchmarks")) -> Dict[str, Set[str]]:
    """Map each test file (repo-relative posix) to its collectable node paths.

    Node paths use pytest's ``::`` separator: ``test_fn`` for module-level
    tests, ``TestClass`` and ``TestClass::test_method`` for class-based
    ones (a class-level citation is valid shorthand for "this whole group").
    """
    manifest: Dict[str, Set[str]] = {}
    for directory in test_dirs:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            relpath = path.relative_to(root).as_posix()
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except SyntaxError:
                continue  # the AST lint pass reports the parse failure
            nodes: Set[str] = set()
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name.startswith("test"):
                        nodes.add(node.name)
                elif isinstance(node, ast.ClassDef) and node.name.startswith("Test"):
                    nodes.add(node.name)
                    for member in node.body:
                        if isinstance(
                            member, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ) and member.name.startswith("test"):
                            nodes.add(f"{node.name}::{member.name}")
            manifest[relpath] = nodes
    return manifest


def _doc_files(root: Path) -> List[Path]:
    """The markdown files whose citations the repo guarantees (same set as
    ``tools/check_docs.py`` validates for links)."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return [path for path in files if path.is_file()]


def check_doc_citations(root: Path) -> List[Finding]:
    """Every test citation in README/docs must name an existing test node."""
    manifest = test_manifest(root)
    findings: List[Finding] = []
    for doc in _doc_files(root):
        relpath = doc.relative_to(root).as_posix()
        for lineno, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in CITATION_RE.finditer(line):
                cited_file = match.group("file")
                cited_node = match.group("node")
                if cited_file not in manifest:
                    findings.append(
                        Finding(
                            path=relpath,
                            line=lineno,
                            col=match.start() + 1,
                            rule=RULE_ID,
                            message=(
                                f"citation names missing test file "
                                f"{cited_file!r}; docs promises must point at "
                                "their enforcing tests"
                            ),
                        )
                    )
                elif cited_node not in manifest[cited_file]:
                    findings.append(
                        Finding(
                            path=relpath,
                            line=lineno,
                            col=match.start() + 1,
                            rule=RULE_ID,
                            message=(
                                f"citation {cited_file}::{cited_node} names no "
                                "collectable test node (renamed or deleted?); "
                                "update the citation with the promise's real "
                                "enforcing test"
                            ),
                        )
                    )
    return findings
