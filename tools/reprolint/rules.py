"""The concrete reprolint rules (RL001–RL008, RL010).

Every rule encodes an invariant this repository has shipped a bug against —
or is structurally exposed to — and that the test suite can only
spot-check.  Each rule's docstring names the invariant; the catalog with
historical context lives in ``docs/static-analysis.md``.

Rules are pure AST checks (stdlib ``ast`` only): no imports of the code
under analysis, so a broken tree can never take the linter down with it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.reprolint.engine import Finding, Rule

# --------------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------------- #


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/attribute paths they alias.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime as dt`` -> ``{"dt": "datetime.datetime"}``.
    Only top-level and function-local imports are walked — enough for the
    attribute-chain resolution the rules do.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """The dotted path of a Name/Attribute chain, with aliases resolved.

    ``np.random.default_rng`` -> ``"numpy.random.default_rng"`` under
    ``import numpy as np``; returns None for chains rooted in calls,
    subscripts, or other non-name expressions (``self._rng.normal`` etc.).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _call_name(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    return dotted_name(node.func, aliases)


# --------------------------------------------------------------------------- #
# RL001 — builtin hash() is process-salted for strings
# --------------------------------------------------------------------------- #


class BuiltinHashRule(Rule):
    """No builtin ``hash()`` where the value may feed seeding or identity.

    Python salts ``str``/``bytes`` hashing per interpreter process
    (PYTHONHASHSEED), so ``hash()`` of anything string-bearing differs from
    run to run — the PR-1 ``RngFactory.child`` bug, where "seeded" RNG
    streams silently changed across processes.  Cross-process identity must
    go through a process-independent digest (``zlib.crc32``, the capacity
    cache's ``config_hash``); ``hash()`` over provably number-only values
    needs an inline justification instead.
    """

    rule_id = "RL001"
    name = "builtin-hash"
    rationale = (
        "str hashing is PYTHONHASHSEED-salted per process; use zlib.crc32 / "
        "CapacityCache.digest for anything that crosses a process boundary"
    )

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    relpath,
                    node,
                    "builtin hash() is process-salted for str/bytes; route "
                    "seeding, cache keys, and cross-process identity through "
                    "zlib.crc32 or a content digest (or justify why the value "
                    "can never contain strings)",
                )


# --------------------------------------------------------------------------- #
# RL002 — every RNG must be explicitly seeded
# --------------------------------------------------------------------------- #

#: numpy.random module-level samplers that draw from hidden global state.
_NP_GLOBAL_SAMPLERS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "exponential", "poisson", "beta", "binomial", "gamma", "standard_normal",
}

#: stdlib ``random`` module-level samplers (the shared global Random()).
_PY_GLOBAL_SAMPLERS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "uniform", "gauss", "normalvariate", "expovariate", "sample",
    "betavariate", "triangular", "vonmisesvariate", "getrandbits",
}

#: Constructors that must receive an explicit seed argument.
_SEEDED_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
    "random.SystemRandom",  # flagged when argless too: inherently unseedable
}


class UnseededRngRule(Rule):
    """No unseeded or global-state RNG outside ``repro.utils.rng``.

    Replay determinism is this repository's core contract: every stochastic
    component takes a seed or a ``numpy.random.Generator`` derived through
    ``RngFactory``.  Argless ``default_rng()`` / ``random.Random()`` and the
    module-level global samplers (``np.random.rand``, ``random.random``…)
    break bit-identical replay and poison shared ``CapacityCache`` entries
    across hosts.  Seeding the globals *with an explicit value*
    (``random.seed(42)``) is allowed — that is how the benchmark conftest
    pins legacy library state.
    """

    rule_id = "RL002"
    name = "unseeded-rng"
    rationale = (
        "unseeded/global RNG breaks bit-identical replay; derive streams "
        "from repro.utils.rng.RngFactory"
    )
    exclude = ("src/repro/utils/rng.py",)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        # Only resolved chains rooted in an *actual import* of numpy or the
        # stdlib random module count — a local variable that merely happens
        # to be named ``random`` must not trip the rule.
        imported = set(aliases.values())
        numpy_imported = any(
            target == "numpy" or target.startswith("numpy.") for target in imported
        )
        random_imported = any(
            target == "random" or target.startswith("random.") for target in imported
        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            called = _call_name(node, aliases)
            if called is None:
                continue
            if (
                called in _SEEDED_CONSTRUCTORS
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    relpath,
                    node,
                    f"{called}() without a seed is nondeterministic; pass an "
                    "explicit seed (derive it via RngFactory.child)",
                )
                continue
            head, _, tail = called.rpartition(".")
            if numpy_imported and head == "numpy.random" and tail in _NP_GLOBAL_SAMPLERS:
                yield self.finding(
                    relpath,
                    node,
                    f"numpy.random.{tail} draws from hidden global state; use "
                    "a seeded numpy.random.Generator from RngFactory",
                )
            elif random_imported and head == "random" and tail in _PY_GLOBAL_SAMPLERS:
                yield self.finding(
                    relpath,
                    node,
                    f"random.{tail} draws from the shared global Random; use "
                    "a seeded random.Random(seed) instance",
                )
            elif (
                tail == "seed"
                and ((numpy_imported and head == "numpy.random")
                     or (random_imported and head == "random"))
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    relpath,
                    node,
                    "seed() without a value re-seeds from the OS entropy "
                    "pool; pass the seed explicitly",
                )


# --------------------------------------------------------------------------- #
# RL003 — virtual time rules the simulation core
# --------------------------------------------------------------------------- #

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    """No wall-clock reads inside the event-core/simulator/capacity layers.

    The simulators advance *virtual* time on an event heap; a wall-clock
    read in those layers couples results to host speed and breaks the
    replay-exactness the ``CapacityCache`` and the digital twin's
    cumulative bit-identity depend on.  Ingest, checkpointing, and pool
    timeouts legitimately read real time and are out of scope.
    """

    rule_id = "RL003"
    name = "wall-clock"
    rationale = (
        "simulation layers run on virtual time; wall-clock reads make "
        "results host-speed-dependent and break replay exactness"
    )
    include = (
        "src/repro/serving/",
        "src/repro/execution/",
        "src/repro/infra/",
        "src/repro/core/",
        "src/repro/queries/",
        "src/repro/hardware/",
        "src/repro/faults/",
        "src/repro/runtime/capacity.py",
        "src/repro/service/twin.py",
        "src/repro/service/windows.py",
        "src/repro/service/shadow.py",
    )

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            called = _call_name(node, aliases)
            if called in _WALL_CLOCK_CALLS:
                yield self.finding(
                    relpath,
                    node,
                    f"{called}() reads the wall clock inside a virtual-time "
                    "module; simulation state must advance only through the "
                    "event heap",
                )


# --------------------------------------------------------------------------- #
# RL004 — everything submitted to a pool must survive fork+pickle
# --------------------------------------------------------------------------- #


class PickleSafeSubmitRule(Rule):
    """No lambdas or locally-defined functions into ``submit``/``map``.

    ``WorkerPool`` ships tasks to forked workers by pickling; lambdas and
    closures are unpicklable, and the failure only appears when the pool
    actually forks (``jobs > 1``) — the serial path resolves them inline,
    so tests that never fork pass while production sweeps crash.  Task
    functions must be module-level.
    """

    rule_id = "RL004"
    name = "pickle-unsafe-submit"
    rationale = (
        "lambdas/closures don't pickle; the bug hides on serial pools and "
        "fires only when jobs > 1 forks real workers"
    )

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        local_callables = self._locally_defined_callables(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ("submit", "map") or not node.args:
                continue
            task = node.args[0]
            if isinstance(task, ast.Lambda):
                yield self.finding(
                    relpath,
                    node,
                    f"lambda passed to .{node.func.attr}() cannot be pickled "
                    "to a forked worker; define a module-level function",
                )
            elif isinstance(task, ast.Name) and task.id in local_callables:
                yield self.finding(
                    relpath,
                    node,
                    f"locally-defined function {task.id!r} passed to "
                    f".{node.func.attr}() closes over its defining scope and "
                    "cannot be pickled; move it to module level",
                )

    @staticmethod
    def _locally_defined_callables(tree: ast.Module) -> Set[str]:
        """Names of functions defined *inside* another function (closures)."""
        names: Set[str] = set()

        class _Scoped(ast.NodeVisitor):
            def __init__(self) -> None:
                self.depth = 0

            def _visit_fn(self, node: ast.AST) -> None:
                if self.depth > 0:
                    names.add(node.name)  # type: ignore[attr-defined]
                self.depth += 1
                self.generic_visit(node)
                self.depth -= 1

            visit_FunctionDef = _visit_fn
            visit_AsyncFunctionDef = _visit_fn

            def visit_Assign(self, node: ast.Assign) -> None:
                if self.depth > 0 and isinstance(node.value, ast.Lambda):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                self.generic_visit(node)

        _Scoped().visit(tree)
        return names


# --------------------------------------------------------------------------- #
# RL005 — no order-sensitive accumulation over unordered collections
# --------------------------------------------------------------------------- #


class UnorderedIterationRule(Rule):
    """Iteration over ``set`` / ``.values()`` / ``.keys()`` must be sorted.

    ``set`` iteration order depends on insertion history and (for strings)
    the per-process hash seed; dict-view iteration is insertion-ordered,
    which is only deterministic when every insertion path is.  In the
    result-producing ``serving``/``experiments`` layers an unordered loop
    silently reorders accumulations — wrap the iterable in ``sorted(...)``
    or justify why insertion order is pinned.
    """

    rule_id = "RL005"
    name = "unordered-iteration"
    rationale = (
        "set/dict-view order is insertion- and hash-seed-dependent; "
        "result-producing loops must sort or justify"
    )
    # utils/sketch.py is result-producing in the same sense as the
    # serving layer: its compactor levels feed reported percentiles, so
    # an unordered accumulation there would silently reorder summaries.
    include = (
        "src/repro/serving/",
        "src/repro/experiments/",
        "src/repro/utils/sketch.py",
    )

    _VIEW_METHODS = ("values", "keys")

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                reason = self._unordered_reason(candidate)
                if reason is not None:
                    yield self.finding(
                        relpath,
                        candidate,
                        f"iterating {reason} feeds results in collection order; "
                        "wrap it in sorted(...) or justify that insertion "
                        "order is deterministic",
                    )

    def _unordered_reason(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return f"a {node.func.id}()"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._VIEW_METHODS
                and not node.args
            ):
                return f"a dict .{node.func.attr}() view"
        return None


# --------------------------------------------------------------------------- #
# RL006 — registered experiment drivers honour the runner's kwarg contract
# --------------------------------------------------------------------------- #


class RegistryContractRule(Rule):
    """Registered experiment drivers must satisfy the CLI routing contract.

    The runner routes worker/cache settings into drivers by signature
    introspection (``registry.experiment_parameters``), so a driver's
    parameters *are* its CLI contract: every parameter needs a default (the
    runner may call with none), the contract must be explicit (no bare
    ``**kwargs`` hiding it), and ``jobs`` / ``capacity_cache_dir`` travel
    as a pair — a parallel driver without cache routing silently recomputes
    capacities that a shared cache should replay.
    """

    rule_id = "RL006"
    name = "registry-contract"
    rationale = (
        "the runner routes jobs/capacity_cache_dir by signature "
        "introspection; an incomplete signature silently drops settings"
    )
    include = ("src/repro/experiments/",)

    _PAIRED = ("jobs", "capacity_cache_dir")

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_registered(node):
                continue
            yield from self._check_driver(node, relpath)

    @staticmethod
    def _is_registered(node: ast.AST) -> bool:
        for decorator in node.decorator_list:  # type: ignore[attr-defined]
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "register_experiment":
                return True
        return False

    def _check_driver(
        self, node: ast.FunctionDef, relpath: str
    ) -> Iterator[Finding]:
        args = node.args
        if args.kwarg is not None:
            yield self.finding(
                relpath,
                node,
                f"registered driver {node.name!r} takes **{args.kwarg.arg}: "
                "the runner routes settings by explicit parameter name, so "
                "the contract must be spelled out",
            )
        positional = args.posonlyargs + args.args
        missing_defaults = [
            arg.arg for arg in positional[: len(positional) - len(args.defaults)]
        ]
        missing_defaults.extend(
            arg.arg
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is None
        )
        if missing_defaults:
            yield self.finding(
                relpath,
                node,
                f"registered driver {node.name!r} has parameters without "
                f"defaults {missing_defaults}: the runner must be able to "
                "invoke every experiment with no arguments",
            )
        names = {arg.arg for arg in positional + args.kwonlyargs}
        jobs, cache = self._PAIRED
        if (jobs in names) != (cache in names):
            present, absent = (jobs, cache) if jobs in names else (cache, jobs)
            yield self.finding(
                relpath,
                node,
                f"registered driver {node.name!r} accepts {present!r} but not "
                f"{absent!r}: worker budget and capacity-cache routing travel "
                "together (a parallel search without the shared cache "
                "recomputes replay-exact results)",
            )


# --------------------------------------------------------------------------- #
# RL007 — no float equality outside bit-identity assertion helpers
# --------------------------------------------------------------------------- #


class FloatEqualityRule(Rule):
    """No ``==`` / ``!=`` against float literals in library code.

    Library logic branching on exact float equality is almost always a
    rounding bug waiting to happen.  The *tests* assert exact float
    equality on purpose (bit-identical replay is the contract under test),
    so this rule scopes to ``src/`` only; a deliberate exact sentinel
    comparison gets an inline justification.
    """

    rule_id = "RL007"
    name = "float-equality"
    rationale = (
        "exact float comparison in library logic is rounding-fragile; "
        "bit-identity assertions belong in tests"
    )
    include = ("src/",)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (left, right) in zip(
                node.ops, zip(operands, operands[1:])
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_float_literal(left) or self._is_float_literal(right):
                    yield self.finding(
                        relpath,
                        node,
                        "== / != against a float literal is rounding-fragile "
                        "in library code; compare with a tolerance, restructure "
                        "the condition, or justify the exact sentinel",
                    )
                    break

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)


# --------------------------------------------------------------------------- #
# RL008 — no silent exception swallowing in the runtime/service layers
# --------------------------------------------------------------------------- #


class SwallowedExceptionRule(Rule):
    """``except Exception`` / bare ``except`` must re-raise or handle the error.

    The runtime pool and the long-running service are exactly the layers
    where a swallowed exception turns into a hung future or a silently
    wrong window.  A broad handler is fine when it *does something* with
    the error — re-raises, binds and routes it (``future._reject(err)``),
    or logs it; a handler that references none of that hides failures.
    """

    rule_id = "RL008"
    name = "swallowed-exception"
    rationale = (
        "a swallowed exception in runtime/service turns into a hung future "
        "or a silently wrong window"
    )
    include = ("src/repro/runtime/", "src/repro/service/")

    _BROAD = {"Exception", "BaseException"}

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles_error(node, aliases):
                continue
            label = (
                "bare except:"
                if node.type is None
                else f"except {ast.unparse(node.type)}:"
            )
            yield self.finding(
                relpath,
                node,
                f"{label} neither re-raises, uses the bound exception, nor "
                "logs — the failure vanishes; bind the error and route or "
                "record it",
            )

    def _is_broad(self, type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True  # bare except
        candidates: Tuple[ast.expr, ...]
        if isinstance(type_node, ast.Tuple):
            candidates = tuple(type_node.elts)
        else:
            candidates = (type_node,)
        return any(
            isinstance(candidate, ast.Name) and candidate.id in self._BROAD
            for candidate in candidates
        )

    @staticmethod
    def _handles_error(node: ast.ExceptHandler, aliases: Dict[str, str]) -> bool:
        bound = node.name
        for child in ast.walk(ast.Module(body=node.body, type_ignores=[])):
            if isinstance(child, ast.Raise):
                return True
            if (
                bound is not None
                and isinstance(child, ast.Name)
                and child.id == bound
                and isinstance(child.ctx, ast.Load)
            ):
                return True
            if isinstance(child, ast.Call):
                called = dotted_name(child.func, aliases)
                if called is not None and "log" in called.lower():
                    return True
        return False


# --------------------------------------------------------------------------- #
# RL010 — blocking socket operations must carry an explicit timeout
# --------------------------------------------------------------------------- #

#: Socket methods that block indefinitely on a socket with no timeout set.
_BLOCKING_SOCKET_METHODS = {
    "accept",
    "connect",
    "recv",
    "recv_into",
    "recvfrom",
    "recvfrom_into",
    "sendall",
}


class SocketTimeoutRule(Rule):
    """Blocking socket calls in runtime/service code must set a timeout.

    The distributed executor's whole failure model rests on "no socket
    operation blocks forever": a partitioned peer must surface as a timeout
    the liveness machinery can act on, never as a hung coordinator or a
    worker stuck in ``recv``.  A bare ``accept``/``recv``/``connect`` on a
    default (blocking, timeout-less) socket silently re-introduces the
    hang; the same applies to the twin service's ingest listener.

    Enforced shape: any function that performs a blocking socket method
    must also call ``.settimeout(...)`` with a non-None argument in that
    same function (or at module top level, for module-scoped sockets), so
    the bound is visible next to the operation it protects.
    ``socket.create_connection`` must pass its ``timeout`` argument
    explicitly (and not ``None``).
    """

    rule_id = "RL010"
    name = "socket-timeout"
    rationale = (
        "a bare accept/recv/connect blocks forever on a partitioned peer; "
        "liveness detection needs every socket op bounded by settimeout or "
        "an explicit connect timeout"
    )
    include = ("src/repro/runtime/", "src/repro/service/")

    @staticmethod
    def _is_none(node: Optional[ast.AST]) -> bool:
        return isinstance(node, ast.Constant) and node.value is None

    def _sets_timeout(self, scope: ast.AST, aliases: Dict[str, str]) -> bool:
        """Whether ``scope`` contains a non-None settimeout-style call,
        without descending into functions nested inside it."""
        for node in self._scope_walk(scope):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "settimeout"
                and node.args
                and not self._is_none(node.args[0])
            ):
                return True
            called = dotted_name(node.func, aliases)
            if (
                called == "socket.setdefaulttimeout"
                and node.args
                and not self._is_none(node.args[0])
            ):
                return True
        return False

    @staticmethod
    def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """Walk ``scope`` without entering nested function/class bodies.

        Every function (however nested) is analysed as its own scope, so
        descending here would double-report nested defs and let an outer
        ``settimeout`` spuriously cover an inner function's socket ops.
        """
        stack: List[ast.AST] = [scope]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
                ):
                    continue
                stack.append(child)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        module_covered = self._sets_timeout(tree, aliases)
        scopes: List[ast.AST] = [tree]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            covered = module_covered or self._sets_timeout(scope, aliases)
            for node in self._scope_walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                called = dotted_name(node.func, aliases)
                if called == "socket.create_connection":
                    timeout = None
                    if len(node.args) >= 2:
                        timeout = node.args[1]
                    for keyword in node.keywords:
                        if keyword.arg == "timeout":
                            timeout = keyword.value
                    if timeout is None or self._is_none(timeout):
                        yield self.finding(
                            relpath,
                            node,
                            "socket.create_connection without an explicit "
                            "timeout blocks forever on an unreachable host; "
                            "pass timeout=<seconds>",
                        )
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BLOCKING_SOCKET_METHODS
                    and not covered
                ):
                    yield self.finding(
                        relpath,
                        node,
                        f"blocking .{node.func.attr}() with no settimeout in "
                        "scope can hang forever on a partitioned peer; call "
                        ".settimeout(<seconds>) on the socket in this "
                        "function first",
                    )


#: The default rule set, in catalog order.  RL009 (docs citations) is not an
#: AST rule and registers separately in ``tools/reprolint/docs_rule.py``.
AST_RULES = (
    BuiltinHashRule,
    UnseededRngRule,
    WallClockRule,
    PickleSafeSubmitRule,
    UnorderedIterationRule,
    RegistryContractRule,
    FloatEqualityRule,
    SwallowedExceptionRule,
    SocketTimeoutRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every AST rule."""
    return [rule() for rule in AST_RULES]
