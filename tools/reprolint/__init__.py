"""``reprolint``: AST-based checker for this repository's project invariants.

Run as ``python -m tools.reprolint src tests benchmarks examples``.  The
rule catalog, suppression syntax, and baseline policy are documented in
``docs/static-analysis.md``.
"""

from tools.reprolint.engine import Baseline, Finding, Rule, lint_paths, lint_text
from tools.reprolint.rules import AST_RULES, default_rules

__all__ = [
    "AST_RULES",
    "Baseline",
    "Finding",
    "Rule",
    "default_rules",
    "lint_paths",
    "lint_text",
]
