"""The ``reprolint`` engine: file walking, suppressions, baseline, reporting.

``reprolint`` is an AST-based checker for this repository's *project
invariants* — the determinism, concurrency, and contract rules the test
suite can only spot-check (see ``docs/static-analysis.md`` for the rule
catalog).  This module is the rule-agnostic machinery:

* :class:`Finding` — one violation at a ``path:line:col``;
* :class:`Rule` — the base class rules subclass (``tools/reprolint/rules.py``
  holds the concrete AST rules, ``tools/reprolint/docs_rule.py`` the
  markdown citation rule);
* inline suppressions — ``# reprolint: disable=RL001 -- <why>`` silences
  matching findings on that line, ``# reprolint: disable-file=RL003 -- <why>``
  for a whole file.  The justification after ``--`` is **required**: a
  suppression without one, or one that suppresses nothing, is itself a
  finding (``RL000``), so the suppression inventory can never rot;
* a baseline — a JSON file of grandfathered ``path::rule`` finding counts
  for adopting a rule before the tree is clean.  Findings beyond the
  baselined count still fail, so baselined debt can shrink but not grow.

The engine is stdlib-only by design: it must run in CI and in bare
checkouts with no dependencies beyond the interpreter.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Rule id of engine-level findings: parse failures and bad/unused
#: suppressions.  Not suppressible (a suppression problem must be fixed).
META_RULE = "RL000"

#: Matches "reprolint: disable=<rules> -- <why>" comments (and disable-file).
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The canonical ``file:line:col RULE message`` form."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for ``--format=json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id`/:attr:`name`/:attr:`rationale` and
    implement :meth:`check`.  ``include``/``exclude`` are repo-relative
    POSIX path prefixes scoping where the rule applies: empty ``include``
    means everywhere the CLI was pointed at.
    """

    rule_id: str = "RL???"
    name: str = ""
    rationale: str = ""
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule scans the file at ``relpath``."""
        if any(relpath.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.include:
            return True
        return any(relpath.startswith(prefix) for prefix in self.include)

    def check(self, tree: ast.Module, relpath: str) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(self, relpath: str, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``."""
        return Finding(
            path=relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )


@dataclass
class _Suppression:
    """One parsed suppression comment."""

    line: int
    kind: str  # "disable" | "disable-file"
    rules: Tuple[str, ...]
    why: Optional[str]
    used: bool = False


def parse_suppressions(source: str) -> List[_Suppression]:
    """Extract every suppression comment from ``source``, in line order.

    Only real ``COMMENT`` tokens count — a suppression *mentioned* in a
    docstring or string literal (this module's own docstring, a test
    fixture embedded as a string) is documentation, not a directive.
    """
    suppressions = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []  # unparseable files already yield an RL000 parse finding
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",")
        )
        suppressions.append(
            _Suppression(
                line=token.start[0],
                kind=match.group("kind"),
                rules=rules,
                why=match.group("why"),
            )
        )
    return suppressions


def _apply_suppressions(
    findings: List[Finding],
    suppressions: List[_Suppression],
    relpath: str,
) -> List[Finding]:
    """Drop suppressed findings; add RL000 for bad/unused suppressions."""
    kept: List[Finding] = []
    for finding in findings:
        suppressed = False
        for suppression in suppressions:
            if suppression.why is None:
                continue  # invalid suppressions never silence anything
            if finding.rule not in suppression.rules:
                continue
            if suppression.kind == "disable-file" or suppression.line == finding.line:
                suppression.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)
    for suppression in suppressions:
        if suppression.why is None:
            kept.append(
                Finding(
                    path=relpath,
                    line=suppression.line,
                    col=1,
                    rule=META_RULE,
                    message=(
                        "suppression is missing its justification: write "
                        "'# reprolint: disable=RULE -- <why this is safe>'"
                    ),
                )
            )
        elif not suppression.used:
            kept.append(
                Finding(
                    path=relpath,
                    line=suppression.line,
                    col=1,
                    rule=META_RULE,
                    message=(
                        f"suppression for {', '.join(suppression.rules)} matches "
                        "no finding on this "
                        + ("file" if suppression.kind == "disable-file" else "line")
                        + "; delete it (stale suppressions hide future regressions)"
                    ),
                )
            )
    return kept


# --------------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------------- #


@dataclass
class Baseline:
    """Grandfathered finding counts, keyed ``"<relpath>::<rule>"``.

    A baseline lets a new rule land while the tree still has known
    violations: up to ``entries[key]`` findings for that file/rule pair are
    absorbed (earliest lines first, a deterministic choice), anything past
    the count still fails.  Fixing a finding therefore never *requires* a
    baseline edit, while introducing one always fails.
    """

    entries: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError(f"baseline {path} has no 'entries' object")
        return cls(entries={str(key): int(count) for key, count in entries.items()})

    def save(self, path: Path) -> None:
        """Write the baseline (sorted keys, so diffs stay reviewable)."""
        payload = {
            "comment": (
                "Grandfathered reprolint findings: '<path>::<rule>' -> count. "
                "Counts may only shrink; new findings always fail."
            ),
            "entries": dict(sorted(self.entries.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """The baseline that would absorb exactly ``findings``."""
        entries: Dict[str, int] = {}
        for finding in findings:
            if finding.rule == META_RULE:
                continue  # suppression hygiene is never grandfathered
            key = f"{finding.path}::{finding.rule}"
            entries[key] = entries.get(key, 0) + 1
        return cls(entries=entries)

    def filter(self, findings: List[Finding]) -> List[Finding]:
        """Findings with up to the baselined count per file/rule absorbed."""
        remaining = dict(self.entries)
        kept = []
        for finding in sorted(findings):
            key = f"{finding.path}::{finding.rule}"
            if finding.rule != META_RULE and remaining.get(key, 0) > 0:
                remaining[key] -= 1
                continue
            kept.append(finding)
        return kept


# --------------------------------------------------------------------------- #
# Driving
# --------------------------------------------------------------------------- #


def lint_text(
    source: str,
    relpath: str,
    rules: Sequence[Rule],
) -> List[Finding]:
    """Lint one python source text as if it lived at ``relpath``."""
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [
            Finding(
                path=relpath,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                rule=META_RULE,
                message=f"file does not parse: {error.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        if rule.applies_to(relpath):
            findings.extend(rule.check(tree, relpath))
    return _apply_suppressions(findings, parse_suppressions(source), relpath)


def iter_python_files(paths: Sequence[Path], root: Path) -> Iterator[Tuple[Path, str]]:
    """``(file, repo-relative posix path)`` for every python file under ``paths``."""
    seen = set()
    for path in paths:
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or "__pycache__" in resolved.parts:
                continue
            seen.add(resolved)
            try:
                relpath = resolved.relative_to(root).as_posix()
            except ValueError:
                relpath = candidate.as_posix()
            yield resolved, relpath


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    root: Path,
    baseline: Optional[Baseline] = None,
) -> List[Finding]:
    """Lint every python file under ``paths``; findings sorted by location."""
    findings: List[Finding] = []
    for file_path, relpath in iter_python_files(paths, root):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_text(source, relpath, rules))
    if baseline is not None:
        findings = baseline.filter(findings)
    return sorted(findings)
