"""Command-line entry point for reprolint.

Usage::

    python -m tools.reprolint src tests benchmarks examples
    python -m tools.reprolint --format=json src
    python -m tools.reprolint --write-baseline src   # grandfather the tree

Exit status: 0 when the tree is clean (after suppressions and baseline),
1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from tools.reprolint.docs_rule import RULE_ID as DOCS_RULE_ID
from tools.reprolint.docs_rule import check_doc_citations
from tools.reprolint.engine import Baseline, Finding, lint_paths
from tools.reprolint.rules import default_rules


def repo_root() -> Path:
    """The checkout root (parent of the ``tools`` package)."""
    return Path(__file__).resolve().parent.parent.parent


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


def run(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based project-invariant checker (rules RL001-RL010).",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories to lint (e.g. src tests benchmarks examples)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json includes a summary block)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="rule id to skip (repeatable), e.g. --disable RL005",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: {default_baseline_path()})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-docs-rule",
        action="store_true",
        help=f"skip the {DOCS_RULE_ID} docs-citation check",
    )
    args = parser.parse_args(argv)

    root = repo_root()
    rules = default_rules()
    if args.select:
        rules = [rule for rule in rules if rule.rule_id in args.select]
    if args.disable:
        rules = [rule for rule in rules if rule.rule_id not in args.disable]

    started = time.perf_counter()
    targets = [Path(path) for path in args.paths]
    for target in targets:
        if not target.exists():
            print(f"error: path {target} does not exist", file=sys.stderr)
            return 2

    findings: List[Finding] = lint_paths(targets, rules, root)
    run_docs_rule = not args.no_docs_rule and (
        not args.select or DOCS_RULE_ID in args.select
    ) and DOCS_RULE_ID not in args.disable
    if run_docs_rule:
        findings.extend(check_doc_citations(root))
    findings.sort()

    baseline_path = args.baseline or default_baseline_path()
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote baseline for {len(findings)} finding(s) to {baseline_path}")
        return 0
    findings = Baseline.load(baseline_path).filter(findings)
    elapsed_s = time.perf_counter() - started

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [finding.to_dict() for finding in findings],
                    "summary": {
                        "findings": len(findings),
                        "rules": sorted({f.rule for f in findings}),
                        "paths": [str(path) for path in targets],
                        "elapsed_s": round(elapsed_s, 3),
                    },
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        print(
            f"reprolint: {len(findings)} finding(s) across "
            f"{len(targets)} path(s) in {elapsed_s:.2f} s"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(run())
