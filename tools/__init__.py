"""Repository tooling: documentation checks and the ``reprolint`` static analyser."""
