#!/usr/bin/env python
"""Validate intra-repo markdown links (paths and heading anchors).

Scans ``README.md`` and everything under ``docs/`` for markdown links,
resolves each relative target against the linking file, and fails on:

* links to files that do not exist in the checkout;
* ``#fragment`` anchors that do not match any heading in the target
  markdown file (GitHub slug rules: lowercase, punctuation stripped,
  spaces to dashes).

External links (``http(s)://``, ``mailto:``) are ignored — CI must not
depend on the network.  Run from anywhere inside the repo::

    python tools/check_docs.py

Exit status is the number of broken links (0 = docs are sound).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: ``[text](target)`` — target captured up to the closing paren (markdown
#: titles after a space are not used in this repo's docs).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
#: Fenced code blocks must not contribute headings or links.
FENCE_RE = re.compile(r"^(```|~~~)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def doc_files(root: Path) -> List[Path]:
    """The markdown files whose links the repo guarantees."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return [path for path in files if path.is_file()]


def iter_content_lines(text: str) -> Iterable[str]:
    """Markdown lines with fenced code blocks blanked out."""
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield line


def heading_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line's text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_]", "", text)  # emphasis markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> List[str]:
    slugs = []
    for line in iter_content_lines(path.read_text(encoding="utf-8")):
        match = HEADING_RE.match(line)
        if match:
            slugs.append(heading_slug(match.group(1)))
    return slugs


def extract_links(path: Path) -> List[str]:
    return [
        target
        for line in iter_content_lines(path.read_text(encoding="utf-8"))
        for target in LINK_RE.findall(line)
    ]


def check_link(source: Path, target: str) -> List[str]:
    """Problems (possibly none) with one link from ``source``."""
    if target.startswith(EXTERNAL_PREFIXES):
        return []
    path_part, _, fragment = target.partition("#")
    if not path_part:  # same-file anchor
        resolved = source
    else:
        resolved = (source.parent / path_part).resolve()
        if not resolved.exists():
            return [f"{source}: broken link target {target!r}"]
    if fragment:
        if resolved.suffix != ".md":
            return []  # anchors into non-markdown files are out of scope
        if heading_slug(fragment) not in heading_slugs(resolved):
            return [f"{source}: no heading for anchor {target!r}"]
    return []


def check_paths(paths: Iterable[Path]) -> Tuple[int, List[str]]:
    """Check every link in ``paths``; return (links seen, problems)."""
    seen = 0
    problems: List[str] = []
    for path in paths:
        links = extract_links(path)
        seen += len(links)
        for target in links:
            problems.extend(check_link(path, target))
    return seen, problems


def main() -> int:
    root = repo_root()
    files = doc_files(root)
    seen, problems = check_paths(files)
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {seen} links across {len(files)} files: {len(problems)} broken")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
