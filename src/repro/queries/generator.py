"""Recommendation inference load generator.

Combines an arrival process with a query-size distribution to produce a
stream of :class:`~repro.queries.query.Query` records, mirroring the load
generator inside DeepRecInfra (Fig. 8): arrival rate and working-set size are
configured independently, and both default to the production-representative
choices (Poisson arrivals, heavy-tail sizes).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.queries.arrival import ArrivalProcess, PoissonArrival
from repro.queries.query import Query
from repro.queries.size_dist import ProductionQuerySizes, QuerySizeDistribution
from repro.utils.rng import RngFactory
from repro.utils.validation import check_positive


class LoadGenerator:
    """Generates reproducible query streams for the serving simulator."""

    def __init__(
        self,
        arrival: Optional[ArrivalProcess] = None,
        sizes: Optional[QuerySizeDistribution] = None,
        seed: Optional[int] = None,
    ) -> None:
        self._arrival = arrival if arrival is not None else PoissonArrival(rate_qps=100.0)
        self._sizes = sizes if sizes is not None else ProductionQuerySizes()
        self._rng_factory = RngFactory(seed)

    @property
    def arrival(self) -> ArrivalProcess:
        """The configured arrival process."""
        return self._arrival

    @property
    def sizes(self) -> QuerySizeDistribution:
        """The configured query-size distribution."""
        return self._sizes

    @property
    def seed(self) -> Optional[int]:
        """The seed this generator's reproducible streams derive from."""
        return self._rng_factory.seed

    def with_rate(self, rate_qps: float) -> "LoadGenerator":
        """Return a new generator identical to this one but at a different rate."""
        check_positive("rate_qps", rate_qps)
        return LoadGenerator(
            arrival=self._arrival.with_rate(rate_qps),
            sizes=self._sizes,
            seed=self._rng_factory.seed,
        )

    def generate(self, num_queries: int, start_time: float = 0.0) -> List[Query]:
        """Generate ``num_queries`` queries starting at ``start_time``."""
        check_positive("num_queries", num_queries)
        arrival_rng = self._rng_factory.child("arrivals")
        size_rng = self._rng_factory.child("sizes")
        arrival_times = self._arrival.arrival_times(num_queries, arrival_rng, start_time)
        sizes = self._sizes.sample(num_queries, size_rng)
        # tolist() yields native Python floats/ints in one C pass, which is
        # much cheaper than casting numpy scalars one by one.
        return [
            Query(idx, t, size)
            for idx, (t, size) in enumerate(zip(arrival_times.tolist(), sizes.tolist()))
        ]

    def iter_queries(
        self, num_queries: int, start_time: float = 0.0, chunk_queries: int = 65536
    ) -> Iterator[Query]:
        """Lazily yield ``num_queries`` queries in bounded chunks.

        Streaming counterpart of :meth:`generate` for traces too large to
        materialise: at most one ``chunk_queries``-sized numpy chunk is alive
        at a time, and queries are yielded in arrival order with sequential
        ids, satisfying the
        :meth:`repro.serving.cluster.ClusterSimulator.run_stream` contract.

        The stream draws from its own RNG children (``chunked-arrivals`` /
        ``chunked-sizes``): sizes are sampled per chunk (a different draw
        order than :meth:`generate`'s single pass) and arrival cumulative
        sums restart per chunk, so for a given seed this is a distinct,
        schema-versioned sequence — deliberately not bit-identical to
        :meth:`generate`, and regression-pinned in
        ``tests/test_queries_generator_trace.py``.
        """
        check_positive("num_queries", num_queries)
        arrival_rng = self._rng_factory.child("chunked-arrivals")
        size_rng = self._rng_factory.child("chunked-sizes")
        query_id = 0
        for times in self._arrival.arrival_time_chunks(
            num_queries, arrival_rng, start_time, chunk_queries
        ):
            sizes = self._sizes.sample(int(times.size), size_rng)
            for t, size in zip(times.tolist(), sizes.tolist()):
                yield Query(query_id, t, size)
                query_id += 1

    def generate_for_duration(
        self, duration_s: float, start_time: float = 0.0, max_queries: int = 2_000_000
    ) -> List[Query]:
        """Generate queries until ``duration_s`` of simulated time has elapsed."""
        check_positive("duration_s", duration_s)
        expected = int(np.ceil(self._arrival.rate_qps * duration_s * 1.25)) + 16
        expected = min(expected, max_queries)
        queries = self.generate(expected, start_time)
        cutoff = start_time + duration_s
        return [q for q in queries if q.arrival_time <= cutoff]
