"""Query inter-arrival-time processes.

The paper profiles production recommendation services and finds query arrival
rates follow a Poisson process (Section III-C); the load generator therefore
defaults to Poisson arrivals but also supports fixed-rate and uniform-jitter
processes, which prior work on web-service load generation commonly assumes —
the difference matters when sizing queueing headroom.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive


class ArrivalProcess(ABC):
    """Generates inter-arrival times for a target average arrival rate."""

    def __init__(self, rate_qps: float) -> None:
        check_positive("rate_qps", rate_qps)
        self._rate_qps = float(rate_qps)

    @property
    def rate_qps(self) -> float:
        """Average arrival rate in queries per second."""
        return self._rate_qps

    @property
    def mean_inter_arrival_s(self) -> float:
        """Mean gap between consecutive queries, seconds."""
        return 1.0 / self._rate_qps

    @abstractmethod
    def inter_arrival_times(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Sample ``count`` inter-arrival gaps (seconds)."""

    def arrival_times(self, count: int, rng: SeedLike = None, start: float = 0.0) -> np.ndarray:
        """Absolute arrival timestamps of ``count`` queries starting at ``start``."""
        check_positive("count", count)
        gaps = self.inter_arrival_times(count, rng)
        return start + np.cumsum(gaps)

    def arrival_time_chunks(
        self,
        count: int,
        rng: SeedLike = None,
        start: float = 0.0,
        chunk_queries: int = 65536,
    ) -> Iterator[np.ndarray]:
        """Absolute arrival timestamps in bounded numpy chunks.

        Gaps are drawn chunk by chunk from the same generator stream as
        :meth:`arrival_times` (per-value draws concatenate identically), but
        the running sum restarts at each chunk boundary, so the chunked
        timestamps associate floating-point additions differently: this is
        its own schema-versioned sequence, regression-pinned in
        ``tests/test_queries_generator_trace.py``, not bit-identical to
        :meth:`arrival_times`.  Peak memory is ``O(chunk_queries)``
        regardless of ``count``.
        """
        check_positive("count", count)
        check_positive("chunk_queries", chunk_queries)
        generator = derive_rng(rng)
        offset = float(start)
        produced = 0
        while produced < count:
            block = min(chunk_queries, count - produced)
            gaps = self.inter_arrival_times(block, generator)
            times = offset + np.cumsum(gaps)
            offset = float(times[-1])
            produced += block
            yield times

    def with_rate(self, rate_qps: float) -> "ArrivalProcess":
        """Return a copy of this process at a different average rate."""
        return type(self)(rate_qps)


class PoissonArrival(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival gaps (production default)."""

    def inter_arrival_times(self, count: int, rng: SeedLike = None) -> np.ndarray:
        check_positive("count", count)
        generator = derive_rng(rng)
        return generator.exponential(self.mean_inter_arrival_s, size=count)


class FixedArrival(ArrivalProcess):
    """Perfectly regular arrivals (closed-loop load-test style)."""

    def inter_arrival_times(self, count: int, rng: SeedLike = None) -> np.ndarray:
        check_positive("count", count)
        return np.full(count, self.mean_inter_arrival_s)


class UniformJitterArrival(ArrivalProcess):
    """Regular arrivals with +/-50 % uniform jitter around the mean gap."""

    def inter_arrival_times(self, count: int, rng: SeedLike = None) -> np.ndarray:
        check_positive("count", count)
        generator = derive_rng(rng)
        mean = self.mean_inter_arrival_s
        return generator.uniform(0.5 * mean, 1.5 * mean, size=count)


_ARRIVAL_REGISTRY = {
    "poisson": PoissonArrival,
    "fixed": FixedArrival,
    "uniform": UniformJitterArrival,
}


def get_arrival_process(name: str, rate_qps: float) -> ArrivalProcess:
    """Build a named arrival process (``"poisson"``, ``"fixed"``, ``"uniform"``)."""
    key = name.lower()
    if key not in _ARRIVAL_REGISTRY:
        raise KeyError(
            f"unknown arrival process {name!r}; available: {sorted(_ARRIVAL_REGISTRY)}"
        )
    return _ARRIVAL_REGISTRY[key](rate_qps)
