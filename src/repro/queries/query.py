"""Query record produced by the load generator and consumed by the simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class Query:
    """One recommendation inference query.

    A query asks for the click-through rates of ``size`` candidate items for
    one user; the serving system may split it into multiple requests and/or
    offload it to an accelerator, but its latency is measured end to end from
    ``arrival_time`` until the last of its items has been scored.

    ``__slots__`` keeps the per-query footprint small and attribute access
    fast — simulated runs hold hundreds of thousands of these (works with a
    dataclass because no field has a default).

    Attributes
    ----------
    query_id:
        Monotonically increasing identifier within a trace.
    arrival_time:
        Absolute arrival timestamp in seconds.
    size:
        Number of candidate items to score (the "working set size").
    """

    __slots__ = ("query_id", "arrival_time", "size")

    query_id: int
    arrival_time: float
    size: int

    def __post_init__(self) -> None:
        # Load generators construct queries by the hundred thousand, so the
        # valid case takes a single guard; the helpers (and their error
        # messages) only run for bad values.
        if self.query_id >= 0 and self.arrival_time >= 0.0 and self.size > 0:
            return
        check_non_negative("query_id", self.query_id)
        check_non_negative("arrival_time", self.arrival_time)
        check_positive("size", self.size)
