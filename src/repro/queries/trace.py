"""Query traces: serialisation and diurnal traffic modulation.

The production study of Fig. 13 runs over 24 hours of live traffic whose
arrival rate follows the usual diurnal pattern.  :class:`DiurnalPattern`
modulates a base arrival rate over the day, and :class:`QueryTrace` is a
serialisable container so traces can be recorded once and replayed across
experiments (or shared between the datacenter-cluster simulation and
single-node runs).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.queries.arrival import PoissonArrival
from repro.queries.query import Query
from repro.queries.size_dist import ProductionQuerySizes, QuerySizeDistribution
from repro.utils.rng import RngFactory
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class DiurnalPattern:
    """Sinusoidal day/night arrival-rate modulation.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t/period - phase)))``

    Attributes
    ----------
    amplitude:
        Peak-to-mean swing (0.4 means peak traffic is 40 % above the mean).
    period_s:
        Length of one traffic cycle (24 h by default).
    phase:
        Fraction of the period by which the peak is shifted.
    """

    amplitude: float = 0.4
    period_s: float = 24 * 3600.0
    phase: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {self.amplitude}")
        check_positive("period_s", self.period_s)

    def rate_multiplier(self, time_s: float) -> float:
        """Traffic multiplier (> 0) at absolute time ``time_s``."""
        check_non_negative("time_s", time_s)
        angle = 2.0 * math.pi * (time_s / self.period_s - self.phase)
        return 1.0 + self.amplitude * math.sin(angle)


class QueryTrace:
    """An ordered list of queries with save/load helpers."""

    def __init__(self, queries: Sequence[Query]) -> None:
        self._queries = sorted(queries, key=lambda q: q.arrival_time)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self):
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    @property
    def queries(self) -> List[Query]:
        """The queries in arrival order (a copy)."""
        return list(self._queries)

    @property
    def duration_s(self) -> float:
        """Time spanned by the trace."""
        if not self._queries:
            return 0.0
        return self._queries[-1].arrival_time - self._queries[0].arrival_time

    @property
    def mean_rate_qps(self) -> float:
        """Average arrival rate over the trace."""
        if len(self._queries) < 2 or self.duration_s == 0:
            return 0.0
        return (len(self._queries) - 1) / self.duration_s

    def total_items(self) -> int:
        """Sum of query sizes (total inference work in candidate items)."""
        return sum(q.size for q in self._queries)

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines (query_id, arrival_time, size)."""
        path = Path(path)
        with path.open("w") as handle:
            for query in self._queries:
                record = {
                    "query_id": query.query_id,
                    "arrival_time": query.arrival_time,
                    "size": query.size,
                }
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "QueryTrace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        queries = []
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                queries.append(
                    Query(
                        query_id=int(record["query_id"]),
                        arrival_time=float(record["arrival_time"]),
                        size=int(record["size"]),
                    )
                )
        return cls(queries)


def generate_diurnal_trace(
    base_rate_qps: float,
    duration_s: float,
    pattern: Optional[DiurnalPattern] = None,
    sizes: Optional[QuerySizeDistribution] = None,
    seed: Optional[int] = None,
    time_step_s: float = 60.0,
) -> QueryTrace:
    """Generate a trace whose arrival rate follows a diurnal pattern.

    The duration is split into ``time_step_s`` windows; each window draws
    Poisson arrivals at the diurnally modulated rate.  Used by the Fig. 13
    production-cluster experiment.
    """
    check_positive("base_rate_qps", base_rate_qps)
    check_positive("duration_s", duration_s)
    check_positive("time_step_s", time_step_s)
    pattern = pattern if pattern is not None else DiurnalPattern()
    sizes = sizes if sizes is not None else ProductionQuerySizes()
    factory = RngFactory(seed)
    arrival_rng = factory.child("diurnal-arrivals")
    size_rng = factory.child("diurnal-sizes")

    queries: List[Query] = []
    query_id = 0
    window_start = 0.0
    while window_start < duration_s:
        window = min(time_step_s, duration_s - window_start)
        rate = base_rate_qps * pattern.rate_multiplier(window_start)
        expected = rate * window
        count = int(arrival_rng.poisson(expected))
        if count > 0:
            offsets = np.sort(arrival_rng.uniform(0.0, window, size=count))
            window_sizes = sizes.sample(count, size_rng)
            for offset, size in zip(offsets, window_sizes):
                queries.append(
                    Query(
                        query_id=query_id,
                        arrival_time=float(window_start + offset),
                        size=int(size),
                    )
                )
                query_id += 1
        window_start += window
    return QueryTrace(queries)
