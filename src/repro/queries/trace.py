"""Query traces: serialisation, diurnal traffic modulation, chunked synthesis.

The production study of Fig. 13 runs over 24 hours of live traffic whose
arrival rate follows the usual diurnal pattern.  :class:`DiurnalPattern`
modulates a base arrival rate over the day, and :class:`QueryTrace` is a
serialisable container so traces can be recorded once and replayed across
experiments (or shared between the datacenter-cluster simulation and
single-node runs).

Two synthesis paths produce diurnal traces:

* :func:`generate_diurnal_trace` — the original per-window homogeneous
  Poisson construction, materialised as a :class:`QueryTrace`.  Its seeded
  output is **bit-identical** to every earlier release (the per-window RNG
  draw order is preserved; only the Query construction is batched).
* :func:`iter_diurnal_trace` / :func:`count_diurnal_queries` — the chunked
  streaming path for ≥10⁶-query traces: arrivals are synthesised per time
  slice by *thinning* a homogeneous Poisson process at the diurnal peak
  rate (candidates kept with probability ``rate(t) / rate_max``, the exact
  inhomogeneous-Poisson construction), in numpy chunks, so a 10⁷-query
  trace never materialises per-query Python objects.  This stream draws
  from its own schema-versioned RNG children
  (:data:`TRACE_SCHEMA_VERSION`), is deliberately *not* bit-identical to
  :func:`generate_diurnal_trace`, and is regression-pinned by
  ``tests/test_queries_generator_trace.py``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.queries.arrival import PoissonArrival
from repro.queries.query import Query
from repro.queries.size_dist import ProductionQuerySizes, QuerySizeDistribution
from repro.utils.rng import RngFactory
from repro.utils.validation import check_non_negative, check_positive

#: Schema version of the chunked thinning synthesis stream.  Folded into the
#: RNG child names (``diurnal-v1-arrivals`` / ``diurnal-v1-sizes``), so a
#: change to the synthesis algorithm bumps the version and can never silently
#: replay old seeds onto a different sequence.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class DiurnalPattern:
    """Sinusoidal day/night arrival-rate modulation.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t/period - phase)))``

    Attributes
    ----------
    amplitude:
        Peak-to-mean swing (0.4 means peak traffic is 40 % above the mean).
    period_s:
        Length of one traffic cycle (24 h by default).
    phase:
        Fraction of the period by which the peak is shifted.
    """

    amplitude: float = 0.4
    period_s: float = 24 * 3600.0
    phase: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {self.amplitude}")
        check_positive("period_s", self.period_s)

    def rate_multiplier(self, time_s: float) -> float:
        """Traffic multiplier (> 0) at absolute time ``time_s``."""
        check_non_negative("time_s", time_s)
        angle = 2.0 * math.pi * (time_s / self.period_s - self.phase)
        return 1.0 + self.amplitude * math.sin(angle)


class QueryTrace:
    """An ordered list of queries with save/load helpers."""

    def __init__(self, queries: Sequence[Query]) -> None:
        self._queries = sorted(queries, key=lambda q: q.arrival_time)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self):
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    @property
    def queries(self) -> List[Query]:
        """The queries in arrival order (a copy)."""
        return list(self._queries)

    @property
    def duration_s(self) -> float:
        """Time spanned by the trace."""
        if not self._queries:
            return 0.0
        return self._queries[-1].arrival_time - self._queries[0].arrival_time

    @property
    def mean_rate_qps(self) -> float:
        """Average arrival rate over the trace."""
        if len(self._queries) < 2 or self.duration_s == 0:
            return 0.0
        return (len(self._queries) - 1) / self.duration_s

    def total_items(self) -> int:
        """Sum of query sizes (total inference work in candidate items)."""
        return sum(q.size for q in self._queries)

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines (query_id, arrival_time, size)."""
        path = Path(path)
        with path.open("w") as handle:
            for query in self._queries:
                record = {
                    "query_id": query.query_id,
                    "arrival_time": query.arrival_time,
                    "size": query.size,
                }
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "QueryTrace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        queries = []
        with path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                queries.append(
                    Query(
                        query_id=int(record["query_id"]),
                        arrival_time=float(record["arrival_time"]),
                        size=int(record["size"]),
                    )
                )
        return cls(queries)


def generate_diurnal_trace(
    base_rate_qps: float,
    duration_s: float,
    pattern: Optional[DiurnalPattern] = None,
    sizes: Optional[QuerySizeDistribution] = None,
    seed: Optional[int] = None,
    time_step_s: float = 60.0,
) -> QueryTrace:
    """Generate a trace whose arrival rate follows a diurnal pattern.

    The duration is split into ``time_step_s`` windows; each window draws
    Poisson arrivals at the diurnally modulated rate.  Used by the Fig. 13
    production-cluster experiment.

    The seeded output is bit-identical to earlier releases: the per-window
    RNG draw order (poisson count, then sorted uniform offsets, then sizes)
    is unchanged; only the ``Query`` construction is batched into a single
    vectorised pass over the concatenated arrays.
    """
    check_positive("base_rate_qps", base_rate_qps)
    check_positive("duration_s", duration_s)
    check_positive("time_step_s", time_step_s)
    pattern = pattern if pattern is not None else DiurnalPattern()
    sizes = sizes if sizes is not None else ProductionQuerySizes()
    factory = RngFactory(seed)
    arrival_rng = factory.child("diurnal-arrivals")
    size_rng = factory.child("diurnal-sizes")

    arrival_blocks: List[np.ndarray] = []
    size_blocks: List[np.ndarray] = []
    window_start = 0.0
    while window_start < duration_s:
        window = min(time_step_s, duration_s - window_start)
        rate = base_rate_qps * pattern.rate_multiplier(window_start)
        expected = rate * window
        count = int(arrival_rng.poisson(expected))
        if count > 0:
            offsets = np.sort(arrival_rng.uniform(0.0, window, size=count))
            arrival_blocks.append(window_start + offsets)
            size_blocks.append(sizes.sample(count, size_rng))
        window_start += window
    if not arrival_blocks:
        return QueryTrace([])
    arrival_times = np.concatenate(arrival_blocks).tolist()
    query_sizes = np.concatenate(size_blocks).tolist()
    queries = [
        Query(query_id=index, arrival_time=time, size=size)
        for index, (time, size) in enumerate(zip(arrival_times, query_sizes))
    ]
    return QueryTrace(queries)


def _diurnal_arrival_chunks(
    base_rate_qps: float,
    pattern: DiurnalPattern,
    arrival_rng: np.random.Generator,
    duration_s: float,
    time_step_s: float,
) -> Iterator[np.ndarray]:
    """Accepted arrival timestamps of the v1 thinning stream, per time slice.

    Each slice draws a homogeneous Poisson candidate set at the diurnal peak
    rate ``base * (1 + amplitude)`` and keeps candidates with probability
    ``rate(t) / rate_max`` evaluated at the candidate's own timestamp, which
    is the exact inhomogeneous-Poisson thinning construction — the slice
    length only controls chunk granularity, not the sampled law.
    """
    rate_max = base_rate_qps * (1.0 + pattern.amplitude)
    window_start = 0.0
    while window_start < duration_s:
        window = min(time_step_s, duration_s - window_start)
        candidates = int(arrival_rng.poisson(rate_max * window))
        if candidates > 0:
            times = np.sort(
                arrival_rng.uniform(window_start, window_start + window, size=candidates)
            )
            multiplier = 1.0 + pattern.amplitude * np.sin(
                2.0 * math.pi * (times / pattern.period_s - pattern.phase)
            )
            keep = arrival_rng.random(candidates) * (1.0 + pattern.amplitude) < multiplier
            accepted = times[keep]
            if accepted.size:
                yield accepted
        window_start += window


def diurnal_trace_chunks(
    base_rate_qps: float,
    duration_s: float,
    pattern: Optional[DiurnalPattern] = None,
    sizes: Optional[QuerySizeDistribution] = None,
    seed: Optional[int] = None,
    time_step_s: float = 60.0,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Chunked diurnal synthesis: yields ``(arrival_times, sizes)`` arrays.

    The memory-bounded core of :func:`iter_diurnal_trace`: each yielded pair
    covers one ``time_step_s`` slice (float64 timestamps in arrival order and
    int64 sizes), so peak memory is proportional to the per-slice arrival
    count, never the trace length.  The stream is schema-versioned
    (:data:`TRACE_SCHEMA_VERSION`): it draws from the RNG children
    ``diurnal-v1-arrivals`` / ``diurnal-v1-sizes`` and is not bit-identical
    to :func:`generate_diurnal_trace`, which models each window as a
    homogeneous process at the window-start rate instead of thinning.
    """
    check_positive("base_rate_qps", base_rate_qps)
    check_positive("duration_s", duration_s)
    check_positive("time_step_s", time_step_s)
    pattern = pattern if pattern is not None else DiurnalPattern()
    sizes = sizes if sizes is not None else ProductionQuerySizes()
    factory = RngFactory(seed)
    arrival_rng = factory.child("diurnal-v1-arrivals")
    size_rng = factory.child("diurnal-v1-sizes")
    for times in _diurnal_arrival_chunks(
        base_rate_qps, pattern, arrival_rng, duration_s, time_step_s
    ):
        yield times, sizes.sample(int(times.size), size_rng)


def count_diurnal_queries(
    base_rate_qps: float,
    duration_s: float,
    pattern: Optional[DiurnalPattern] = None,
    seed: Optional[int] = None,
    time_step_s: float = 60.0,
) -> int:
    """Number of queries :func:`iter_diurnal_trace` will yield for these args.

    Replays only the arrival stream (sizes draw from a separate RNG child,
    so skipping them cannot perturb the count), which makes the two-pass
    ``count`` + ``iter`` pattern cheap enough for
    :meth:`repro.serving.cluster.ClusterSimulator.run_stream`, whose
    contract requires the query count up front.
    """
    check_positive("base_rate_qps", base_rate_qps)
    check_positive("duration_s", duration_s)
    check_positive("time_step_s", time_step_s)
    pattern = pattern if pattern is not None else DiurnalPattern()
    arrival_rng = RngFactory(seed).child("diurnal-v1-arrivals")
    return sum(
        int(times.size)
        for times in _diurnal_arrival_chunks(
            base_rate_qps, pattern, arrival_rng, duration_s, time_step_s
        )
    )


def iter_diurnal_trace(
    base_rate_qps: float,
    duration_s: float,
    pattern: Optional[DiurnalPattern] = None,
    sizes: Optional[QuerySizeDistribution] = None,
    seed: Optional[int] = None,
    time_step_s: float = 60.0,
) -> Iterator[Query]:
    """Lazily yield a diurnal trace one :class:`Query` at a time.

    Queries arrive in time order with ``query_id`` equal to the arrival
    index, so the stream satisfies the
    :meth:`repro.serving.cluster.ClusterSimulator.run_stream` contract
    directly (pair it with :func:`count_diurnal_queries` for the
    ``num_queries`` argument).  Only one synthesis chunk is alive at a time;
    a 10⁷-query trace never materialises a per-query object list.  See
    :func:`diurnal_trace_chunks` for the schema-versioning guarantees.
    """
    query_id = 0
    for times, chunk_sizes in diurnal_trace_chunks(
        base_rate_qps, duration_s, pattern, sizes, seed, time_step_s
    ):
        for time, size in zip(times.tolist(), chunk_sizes.tolist()):
            yield Query(query_id=query_id, arrival_time=time, size=size)
            query_id += 1
