"""Real-time query serving: arrival processes, size distributions, load generation, traces."""

from repro.queries.arrival import (
    ArrivalProcess,
    FixedArrival,
    PoissonArrival,
    UniformJitterArrival,
    get_arrival_process,
)
from repro.queries.generator import LoadGenerator
from repro.queries.query import Query
from repro.queries.size_dist import (
    MAX_QUERY_SIZE,
    FixedQuerySizes,
    LognormalQuerySizes,
    NormalQuerySizes,
    ProductionQuerySizes,
    QuerySizeDistribution,
    get_size_distribution,
    work_share_above_percentile,
)
from repro.queries.trace import (
    TRACE_SCHEMA_VERSION,
    DiurnalPattern,
    QueryTrace,
    count_diurnal_queries,
    diurnal_trace_chunks,
    generate_diurnal_trace,
    iter_diurnal_trace,
)

__all__ = [
    "ArrivalProcess",
    "FixedArrival",
    "PoissonArrival",
    "UniformJitterArrival",
    "get_arrival_process",
    "LoadGenerator",
    "Query",
    "MAX_QUERY_SIZE",
    "FixedQuerySizes",
    "LognormalQuerySizes",
    "NormalQuerySizes",
    "ProductionQuerySizes",
    "QuerySizeDistribution",
    "get_size_distribution",
    "work_share_above_percentile",
    "TRACE_SCHEMA_VERSION",
    "DiurnalPattern",
    "QueryTrace",
    "count_diurnal_queries",
    "diurnal_trace_chunks",
    "generate_diurnal_trace",
    "iter_diurnal_trace",
]
