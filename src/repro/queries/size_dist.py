"""Query working-set-size distributions.

The number of candidate items a recommendation query carries depends on the
user and their interaction history, and the paper's key observation (Fig. 5)
is that production query sizes have a *heavier tail* than the lognormal
distribution usually assumed for web-service working sets: a quarter of the
queries (those above the 75th percentile) account for roughly half of the
total work.  DeepRecSched's optimal operating points shift materially when
tuned against the production distribution instead of a lognormal one
(Fig. 12a).

This module provides:

* :class:`ProductionQuerySizes` — a lognormal body mixed with a Pareto tail,
  clipped to the maximum production query size (~1000 candidates), matching
  the qualitative shape of Fig. 5;
* :class:`LognormalQuerySizes`, :class:`NormalQuerySizes`,
  :class:`FixedQuerySizes` — the comparison distributions.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Union

import numpy as np

from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive

#: Largest query observed in the production trace the paper characterises.
MAX_QUERY_SIZE = 1000

_INV_SQRT2 = 1.0 / math.sqrt(2.0)


def _standard_normal_cdf(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF over an array via ``math.erf`` (scipy-free)."""
    values = np.asarray(z, dtype=np.float64)
    out = np.fromiter(
        (0.5 * (1.0 + math.erf(v * _INV_SQRT2)) for v in values.ravel()),
        dtype=np.float64,
        count=values.size,
    )
    return out.reshape(values.shape)


class QuerySizeDistribution(ABC):
    """Distribution over the number of candidate items per query."""

    def __init__(self, max_size: int = MAX_QUERY_SIZE) -> None:
        check_positive("max_size", max_size)
        self._max_size = int(max_size)

    @property
    def max_size(self) -> int:
        """Largest query size this distribution can produce."""
        return self._max_size

    @abstractmethod
    def sample(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Sample ``count`` query sizes as an int array in ``[1, max_size]``."""

    def _clip(self, raw: np.ndarray) -> np.ndarray:
        sizes = np.clip(np.rint(raw), 1, self._max_size)
        return sizes.astype(np.int64)

    def _raw_cdf(self, x: np.ndarray) -> np.ndarray:
        """CDF of the *unclipped* raw draw evaluated at ``x`` (override me).

        Subclasses with a continuous raw law implement this so
        :meth:`percentile` can be computed exactly instead of by sampling.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a raw CDF; override _raw_cdf "
            "to enable the deterministic percentile()"
        )

    def percentile(self, pct: float) -> float:
        """Deterministic ``pct``-th percentile of the integer size distribution.

        Sizes are ``clip(rint(raw), 1, max_size)`` of a continuous raw draw,
        so ``P(size <= s) = F_raw(s + 0.5)`` for integers ``s < max_size``
        (and 1 at ``max_size``); the percentile is the smallest integer
        ``s`` with ``P(size <= s) >= pct / 100``, found by one vectorised
        CDF evaluation over the integer support.  This replaces the former
        20 000-draw Monte-Carlo estimate — exact, sampling-noise-free, and
        regression-pinned in ``tests/test_queries_size_dist.py``.
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"pct must be in [0, 100], got {pct}")
        support = np.arange(1, self._max_size + 1, dtype=np.float64)
        cdf = self._raw_cdf(support + 0.5)
        cdf[-1] = 1.0
        index = int(np.searchsorted(cdf, pct / 100.0, side="left"))
        return float(support[min(index, self._max_size - 1)])

    def mean(self, count: int = 20000, rng: SeedLike = None) -> float:
        """Monte-Carlo estimate of the mean query size."""
        samples = self.sample(count, rng=derive_rng(rng if rng is not None else 1234))
        return float(np.mean(samples))


class ProductionQuerySizes(QuerySizeDistribution):
    """Heavy-tailed production query-size distribution (Fig. 5).

    With probability ``1 - tail_probability`` the size is drawn from a
    lognormal body; otherwise from a Pareto tail that extends to
    ``max_size``.  Default parameters give a median near 100 candidates, a
    p75 near 220, and the "top quartile of queries ≈ half the work" property
    reported in Fig. 6.
    """

    def __init__(
        self,
        body_median: float = 95.0,
        body_sigma: float = 0.75,
        tail_probability: float = 0.25,
        tail_start: float = 220.0,
        tail_alpha: float = 1.05,
        max_size: int = MAX_QUERY_SIZE,
    ) -> None:
        super().__init__(max_size)
        check_positive("body_median", body_median)
        check_positive("body_sigma", body_sigma)
        check_positive("tail_start", tail_start)
        check_positive("tail_alpha", tail_alpha)
        if not 0.0 < tail_probability < 1.0:
            raise ValueError(
                f"tail_probability must be in (0, 1), got {tail_probability}"
            )
        self._body_median = body_median
        self._body_sigma = body_sigma
        self._tail_probability = tail_probability
        self._tail_start = tail_start
        self._tail_alpha = tail_alpha

    @property
    def tail_probability(self) -> float:
        """Fraction of queries drawn from the Pareto tail."""
        return self._tail_probability

    def sample(self, count: int, rng: SeedLike = None) -> np.ndarray:
        check_positive("count", count)
        generator = derive_rng(rng)
        body = generator.lognormal(
            mean=np.log(self._body_median), sigma=self._body_sigma, size=count
        )
        body = np.minimum(body, self._tail_start)
        tail = self._tail_start * (1.0 + generator.pareto(self._tail_alpha, size=count))
        use_tail = generator.random(count) < self._tail_probability
        return self._clip(np.where(use_tail, tail, body))

    def _raw_cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        # Body: lognormal clipped from above at tail_start (mass at the clip).
        body = _standard_normal_cdf(
            (np.log(x) - math.log(self._body_median)) / self._body_sigma
        )
        body = np.where(x >= self._tail_start, 1.0, body)
        # Tail: tail_start * (1 + Pareto(alpha)), support strictly above tail_start.
        with np.errstate(divide="ignore"):
            tail = np.where(
                x > self._tail_start,
                1.0 - (self._tail_start / np.maximum(x, self._tail_start)) ** self._tail_alpha,
                0.0,
            )
        return (1.0 - self._tail_probability) * body + self._tail_probability * tail


class LognormalQuerySizes(QuerySizeDistribution):
    """Canonical lognormal working-set-size assumption from prior work."""

    def __init__(
        self,
        median: float = 100.0,
        sigma: float = 0.8,
        max_size: int = MAX_QUERY_SIZE,
    ) -> None:
        super().__init__(max_size)
        check_positive("median", median)
        check_positive("sigma", sigma)
        self._median = median
        self._sigma = sigma

    def sample(self, count: int, rng: SeedLike = None) -> np.ndarray:
        check_positive("count", count)
        generator = derive_rng(rng)
        raw = generator.lognormal(mean=np.log(self._median), sigma=self._sigma, size=count)
        return self._clip(raw)

    def _raw_cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return _standard_normal_cdf((np.log(x) - math.log(self._median)) / self._sigma)


class NormalQuerySizes(QuerySizeDistribution):
    """Normal working-set sizes (another common prior-work assumption)."""

    def __init__(
        self,
        mean: float = 150.0,
        std: float = 50.0,
        max_size: int = MAX_QUERY_SIZE,
    ) -> None:
        super().__init__(max_size)
        check_positive("mean", mean)
        check_positive("std", std)
        self._mean = mean
        self._std = std

    def sample(self, count: int, rng: SeedLike = None) -> np.ndarray:
        check_positive("count", count)
        generator = derive_rng(rng)
        raw = generator.normal(self._mean, self._std, size=count)
        return self._clip(raw)

    def _raw_cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return _standard_normal_cdf((x - self._mean) / self._std)


class FixedQuerySizes(QuerySizeDistribution):
    """Every query carries exactly ``size`` candidates."""

    def __init__(self, size: int, max_size: int = MAX_QUERY_SIZE) -> None:
        super().__init__(max(max_size, size))
        check_positive("size", size)
        self._size = int(size)

    def sample(self, count: int, rng: SeedLike = None) -> np.ndarray:
        check_positive("count", count)
        return np.full(count, self._size, dtype=np.int64)

    def _raw_cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.where(x >= self._size, 1.0, 0.0)


_SIZE_REGISTRY = {
    "production": ProductionQuerySizes,
    "lognormal": LognormalQuerySizes,
    "normal": NormalQuerySizes,
}


def get_size_distribution(name: str, **kwargs) -> QuerySizeDistribution:
    """Build a named size distribution (``"production"``, ``"lognormal"``, ``"normal"``)."""
    key = name.lower()
    if key == "fixed":
        return FixedQuerySizes(**kwargs)
    if key not in _SIZE_REGISTRY:
        raise KeyError(
            f"unknown size distribution {name!r}; available: "
            f"{sorted(_SIZE_REGISTRY) + ['fixed']}"
        )
    return _SIZE_REGISTRY[key](**kwargs)


def work_share_above_percentile(
    distribution: QuerySizeDistribution,
    pct: float = 75.0,
    count: int = 20000,
    rng: SeedLike = None,
) -> float:
    """Fraction of total items carried by queries above the ``pct``-th percentile.

    The Fig. 6 observation is that this is ~0.5 at the 75th percentile for the
    production distribution.
    """
    samples = distribution.sample(count, rng=derive_rng(rng if rng is not None else 7))
    threshold = np.percentile(samples, pct)
    total = samples.sum()
    if total == 0:
        return 0.0
    return float(samples[samples > threshold].sum() / total)
