"""Single-request CPU inference engine (latency model).

Given a recommendation model, a CPU platform, a per-request batch size, and
the number of concurrently active cores, the engine estimates the latency of
one inference request running on one core.  Each operator contributes
``max(compute_time, memory_time) + dispatch_overhead``, where

* compute time uses the core's peak FLOP rate derated by a batch-dependent
  efficiency curve — the SIMD curve for dense operators (wider vector units
  need larger batches) and a flat curve for recurrent cells (GRUs gain little
  from batching),
* memory time splits regular (streaming) from irregular (gather) traffic,
  applies per-access-pattern effective-bandwidth curves, shares the socket
  bandwidth across active cores, and applies the cache-contention factor of
  the platform's LLC policy.  Dense-layer weights are served from the LLC
  (rather than DRAM) when the model's non-embedding weight footprint fits —
  which it does on Skylake's larger LLC for DLRM-RMC3 but not on Broadwell's,
  reproducing the Fig. 12(c) platform difference,
* the dispatch overhead models framework/per-operator launch cost, which is
  what makes very small batches (and therefore very many requests per query)
  unattractive.

The same engine also produces the per-operator-category time breakdown used
for Fig. 3 and Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.execution.efficiency import (
    irregular_access_curve,
    recurrent_efficiency_curve,
    regular_access_curve,
    simd_efficiency_curve,
)
from repro.hardware.cpu import CPUPlatform
from repro.models.base import RecommendationModel
from repro.models.ops import Operator, OperatorCategory
from repro.utils.validation import check_non_negative, check_positive

#: Ratio of on-chip (LLC) bandwidth to a core's DRAM bandwidth share.
LLC_BANDWIDTH_MULTIPLIER = 6.0

#: Fraction of the LLC the non-embedding weights may occupy and still be
#: considered cache-resident (the rest holds activations and embedding rows).
LLC_RESIDENCY_FRACTION = 0.8


@dataclass(frozen=True)
class RequestLatency:
    """Latency of one request, split into compute/memory/overhead components."""

    compute_s: float
    memory_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        """End-to-end request latency in seconds."""
        return self.compute_s + self.memory_s + self.overhead_s


class CPUEngine:
    """Latency model for recommendation inference on one CPU core."""

    def __init__(
        self,
        model: RecommendationModel,
        platform: CPUPlatform,
        per_operator_overhead_s: float = 20e-6,
        per_request_overhead_s: float = 120e-6,
    ) -> None:
        check_non_negative("per_operator_overhead_s", per_operator_overhead_s)
        check_non_negative("per_request_overhead_s", per_request_overhead_s)
        self._model = model
        self._platform = platform
        self._per_operator_overhead_s = per_operator_overhead_s
        self._per_request_overhead_s = per_request_overhead_s
        self._simd_curve = simd_efficiency_curve(platform.simd_width_bits)
        self._recurrent_curve = recurrent_efficiency_curve()
        self._regular_curve = regular_access_curve()
        self._irregular_curve = irregular_access_curve()
        self._weights_llc_resident = self._fits_in_llc(model, platform)
        self._cache: Dict[Tuple[int, int], RequestLatency] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        # Dense lookup table for the serving hot loop; filled lazily.
        from repro.execution.latency_table import CPULatencyTable

        self._table = CPULatencyTable(self)

    @staticmethod
    def _fits_in_llc(model: RecommendationModel, platform: CPUPlatform) -> bool:
        """True when the model's non-embedding weights fit in the LLC."""
        dense_weight_bytes = sum(
            op.weight_bytes()
            for op in model.operators()
            if op.category is not OperatorCategory.EMBEDDING
        )
        return dense_weight_bytes <= LLC_RESIDENCY_FRACTION * platform.cache.llc_bytes

    @property
    def model(self) -> RecommendationModel:
        """The model whose latency this engine estimates."""
        return self._model

    @property
    def platform(self) -> CPUPlatform:
        """The CPU platform the model runs on."""
        return self._platform

    @property
    def weights_llc_resident(self) -> bool:
        """True when dense-layer weights are served from the LLC, not DRAM."""
        return self._weights_llc_resident

    @property
    def latency_table(self):
        """The engine's dense :class:`~repro.execution.latency_table.CPULatencyTable`.

        Lookups are bit-identical to :meth:`request_latency_s`; the serving
        simulators index it directly instead of re-entering this model.
        """
        return self._table

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the scalar memo cache plus table fill stats."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._cache),
            "table_entries": self._table.entries_built,
        }

    # ------------------------------------------------------------------ #

    def _core_bandwidth(self, active_cores: int) -> float:
        """Effective DRAM bandwidth available to one core, bytes/s.

        A lone core is limited by its own load/store capability
        (``per_core_bandwidth``); with many active cores, the socket bandwidth
        is shared and the LLC contention factor of the platform's inclusion
        policy is applied on top.
        """
        platform = self._platform
        fair_share = platform.memory_bandwidth / active_cores
        bandwidth = min(platform.per_core_bandwidth, fair_share)
        contention = platform.cache.contention_factor(active_cores, platform.num_cores)
        return bandwidth / contention

    def _compute_efficiency(self, category: OperatorCategory, batch_size: int) -> float:
        if category is OperatorCategory.RECURRENT:
            return self._recurrent_curve(batch_size)
        return self._simd_curve(batch_size)

    def _operator_latency(
        self, op: Operator, batch_size: int, active_cores: int
    ) -> RequestLatency:
        platform = self._platform
        cost = op.cost(batch_size)
        efficiency = self._compute_efficiency(op.category, batch_size)
        compute_s = cost.flops / (platform.per_core_peak_flops * efficiency)

        dram_bandwidth = self._core_bandwidth(active_cores)
        regular_bytes = cost.regular_bytes
        llc_bytes = 0.0
        if (
            self._weights_llc_resident
            and op.category is not OperatorCategory.EMBEDDING
        ):
            # Dense weights are re-read from the LLC, not DRAM.
            llc_bytes = min(op.weight_bytes(), regular_bytes)
            regular_bytes -= llc_bytes

        llc_bandwidth = platform.per_core_bandwidth * LLC_BANDWIDTH_MULTIPLIER
        regular_eff = self._regular_curve(batch_size)
        memory_s = (
            regular_bytes / (dram_bandwidth * regular_eff)
            + llc_bytes / (llc_bandwidth * regular_eff)
            + cost.irregular_bytes / (dram_bandwidth * self._irregular_curve(batch_size))
        )

        # The slower resource dominates but the other is partially hidden
        # rather than free (imperfect overlap on an out-of-order core).
        dominant = max(compute_s, memory_s)
        hidden = min(compute_s, memory_s)
        total = dominant + 0.2 * hidden
        if compute_s >= memory_s:
            compute_part, memory_part = compute_s, total - compute_s
        else:
            memory_part, compute_part = memory_s, total - memory_s
        return RequestLatency(
            compute_s=compute_part,
            memory_s=memory_part,
            overhead_s=self._per_operator_overhead_s,
        )

    # ------------------------------------------------------------------ #

    def request_latency(self, batch_size: int, active_cores: int = 1) -> RequestLatency:
        """Latency of one request of ``batch_size`` items on one core.

        ``active_cores`` is the number of cores concurrently executing
        requests (including this one); it controls bandwidth sharing and
        cache contention.
        """
        check_positive("batch_size", batch_size)
        check_positive("active_cores", active_cores)
        active_cores = min(active_cores, self._platform.num_cores)
        key = (batch_size, active_cores)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._cache_misses += 1

        compute = memory = overhead = 0.0
        for op in self._model.operators():
            latency = self._operator_latency(op, batch_size, active_cores)
            compute += latency.compute_s
            memory += latency.memory_s
            overhead += latency.overhead_s
        result = RequestLatency(
            compute_s=compute,
            memory_s=memory,
            overhead_s=overhead + self._per_request_overhead_s,
        )
        self._cache[key] = result
        return result

    def request_latency_s(self, batch_size: int, active_cores: int = 1) -> float:
        """Scalar request latency in seconds."""
        return self.request_latency(batch_size, active_cores).total_s

    def operator_breakdown(
        self, batch_size: int, active_cores: int = 1
    ) -> Dict[OperatorCategory, float]:
        """Time per operator category for one request (seconds).

        This is the quantity plotted (as fractions) in Fig. 3.
        """
        check_positive("batch_size", batch_size)
        check_positive("active_cores", active_cores)
        active_cores = min(active_cores, self._platform.num_cores)
        breakdown: Dict[OperatorCategory, float] = {}
        for op in self._model.operators():
            latency = self._operator_latency(op, batch_size, active_cores)
            breakdown[op.category] = breakdown.get(op.category, 0.0) + latency.total_s
        return breakdown

    def throughput_items_per_s(self, batch_size: int, active_cores: int = 1) -> float:
        """Items per second one core sustains at ``batch_size``."""
        return batch_size / self.request_latency_s(batch_size, active_cores)
