"""Batch-size efficiency curves.

The trade-off at the heart of DeepRecSched is that larger per-request batch
sizes use each core's SIMD units and the DRAM subsystem more efficiently,
while smaller batches expose more request-level parallelism across cores.
This module provides the saturating efficiency curves used by the execution
engines:

* **SIMD efficiency** — wider vector units (AVX-512) need larger batches to
  reach peak FLOP throughput than narrower ones (AVX-2).
* **Memory-access efficiency** — irregular embedding gathers reach higher
  effective DRAM bandwidth at larger batch sizes (more outstanding requests,
  better row-buffer locality); the curve saturates later than the SIMD one,
  which is why embedding-dominated models prefer the largest batches
  (Fig. 12b).
* **GPU occupancy** — a GPU needs very large batches before its SMs are
  occupied, producing the CPU/GPU crossover points of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SaturatingCurve:
    """Efficiency ``eff(b) = max_eff * b / (b + half_saturation)``.

    ``half_saturation`` is the batch size at which half of ``max_eff`` is
    reached; ``floor`` bounds the efficiency from below so tiny batches do not
    produce absurd latencies.
    """

    max_efficiency: float
    half_saturation: float
    floor: float = 0.02

    def __post_init__(self) -> None:
        check_positive("max_efficiency", self.max_efficiency)
        check_positive("half_saturation", self.half_saturation)
        if not 0.0 < self.floor <= self.max_efficiency:
            raise ValueError(
                f"floor must be in (0, max_efficiency], got {self.floor}"
            )

    def __call__(self, batch_size: int) -> float:
        """Efficiency at ``batch_size`` (monotonically non-decreasing)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        value = self.max_efficiency * batch_size / (batch_size + self.half_saturation)
        return max(self.floor, value)


def simd_efficiency_curve(simd_width_bits: int) -> SaturatingCurve:
    """SIMD utilisation vs batch size for a CPU core.

    AVX-512 requires roughly twice the batch of AVX-2 to reach the same
    fraction of peak, mirroring the observation in Section IV-A.
    """
    if simd_width_bits not in (128, 256, 512):
        raise ValueError(f"unsupported SIMD width {simd_width_bits}")
    half_saturation = {128: 4.0, 256: 8.0, 512: 16.0}[simd_width_bits]
    return SaturatingCurve(max_efficiency=0.85, half_saturation=half_saturation)


def irregular_access_curve() -> SaturatingCurve:
    """Effective-bandwidth fraction for irregular (gather) DRAM accesses.

    Saturates much later than the SIMD curve: embedding-heavy requests keep
    improving up to batch sizes of ~1K, which is why DeepRecSched picks
    batch 1024 for DLRM-RMC1/DIN.
    """
    return SaturatingCurve(max_efficiency=0.65, half_saturation=56.0)


def recurrent_efficiency_curve() -> SaturatingCurve:
    """Compute efficiency of recurrent (GRU) operators on a CPU core.

    Recurrent cells chain small matrix-vector products with a sequential
    dependency, so they extract little additional SIMD utilisation from
    larger batches — batching a GRU-dominated model mostly just lengthens
    the request.  This is why DIEN's optimal batch size is the smallest of
    the models in Fig. 9.
    """
    return SaturatingCurve(max_efficiency=0.35, half_saturation=2.0)


def regular_access_curve() -> SaturatingCurve:
    """Effective-bandwidth fraction for streaming (regular) DRAM accesses."""
    return SaturatingCurve(max_efficiency=0.85, half_saturation=4.0)


def gpu_occupancy_curve() -> SaturatingCurve:
    """SM-occupancy fraction vs batch size for the GPU compute/memory pipes."""
    return SaturatingCurve(max_efficiency=0.90, half_saturation=96.0, floor=0.01)
