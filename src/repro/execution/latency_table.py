"""Precomputed latency tables — the execution fast path.

The serving simulators call the engines' latency models once per dispatched
request, millions of times per sweep.  Both engines memoise scalar calls in a
dict, but the event loop still pays a method call, tuple hashing, and argument
validation on every lookup.  The tables here precompute *dense* latency
columns — request latency over batch size for each active-core count on the
CPU, end-to-end query latency over query size on the GPU — so the hot loop
indexes a plain Python list instead of re-entering the latency model.

Exactness contract
------------------
Table entries are **bit-identical** to the scalar engine calls
(:meth:`CPUEngine.request_latency_s` / :meth:`GPUEngine.query_latency_s`).
The vectorized builders below mirror the scalar code expression by
expression: every float operation happens in the same order with the same
operands, and all integer byte/FLOP counts stay far below 2**53, so the
float64 roundings coincide.  Operator types without a vectorized cost (e.g.
user-defined subclasses) fall back to the scalar code path per entry, which
is exact by construction.  ``tests/test_execution_latency_table.py`` asserts
equality with ``==`` (no tolerance) across the model zoo.

Tables are created empty at engine construction and filled lazily, one
active-core column (CPU) or one size range (GPU) at a time, on first use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.models.ops import (
    BYTES_PER_ELEMENT,
    AttentionUnit,
    Concat,
    ElementwiseSum,
    EmbeddingGather,
    FullyConnected,
    GRULayer,
    Operator,
    OperatorCategory,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.execution.cpu_engine import CPUEngine
    from repro.execution.gpu_engine import GPUEngine


def _curve_values(curve, batch: np.ndarray) -> np.ndarray:
    """Vectorized :class:`SaturatingCurve` — mirrors ``curve.__call__``."""
    value = curve.max_efficiency * batch / (batch + curve.half_saturation)
    return np.maximum(curve.floor, value)


def operator_cost_columns(
    op: Operator, batch: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Vectorized ``op.cost`` over a float64 batch vector of integer values.

    Returns ``(flops, regular_bytes, irregular_bytes)`` arrays whose entries
    equal the fields of ``op.cost(b)`` bit-for-bit, or ``None`` when the
    operator type has no vectorized form (callers must fall back to the
    scalar path).  Expressions follow :mod:`repro.models.ops` exactly.
    """
    zeros = None  # allocated lazily; most ops have no irregular traffic
    if type(op) is FullyConnected:
        flops = 2.0 * batch * op.in_features * op.out_features
        activation = batch * (op.in_features + op.out_features) * BYTES_PER_ELEMENT
        regular = op.weight_bytes() + activation
        zeros = np.zeros_like(batch)
        return flops, regular, zeros
    if type(op) is EmbeddingGather:
        rows_read = batch * op.num_tables * op.lookups_per_table
        gather = rows_read * op.embedding_dim * BYTES_PER_ELEMENT
        output = batch * op.num_tables * op.embedding_dim * BYTES_PER_ELEMENT
        index = rows_read * 8
        pooling = (
            batch
            * op.num_tables
            * max(0, op.lookups_per_table - 1)
            * op.embedding_dim
        )
        return pooling, output + index, gather
    if type(op) is Concat:
        moved = 2.0 * batch * op.elements_per_sample * BYTES_PER_ELEMENT
        zeros = np.zeros_like(batch)
        return zeros, moved, zeros.copy()
    if type(op) is ElementwiseSum:
        flops = batch * op.elements_per_sample * max(1, op.num_inputs - 1)
        moved = batch * op.elements_per_sample * (op.num_inputs + 1) * BYTES_PER_ELEMENT
        zeros = np.zeros_like(batch)
        return flops, moved, zeros
    if type(op) is AttentionUnit:
        dims = op._mlp_dims()
        mlp_flops_per_item = 2.0 * sum(
            dims[i] * dims[i + 1] for i in range(len(dims) - 1)
        )
        flops = batch * op.sequence_length * mlp_flops_per_item
        flops = flops + 2.0 * batch * op.sequence_length * op.embedding_dim
        activation = (
            batch
            * op.sequence_length
            * (dims[0] + sum(op.hidden_units) + 1)
            * BYTES_PER_ELEMENT
        )
        history = batch * op.sequence_length * op.embedding_dim * BYTES_PER_ELEMENT
        regular = op.weight_bytes() + activation + history
        zeros = np.zeros_like(batch)
        return flops, regular, zeros
    if type(op) is GRULayer:
        per_step_flops = 2.0 * 3 * (
            op.input_dim * op.hidden_dim + op.hidden_dim * op.hidden_dim
        ) + 7.0 * op.hidden_dim
        flops = batch * op.sequence_length * per_step_flops
        activation = (
            batch
            * op.sequence_length
            * (op.input_dim + op.hidden_dim)
            * BYTES_PER_ELEMENT
        )
        weight_traffic = op.weight_bytes() * op.sequence_length
        zeros = np.zeros_like(batch)
        return flops, activation + weight_traffic, zeros
    return None


class CPULatencyTable:
    """Dense request-latency columns for one :class:`CPUEngine`.

    One column per active-core count, indexed by batch size (index 0 unused).
    Columns are plain Python lists so the event loop's lookup is a single
    ``column[batch]`` index.  The table is a friend of its engine: it reads
    the engine's private curves and platform to mirror the scalar math.
    """

    __slots__ = ("_engine", "_columns", "_entries_built", "_scalar_fallbacks")

    def __init__(self, engine: "CPUEngine") -> None:
        self._engine = engine
        self._columns: Dict[int, List[float]] = {}
        self._entries_built = 0
        self._scalar_fallbacks = 0

    @property
    def entries_built(self) -> int:
        """Total table entries materialised so far (across all columns)."""
        return self._entries_built

    @property
    def scalar_fallbacks(self) -> int:
        """Operator columns that used the scalar (non-vectorized) path."""
        return self._scalar_fallbacks

    def column(self, max_batch: int, active_cores: int) -> List[float]:
        """Totals list for ``active_cores``, valid for batches ``1..max_batch``.

        The returned list has ``len > max_batch`` and is shared/cached, so
        callers must treat it as read-only.
        """
        engine = self._engine
        cores = min(active_cores, engine.platform.num_cores)
        column = self._columns.get(cores)
        if column is None or len(column) <= max_batch:
            # Round the column length up so probes at growing batch sizes
            # (e.g. property tests) do not rebuild once per new batch.
            size = 1 << max(6, int(max_batch).bit_length())
            column = self._build_column(size, cores)
            self._columns[cores] = column
        return column

    def total_s(self, batch_size: int, active_cores: int = 1) -> float:
        """Scalar lookup; equals ``engine.request_latency_s`` bit-for-bit."""
        return self.column(batch_size, active_cores)[batch_size]

    # ------------------------------------------------------------------ #

    def _build_column(self, max_batch: int, cores: int) -> List[float]:
        """Vectorized mirror of ``CPUEngine.request_latency`` for one core count."""
        # Imported here (not at module top) to avoid an import cycle:
        # cpu_engine constructs this table at engine-build time.
        from repro.execution.cpu_engine import LLC_BANDWIDTH_MULTIPLIER

        engine = self._engine
        platform = engine.platform
        batch = np.arange(1, max_batch + 1, dtype=np.float64)

        simd = _curve_values(engine._simd_curve, batch)
        recurrent = _curve_values(engine._recurrent_curve, batch)
        regular_eff = _curve_values(engine._regular_curve, batch)
        irregular_eff = _curve_values(engine._irregular_curve, batch)

        dram_bandwidth = engine._core_bandwidth(cores)
        llc_bandwidth = platform.per_core_bandwidth * LLC_BANDWIDTH_MULTIPLIER
        peak = platform.per_core_peak_flops
        resident = engine.weights_llc_resident

        compute_acc = np.zeros_like(batch)
        memory_acc = np.zeros_like(batch)
        overhead = 0.0
        for op in engine._model.operators():
            columns = operator_cost_columns(op, batch)
            if columns is None:
                self._scalar_fallbacks += 1
                compute_part, memory_part = self._scalar_parts(op, max_batch, cores)
            else:
                flops, regular, irregular = columns
                efficiency = (
                    recurrent if op.category is OperatorCategory.RECURRENT else simd
                )
                compute_s = flops / (peak * efficiency)
                llc_bytes = 0.0
                if resident and op.category is not OperatorCategory.EMBEDDING:
                    llc_bytes = np.minimum(op.weight_bytes(), regular)
                    regular = regular - llc_bytes
                memory_s = (
                    regular / (dram_bandwidth * regular_eff)
                    + llc_bytes / (llc_bandwidth * regular_eff)
                    + irregular / (dram_bandwidth * irregular_eff)
                )
                dominant = np.maximum(compute_s, memory_s)
                hidden = np.minimum(compute_s, memory_s)
                total = dominant + 0.2 * hidden
                compute_dominates = compute_s >= memory_s
                compute_part = np.where(compute_dominates, compute_s, total - memory_s)
                memory_part = np.where(compute_dominates, total - compute_s, memory_s)
            compute_acc = compute_acc + compute_part
            memory_acc = memory_acc + memory_part
            overhead += engine._per_operator_overhead_s

        overhead_total = overhead + engine._per_request_overhead_s
        totals = (compute_acc + memory_acc) + overhead_total
        self._entries_built += max_batch
        return [float("nan")] + totals.tolist()

    def _scalar_parts(
        self, op: Operator, max_batch: int, cores: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact per-entry fallback for operator types without a vector form."""
        engine = self._engine
        parts = [
            engine._operator_latency(op, size, cores)
            for size in range(1, max_batch + 1)
        ]
        compute = np.array([p.compute_s for p in parts], dtype=np.float64)
        memory = np.array([p.memory_s for p in parts], dtype=np.float64)
        return compute, memory


class ScaledLatencyTable:
    """A speed-scaled, read-only view of another CPU latency table.

    Heterogeneous-fleet nodes (see
    :class:`~repro.execution.scaled_engine.ScaledCPUEngine`) are modelled as a
    nominal engine whose latencies are multiplied by a per-node
    ``speed_factor``.  Rather than rebuilding a full table per node, this view
    wraps the *base* engine's table and scales each column once on first use:
    every entry is **exactly** ``speed_factor *`` the base entry (one float64
    multiply, no re-derivation), so fleets of scaled nodes share one base
    table build and still ride the dense fast path — ``scalar_fallbacks``
    stays whatever the base table reports (0 for zoo models).

    Scaled columns are cached per requested core count and invalidated
    automatically when the base table grows a column (the base returns a new
    list object when it rebuilds).
    """

    __slots__ = ("_base", "_speed_factor", "_columns")

    def __init__(self, base: "CPULatencyTable", speed_factor: float) -> None:
        if speed_factor <= 0:
            raise ValueError(f"speed_factor must be > 0, got {speed_factor}")
        self._base = base
        self._speed_factor = speed_factor
        # active_cores -> (base column the scale was taken from, scaled column)
        self._columns: Dict[int, Tuple[List[float], List[float]]] = {}

    @property
    def base(self) -> "CPULatencyTable":
        """The nominal (unscaled) table this view wraps."""
        return self._base

    @property
    def speed_factor(self) -> float:
        """Multiplier applied to every base entry."""
        return self._speed_factor

    @property
    def entries_built(self) -> int:
        """Entries materialised by the underlying base table."""
        return self._base.entries_built

    @property
    def scalar_fallbacks(self) -> int:
        """Scalar fallbacks taken by the underlying base table."""
        return self._base.scalar_fallbacks

    def column(self, max_batch: int, active_cores: int) -> List[float]:
        """Scaled totals list for ``active_cores``, valid for batches ``1..max_batch``.

        Shared/cached like the base table's columns — treat it as read-only.
        """
        base_column = self._base.column(max_batch, active_cores)
        cached = self._columns.get(active_cores)
        if cached is not None and cached[0] is base_column:
            return cached[1]
        factor = self._speed_factor
        scaled = [value * factor for value in base_column]
        self._columns[active_cores] = (base_column, scaled)
        return scaled

    def total_s(self, batch_size: int, active_cores: int = 1) -> float:
        """Scalar lookup; exactly ``speed_factor *`` the base table's entry."""
        return self.column(batch_size, active_cores)[batch_size]


class GPULatencyTable:
    """Dense query-latency column for one :class:`GPUEngine`, by query size."""

    __slots__ = ("_engine", "_totals", "_entries_built", "_scalar_fallback")

    def __init__(self, engine: "GPUEngine") -> None:
        self._engine = engine
        self._totals: List[float] = []
        self._entries_built = 0
        self._scalar_fallback = False

    @property
    def entries_built(self) -> int:
        """Total table entries materialised so far."""
        return self._entries_built

    @property
    def scalar_fallback(self) -> bool:
        """True when the column was filled through the scalar engine path."""
        return self._scalar_fallback

    def totals(self, max_size: int) -> List[float]:
        """Totals list valid for query sizes ``1..max_size`` (index 0 unused)."""
        if len(self._totals) <= max_size:
            size = 1 << max(6, int(max_size).bit_length())
            self._totals = self._build(size)
        return self._totals

    def total_s(self, query_size: int) -> float:
        """Scalar lookup; equals ``engine.query_latency_s`` bit-for-bit."""
        return self.totals(query_size)[query_size]

    # ------------------------------------------------------------------ #

    def _build(self, max_size: int) -> List[float]:
        """Vectorized mirror of ``GPUEngine.query_latency`` over query size."""
        engine = self._engine
        model = engine.model
        platform = engine.platform
        sizes = np.arange(1, max_size + 1, dtype=np.float64)

        # model.cost(b): operator costs accumulated in graph order.
        flops = np.zeros_like(sizes)
        regular = np.zeros_like(sizes)
        irregular = np.zeros_like(sizes)
        vectorized = True
        for op in model.operators():
            columns = operator_cost_columns(op, sizes)
            if columns is None:
                vectorized = False
                break
            flops = flops + columns[0]
            regular = regular + columns[1]
            irregular = irregular + columns[2]

        if not vectorized:
            # Exact per-entry fallback through the public scalar path.
            self._scalar_fallback = True
            totals = [engine.query_latency_s(size) for size in range(1, max_size + 1)]
            self._entries_built += max_size
            return [float("nan")] + totals

        # data_loading_time: staging + PCIe transfer of the input footprint.
        config = model.config
        dense_bytes = sizes * config.dense_input_dim * 4
        emb = config.embedding
        sparse_bytes = sizes * emb.num_tables * emb.lookups_per_table * 8
        input_bytes = dense_bytes + sparse_bytes
        transfer = platform.transfer_overhead_s + input_bytes / platform.pcie_bandwidth
        data_loading = engine._staging_overhead_s + transfer

        # kernel_time: occupancy-derated roofline plus launch overheads.
        occupancy = _curve_values(engine._occupancy, sizes)
        compute_s = flops / (platform.peak_flops * occupancy)
        regular_s = regular / (platform.memory_bandwidth * 0.7)
        irregular_s = irregular / (
            platform.memory_bandwidth * 0.6 * np.maximum(occupancy, 0.1)
        )
        launch = (
            platform.kernel_launch_overhead_s
            + engine._num_operators * engine._per_operator_launch_s
        )
        kernel = np.maximum(compute_s, regular_s + irregular_s) + launch

        totals_arr = data_loading + kernel
        self._entries_built += max_size
        return [float("nan")] + totals_arr.tolist()
