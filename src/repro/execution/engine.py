"""Engine construction helpers.

``build_cpu_engine`` / ``build_gpu_engine`` wire a zoo model to a platform;
:class:`EnginePair` bundles the CPU engine with an optional accelerator engine
for components (the serving simulator, DeepRecSched) that schedule across
both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.execution.cpu_engine import CPUEngine
from repro.execution.gpu_engine import GPUEngine
from repro.hardware.cpu import CPUPlatform, get_cpu
from repro.hardware.gpu import GPUPlatform, get_gpu
from repro.models.base import RecommendationModel
from repro.models.zoo import get_model
from repro.utils.rng import SeedLike


def _resolve_model(model: Union[str, RecommendationModel], rng: SeedLike) -> RecommendationModel:
    if isinstance(model, RecommendationModel):
        return model
    # Engines only need the analytic operator graph, not runnable weights.
    return get_model(model, rng=rng, build_executable=False)


def build_cpu_engine(
    model: Union[str, RecommendationModel],
    platform: Union[str, CPUPlatform] = "skylake",
    rng: SeedLike = None,
) -> CPUEngine:
    """Build a :class:`CPUEngine` from a zoo key / model and a platform name."""
    cpu = get_cpu(platform) if isinstance(platform, str) else platform
    return CPUEngine(_resolve_model(model, rng), cpu)


def build_gpu_engine(
    model: Union[str, RecommendationModel],
    platform: Union[str, GPUPlatform] = "gtx1080ti",
    rng: SeedLike = None,
) -> GPUEngine:
    """Build a :class:`GPUEngine` from a zoo key / model and a platform name."""
    gpu = get_gpu(platform) if isinstance(platform, str) else platform
    return GPUEngine(_resolve_model(model, rng), gpu)


@dataclass
class EnginePair:
    """A CPU engine plus an optional accelerator engine for the same model."""

    cpu: CPUEngine
    gpu: Optional[GPUEngine] = None

    @property
    def model(self) -> RecommendationModel:
        """The recommendation model both engines serve."""
        return self.cpu.model

    @property
    def has_accelerator(self) -> bool:
        """True when an accelerator engine is attached."""
        return self.gpu is not None


def build_engine_pair(
    model: Union[str, RecommendationModel],
    cpu_platform: Union[str, CPUPlatform] = "skylake",
    gpu_platform: Union[str, GPUPlatform, None] = "gtx1080ti",
    rng: SeedLike = None,
) -> EnginePair:
    """Build CPU and (optionally) GPU engines sharing one model instance.

    Pass ``gpu_platform=None`` for a CPU-only pair.
    """
    resolved = _resolve_model(model, rng)
    cpu_engine = build_cpu_engine(resolved, cpu_platform)
    gpu_engine = None
    if gpu_platform is not None:
        gpu_engine = build_gpu_engine(resolved, gpu_platform)
    return EnginePair(cpu=cpu_engine, gpu=gpu_engine)
