"""GPU inference engine (latency model with explicit data-loading cost).

The paper finds that on a GTX-1080Ti class accelerator, transferring the
query's input features over PCIe consumes 60–80 % of end-to-end inference
time, and that the GPU only overtakes a CPU core above a per-model batch-size
crossover (Fig. 4).  :class:`GPUEngine` models one query processed on the GPU
as

``latency = data_loading + kernel_time``

where data loading is the PCIe transfer of dense features and embedding
indices plus a fixed staging overhead, and kernel time derates the device's
peak FLOP rate / memory bandwidth by an occupancy curve that saturates only
at large batch sizes, plus per-model kernel-launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.execution.efficiency import gpu_occupancy_curve
from repro.hardware.gpu import GPUPlatform
from repro.models.base import RecommendationModel
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class GPUQueryLatency:
    """Latency of one query on the accelerator, split by phase."""

    data_loading_s: float
    compute_s: float

    @property
    def total_s(self) -> float:
        """End-to-end latency in seconds."""
        return self.data_loading_s + self.compute_s

    @property
    def data_loading_fraction(self) -> float:
        """Fraction of end-to-end time spent moving inputs to the device."""
        total = self.total_s
        if total == 0:
            return 0.0
        return self.data_loading_s / total


class GPUEngine:
    """Latency model for recommendation inference on a discrete GPU."""

    def __init__(
        self,
        model: RecommendationModel,
        platform: GPUPlatform,
        per_operator_launch_s: float = 18e-6,
        staging_overhead_s: float = 750e-6,
    ) -> None:
        check_non_negative("per_operator_launch_s", per_operator_launch_s)
        check_non_negative("staging_overhead_s", staging_overhead_s)
        self._model = model
        self._platform = platform
        self._per_operator_launch_s = per_operator_launch_s
        self._staging_overhead_s = staging_overhead_s
        self._occupancy = gpu_occupancy_curve()
        self._num_operators = len(model.operators())
        self._cache: Dict[int, GPUQueryLatency] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        # Dense lookup table for the serving hot loop; filled lazily.
        from repro.execution.latency_table import GPULatencyTable

        self._table = GPULatencyTable(self)

    @property
    def model(self) -> RecommendationModel:
        """The model whose latency this engine estimates."""
        return self._model

    @property
    def platform(self) -> GPUPlatform:
        """The accelerator platform."""
        return self._platform

    @property
    def latency_table(self):
        """The engine's dense :class:`~repro.execution.latency_table.GPULatencyTable`.

        Lookups are bit-identical to :meth:`query_latency_s`; the serving
        simulators index it directly instead of re-entering this model.
        """
        return self._table

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the scalar memo cache plus table fill stats."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._cache),
            "table_entries": self._table.entries_built,
        }

    # ------------------------------------------------------------------ #

    def data_loading_time(self, batch_size: int) -> float:
        """Host-to-device input transfer time for a ``batch_size``-item query.

        Input features for recommendation are small per item but the transfer
        is dominated by fixed staging costs (pinned-buffer copies, framework
        marshalling) at the batch sizes production queries use — which is why
        data loading accounts for the majority of end-to-end time.
        """
        check_positive("batch_size", batch_size)
        input_bytes = self._model.input_bytes(batch_size)
        return self._staging_overhead_s + self._platform.transfer_time(input_bytes)

    def kernel_time(self, batch_size: int) -> float:
        """On-device execution time for a ``batch_size``-item query."""
        check_positive("batch_size", batch_size)
        cost = self._model.cost(batch_size)
        occupancy = self._occupancy(batch_size)
        compute_s = cost.flops / (self._platform.peak_flops * occupancy)
        # Streaming (weight/activation) traffic achieves a healthy fraction of
        # peak bandwidth regardless of batch size; gather traffic needs enough
        # parallel work in flight, so it is derated by occupancy.
        regular_s = cost.regular_bytes / (self._platform.memory_bandwidth * 0.7)
        irregular_s = cost.irregular_bytes / (
            self._platform.memory_bandwidth * 0.6 * max(occupancy, 0.1)
        )
        launch = (
            self._platform.kernel_launch_overhead_s
            + self._num_operators * self._per_operator_launch_s
        )
        return max(compute_s, regular_s + irregular_s) + launch

    def query_latency(self, query_size: int) -> GPUQueryLatency:
        """End-to-end latency of one query of ``query_size`` candidate items."""
        check_positive("query_size", query_size)
        cached = self._cache.get(query_size)
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._cache_misses += 1
        latency = GPUQueryLatency(
            data_loading_s=self.data_loading_time(query_size),
            compute_s=self.kernel_time(query_size),
        )
        self._cache[query_size] = latency
        return latency

    def query_latency_s(self, query_size: int) -> float:
        """Scalar end-to-end query latency in seconds."""
        return self.query_latency(query_size).total_s

    def speedup_over_cpu(self, cpu_latency_s: float, query_size: int) -> float:
        """Speedup of this GPU over a CPU baseline latency for the same query."""
        check_positive("cpu_latency_s", cpu_latency_s)
        return cpu_latency_s / self.query_latency_s(query_size)
