"""Operator time-breakdown helpers (Fig. 3).

Turns a :class:`~repro.execution.cpu_engine.CPUEngine`'s per-category times
into normalised fractions and identifies the dominant bucket, which is how
the paper classifies models as embedding-, MLP-, or attention-dominated
(Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.execution.cpu_engine import CPUEngine
from repro.models.ops import OperatorCategory


@dataclass(frozen=True)
class OperatorBreakdown:
    """Normalised operator time breakdown for one model at one batch size."""

    model_name: str
    batch_size: int
    fractions: Mapping[OperatorCategory, float]
    total_latency_s: float

    def fraction(self, category: OperatorCategory) -> float:
        """Fraction of request time spent in ``category`` (0 if absent)."""
        return self.fractions.get(category, 0.0)

    @property
    def dominant_category(self) -> OperatorCategory:
        """Category with the largest share of request time."""
        return max(self.fractions, key=self.fractions.get)

    @property
    def dnn_fraction(self) -> float:
        """Combined FC share (the "MLP" bucket of the paper's breakdown)."""
        return self.fraction(OperatorCategory.FC)

    @property
    def embedding_fraction(self) -> float:
        """Embedding gather share."""
        return self.fraction(OperatorCategory.EMBEDDING)

    @property
    def attention_fraction(self) -> float:
        """Attention plus recurrent share (DIN/DIEN's distinguishing bucket)."""
        return self.fraction(OperatorCategory.ATTENTION) + self.fraction(
            OperatorCategory.RECURRENT
        )


def compute_breakdown(
    engine: CPUEngine, batch_size: int = 64, active_cores: int = 1
) -> OperatorBreakdown:
    """Compute the normalised operator breakdown for one engine.

    The paper's Fig. 3 uses a fixed batch size of 64 on a single worker, which
    is the default here.
    """
    times = engine.operator_breakdown(batch_size, active_cores)
    total = sum(times.values())
    if total <= 0:
        raise ValueError("operator breakdown produced a non-positive total latency")
    fractions: Dict[OperatorCategory, float] = {
        category: latency / total for category, latency in times.items()
    }
    return OperatorBreakdown(
        model_name=engine.model.name,
        batch_size=batch_size,
        fractions=fractions,
        total_latency_s=total,
    )
