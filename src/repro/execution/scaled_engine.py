"""Per-node speed-scaled CPU engine for heterogeneous fleets.

Production fleets are heterogeneous even within a platform generation (DVFS,
memory population, co-located workloads).  :class:`ScaledCPUEngine` wraps a
nominal :class:`~repro.execution.cpu_engine.CPUEngine` and multiplies its
latencies by a per-node ``speed_factor`` — a node with ``speed_factor=1.05``
is 5 % slower than nominal.

The wrapper exposes a ``latency_table`` (a
:class:`~repro.execution.latency_table.ScaledLatencyTable` view over the base
engine's table) so the serving kernels index a dense scaled column instead of
falling back to memoised scalar calls: a fleet of scaled nodes shares one
base-table build and keeps ``scalar_fallbacks == 0``.
"""

from __future__ import annotations

from repro.execution.cpu_engine import CPUEngine, RequestLatency
from repro.execution.latency_table import ScaledLatencyTable
from repro.utils.validation import check_positive


class ScaledCPUEngine:
    """A CPU engine whose latencies are scaled by a per-node speed factor."""

    def __init__(self, engine: CPUEngine, speed_factor: float = 1.0) -> None:
        check_positive("speed_factor", speed_factor)
        self._engine = engine
        self._speed_factor = speed_factor
        self._table = ScaledLatencyTable(engine.latency_table, speed_factor)

    @property
    def platform(self):
        """The underlying platform (unscaled)."""
        return self._engine.platform

    @property
    def model(self):
        """The model served by this node."""
        return self._engine.model

    @property
    def base_engine(self) -> CPUEngine:
        """The nominal engine this node scales."""
        return self._engine

    @property
    def speed_factor(self) -> float:
        """Latency multiplier applied to the nominal engine."""
        return self._speed_factor

    @property
    def latency_table(self) -> ScaledLatencyTable:
        """Dense scaled view of the base engine's latency table.

        Entries are exactly ``speed_factor *`` the base table's entries, and
        :meth:`request_latency_s` matches the table bit-for-bit.
        """
        return self._table

    def request_latency(self, batch_size: int, active_cores: int = 1) -> RequestLatency:
        """Scaled per-request latency components.

        Each component is scaled individually; their float64 sum may differ
        from :meth:`request_latency_s` (which scales the nominal total in one
        multiply, matching the latency table exactly) by one last-place unit.
        """
        nominal = self._engine.request_latency(batch_size, active_cores)
        factor = self._speed_factor
        return RequestLatency(
            compute_s=nominal.compute_s * factor,
            memory_s=nominal.memory_s * factor,
            overhead_s=nominal.overhead_s * factor,
        )

    def request_latency_s(self, batch_size: int, active_cores: int = 1) -> float:
        """Scaled scalar request latency; bit-identical to the latency table."""
        return self._engine.request_latency_s(batch_size, active_cores) * self._speed_factor
