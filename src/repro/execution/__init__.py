"""Execution engines: operator latency models for CPU cores and GPU accelerators."""

from repro.execution.breakdown import OperatorBreakdown, compute_breakdown
from repro.execution.cpu_engine import CPUEngine, RequestLatency
from repro.execution.efficiency import (
    SaturatingCurve,
    gpu_occupancy_curve,
    irregular_access_curve,
    regular_access_curve,
    simd_efficiency_curve,
)
from repro.execution.engine import (
    EnginePair,
    build_cpu_engine,
    build_engine_pair,
    build_gpu_engine,
)
from repro.execution.gpu_engine import GPUEngine, GPUQueryLatency
from repro.execution.latency_table import (
    CPULatencyTable,
    GPULatencyTable,
    ScaledLatencyTable,
    operator_cost_columns,
)
from repro.execution.scaled_engine import ScaledCPUEngine

__all__ = [
    "OperatorBreakdown",
    "compute_breakdown",
    "CPUEngine",
    "RequestLatency",
    "SaturatingCurve",
    "gpu_occupancy_curve",
    "irregular_access_curve",
    "regular_access_curve",
    "simd_efficiency_curve",
    "EnginePair",
    "build_cpu_engine",
    "build_engine_pair",
    "build_gpu_engine",
    "GPUEngine",
    "GPUQueryLatency",
    "CPULatencyTable",
    "GPULatencyTable",
    "ScaledLatencyTable",
    "ScaledCPUEngine",
    "operator_cost_columns",
]
