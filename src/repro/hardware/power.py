"""System power model for QPS/Watt efficiency reporting.

The paper compares DeepRecSched-CPU and DeepRecSched-GPU on QPS/Watt
(Fig. 11 bottom, Fig. 14 bottom): the GPU adds a large power footprint, so
offloading only pays off in efficiency terms for compute-intensive models or
tight latency targets.  :class:`SystemPowerModel` sums per-device power given
each device's utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.gpu import GPUPlatform
from repro.hardware.platform import HardwarePlatform
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PowerReport:
    """Power and efficiency of one serving configuration."""

    cpu_watts: float
    gpu_watts: float
    qps: float

    @property
    def total_watts(self) -> float:
        """Total system power."""
        return self.cpu_watts + self.gpu_watts

    @property
    def qps_per_watt(self) -> float:
        """Throughput-per-watt efficiency metric used throughout the paper."""
        check_positive("total_watts", self.total_watts)
        return self.qps / self.total_watts


class SystemPowerModel:
    """Power of a CPU server optionally paired with a GPU accelerator."""

    def __init__(
        self, cpu: HardwarePlatform, gpu: Optional[GPUPlatform] = None
    ) -> None:
        self._cpu = cpu
        self._gpu = gpu

    @property
    def cpu(self) -> HardwarePlatform:
        """The CPU platform."""
        return self._cpu

    @property
    def gpu(self) -> Optional[GPUPlatform]:
        """The attached accelerator, if any."""
        return self._gpu

    def power(
        self, cpu_utilization: float, gpu_utilization: float = 0.0, qps: float = 0.0
    ) -> PowerReport:
        """Return system power at the given device utilizations.

        A GPU that is attached but idle still draws its idle power — this is
        exactly why DeepRecSched-GPU does not always win on QPS/Watt.
        """
        cpu_watts = self._cpu.power_at_utilization(cpu_utilization)
        gpu_watts = 0.0
        if self._gpu is not None:
            gpu_watts = self._gpu.power_at_utilization(gpu_utilization)
        return PowerReport(cpu_watts=cpu_watts, gpu_watts=gpu_watts, qps=qps)
