"""Base hardware platform abstraction.

A :class:`HardwarePlatform` exposes the small set of machine parameters the
execution engines need to estimate operator latency: peak compute throughput,
memory bandwidth, and power.  Concrete CPU and GPU platforms live in
:mod:`repro.hardware.cpu` and :mod:`repro.hardware.gpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class HardwarePlatform:
    """Common parameters shared by CPU and GPU platforms.

    Attributes
    ----------
    name:
        Human-readable platform name (e.g. ``"skylake"``).
    peak_flops:
        Peak single-precision throughput of the whole device, in FLOP/s.
    memory_bandwidth:
        Peak DRAM bandwidth of the whole device, in bytes/s.
    tdp_watts:
        Thermal design power, in watts.  Used by the power model.
    idle_power_fraction:
        Fraction of TDP drawn when the device is idle.
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    tdp_watts: float
    idle_power_fraction: float = 0.3

    def __post_init__(self) -> None:
        check_positive("peak_flops", self.peak_flops)
        check_positive("memory_bandwidth", self.memory_bandwidth)
        check_positive("tdp_watts", self.tdp_watts)
        if not 0.0 <= self.idle_power_fraction <= 1.0:
            raise ValueError(
                f"idle_power_fraction must be in [0, 1], got {self.idle_power_fraction}"
            )

    @property
    def machine_balance(self) -> float:
        """Ridge-point operational intensity (FLOPs/byte) of the roofline."""
        return self.peak_flops / self.memory_bandwidth

    def idle_power(self) -> float:
        """Power drawn when idle, in watts."""
        return self.tdp_watts * self.idle_power_fraction

    def power_at_utilization(self, utilization: float) -> float:
        """Power drawn at a given utilization in [0, 1], in watts.

        Linear interpolation between idle power and TDP — the standard
        first-order server power model.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        idle = self.idle_power()
        return idle + (self.tdp_watts - idle) * utilization
