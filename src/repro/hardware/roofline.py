"""Roofline model (Fig. 1).

The paper's first figure places the eight recommendation models on a Skylake
roofline next to ResNet-50 and DeepSpeech2, showing that recommendation models
sit in the memory-bound region with low operational intensity.  This module
computes attainable performance for a given operational intensity on a
platform and classifies workload points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hardware.platform import HardwarePlatform
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class RooflinePoint:
    """One workload placed on a roofline.

    Attributes
    ----------
    name:
        Workload name (e.g. ``"dlrm-rmc1"``).
    operational_intensity:
        FLOPs per byte of DRAM traffic.
    achieved_flops:
        Measured / modelled throughput of the workload, FLOP/s.
    """

    name: str
    operational_intensity: float
    achieved_flops: float

    def __post_init__(self) -> None:
        check_non_negative("operational_intensity", self.operational_intensity)
        check_non_negative("achieved_flops", self.achieved_flops)


class RooflineModel:
    """Attainable-performance roofline for one hardware platform."""

    def __init__(self, platform: HardwarePlatform) -> None:
        self._platform = platform

    @property
    def platform(self) -> HardwarePlatform:
        """The platform this roofline describes."""
        return self._platform

    @property
    def ridge_point(self) -> float:
        """Operational intensity (FLOPs/byte) where the roofline bends."""
        return self._platform.machine_balance

    def attainable_flops(self, operational_intensity: float) -> float:
        """Peak attainable FLOP/s at the given operational intensity."""
        check_non_negative("operational_intensity", operational_intensity)
        return min(
            self._platform.peak_flops,
            operational_intensity * self._platform.memory_bandwidth,
        )

    def is_memory_bound(self, operational_intensity: float) -> bool:
        """True if a workload at this intensity is limited by memory bandwidth."""
        return operational_intensity < self.ridge_point

    def efficiency(self, point: RooflinePoint) -> float:
        """Fraction of attainable performance the workload achieves (0-1]."""
        attainable = self.attainable_flops(point.operational_intensity)
        check_positive("attainable_flops", attainable)
        return min(1.0, point.achieved_flops / attainable)

    def curve(self, intensities: Sequence[float]) -> List[float]:
        """Attainable FLOP/s at each of the given operational intensities."""
        return [self.attainable_flops(oi) for oi in intensities]
