"""Hardware platform models: server CPUs, GPU accelerators, caches, rooflines, power."""

from repro.hardware.cache import (
    CacheHierarchy,
    CachePolicy,
    exclusive_hierarchy,
    inclusive_hierarchy,
)
from repro.hardware.cpu import CPUPlatform, available_cpus, broadwell, get_cpu, skylake
from repro.hardware.gpu import GPUPlatform, available_gpus, get_gpu, gtx_1080ti
from repro.hardware.platform import HardwarePlatform
from repro.hardware.power import PowerReport, SystemPowerModel
from repro.hardware.roofline import RooflineModel, RooflinePoint

__all__ = [
    "CacheHierarchy",
    "CachePolicy",
    "exclusive_hierarchy",
    "inclusive_hierarchy",
    "CPUPlatform",
    "available_cpus",
    "broadwell",
    "get_cpu",
    "skylake",
    "GPUPlatform",
    "available_gpus",
    "get_gpu",
    "gtx_1080ti",
    "HardwarePlatform",
    "PowerReport",
    "SystemPowerModel",
    "RooflineModel",
    "RooflinePoint",
]
