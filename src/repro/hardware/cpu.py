"""Server-class CPU platform models (Intel Broadwell and Skylake).

The two platforms mirror the machines used in the paper's evaluation
(Section V): a 28-core 2.4 GHz Broadwell with AVX-2 and an inclusive L2/L3
hierarchy, and a 40-core 2.0 GHz Skylake with AVX-512 and an exclusive
hierarchy.  The parameters that matter for the reproduction are the relative
differences: SIMD width (batch-level parallelism payoff), core count
(request-level parallelism), and cache policy (contention under many active
cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cache import CacheHierarchy, exclusive_hierarchy, inclusive_hierarchy
from repro.hardware.platform import HardwarePlatform
from repro.utils.units import GB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CPUPlatform(HardwarePlatform):
    """A multi-core server CPU.

    Attributes
    ----------
    num_cores:
        Physical cores available to inference workers.
    frequency_hz:
        Core clock frequency.
    simd_width_bits:
        Vector register width (256 for AVX-2, 512 for AVX-512).
    cache:
        LLC contention model (inclusive or exclusive).
    per_core_bandwidth_fraction:
        Fraction of the socket's DRAM bandwidth one core can sustain on its
        own.  Embedding-gather-heavy requests on a single core are limited by
        this, not by the full socket bandwidth.
    """

    num_cores: int = 1
    frequency_hz: float = 2.0e9
    simd_width_bits: int = 256
    cache: CacheHierarchy = field(default_factory=lambda: exclusive_hierarchy(38.5 * 2**20))
    per_core_bandwidth_fraction: float = 0.15

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("num_cores", self.num_cores)
        check_positive("frequency_hz", self.frequency_hz)
        if self.simd_width_bits not in (128, 256, 512):
            raise ValueError(
                f"simd_width_bits must be one of 128/256/512, got {self.simd_width_bits}"
            )
        if not 0.0 < self.per_core_bandwidth_fraction <= 1.0:
            raise ValueError(
                "per_core_bandwidth_fraction must be in (0, 1], got "
                f"{self.per_core_bandwidth_fraction}"
            )

    @property
    def simd_lanes_fp32(self) -> int:
        """Number of single-precision lanes per SIMD instruction."""
        return self.simd_width_bits // 32

    @property
    def flops_per_cycle_per_core(self) -> float:
        """Peak FP32 FLOPs per cycle per core (two FMA ports, 2 FLOPs each)."""
        return self.simd_lanes_fp32 * 2 * 2

    @property
    def per_core_peak_flops(self) -> float:
        """Peak FP32 throughput of a single core, in FLOP/s."""
        return self.flops_per_cycle_per_core * self.frequency_hz

    @property
    def per_core_bandwidth(self) -> float:
        """DRAM bandwidth a single core can sustain, in bytes/s."""
        return self.memory_bandwidth * self.per_core_bandwidth_fraction


def broadwell(num_cores: int = 28) -> CPUPlatform:
    """Intel Broadwell server CPU used in the paper (dual-socket, 28 cores).

    AVX-2 (256-bit SIMD), 2.4 GHz, inclusive L2/L3, 120 W TDP.
    """
    frequency = 2.4e9
    simd_bits = 256
    lanes = simd_bits // 32
    peak = num_cores * lanes * 2 * 2 * frequency
    return CPUPlatform(
        name="broadwell",
        peak_flops=peak,
        memory_bandwidth=77.0 * GB,
        tdp_watts=120.0,
        idle_power_fraction=0.35,
        num_cores=num_cores,
        frequency_hz=frequency,
        simd_width_bits=simd_bits,
        cache=inclusive_hierarchy(35.0 * 2**20),
        per_core_bandwidth_fraction=0.16,
    )


def skylake(num_cores: int = 40) -> CPUPlatform:
    """Intel Skylake server CPU used in the paper (dual-socket, 40 cores).

    AVX-512, 2.0 GHz, exclusive L2/L3, 125 W TDP.
    """
    frequency = 2.0e9
    simd_bits = 512
    lanes = simd_bits // 32
    peak = num_cores * lanes * 2 * 2 * frequency
    return CPUPlatform(
        name="skylake",
        peak_flops=peak,
        memory_bandwidth=107.0 * GB,
        tdp_watts=125.0,
        idle_power_fraction=0.35,
        num_cores=num_cores,
        frequency_hz=frequency,
        simd_width_bits=simd_bits,
        cache=exclusive_hierarchy(55.0 * 2**20),
        per_core_bandwidth_fraction=0.14,
    )


_CPU_REGISTRY = {
    "broadwell": broadwell,
    "skylake": skylake,
}


def get_cpu(name: str, num_cores: int = 0) -> CPUPlatform:
    """Return a named CPU platform (``"broadwell"`` or ``"skylake"``).

    ``num_cores=0`` keeps the platform's default core count.
    """
    key = name.lower()
    if key not in _CPU_REGISTRY:
        raise KeyError(
            f"unknown CPU platform {name!r}; available: {sorted(_CPU_REGISTRY)}"
        )
    factory = _CPU_REGISTRY[key]
    if num_cores:
        return factory(num_cores=num_cores)
    return factory()


def available_cpus() -> list:
    """Names of the registered CPU platforms."""
    return sorted(_CPU_REGISTRY)
