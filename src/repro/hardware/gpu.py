"""GPU accelerator platform model.

The paper evaluates offloading recommendation queries to a server-class
NVIDIA GTX 1080 Ti and observes that (a) input data loading over PCIe accounts
for 60–80 % of end-to-end inference time, and (b) GPUs only overtake CPUs
above a per-model batch-size crossover (Fig. 4).  :class:`GPUPlatform` captures
exactly the parameters needed to reproduce those two behaviours: kernel launch
overhead, PCIe bandwidth, and a batch-efficiency curve expressed through the
execution engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platform import HardwarePlatform
from repro.utils.units import GB
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class GPUPlatform(HardwarePlatform):
    """A discrete GPU accelerator attached over PCIe.

    Attributes
    ----------
    num_sms:
        Number of streaming multiprocessors (occupancy saturates when the
        batch provides enough parallel work for all of them).
    pcie_bandwidth:
        Host-to-device transfer bandwidth, bytes/s.
    kernel_launch_overhead_s:
        Fixed per-inference overhead (kernel launches, framework dispatch).
    transfer_overhead_s:
        Fixed per-transfer latency (DMA setup, driver).
    """

    num_sms: int = 28
    pcie_bandwidth: float = 12.0 * GB
    kernel_launch_overhead_s: float = 200e-6
    transfer_overhead_s: float = 50e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("num_sms", self.num_sms)
        check_positive("pcie_bandwidth", self.pcie_bandwidth)
        check_non_negative("kernel_launch_overhead_s", self.kernel_launch_overhead_s)
        check_non_negative("transfer_overhead_s", self.transfer_overhead_s)

    def transfer_time(self, num_bytes: float) -> float:
        """Host-to-device transfer time for ``num_bytes`` of input data."""
        check_non_negative("num_bytes", num_bytes)
        return self.transfer_overhead_s + num_bytes / self.pcie_bandwidth


def gtx_1080ti() -> GPUPlatform:
    """NVIDIA GTX 1080 Ti-class accelerator used in the paper.

    3584 CUDA cores across 28 SMs, ~11.3 TFLOP/s FP32, 484 GB/s GDDR5X,
    250 W TDP, PCIe 3.0 x16 host link.
    """
    return GPUPlatform(
        name="gtx1080ti",
        peak_flops=11.3e12,
        memory_bandwidth=484.0 * GB,
        tdp_watts=250.0,
        idle_power_fraction=0.22,
        num_sms=28,
        pcie_bandwidth=12.0 * GB,
        kernel_launch_overhead_s=250e-6,
        transfer_overhead_s=60e-6,
    )


_GPU_REGISTRY = {"gtx1080ti": gtx_1080ti}


def get_gpu(name: str = "gtx1080ti") -> GPUPlatform:
    """Return a named GPU platform."""
    key = name.lower()
    if key not in _GPU_REGISTRY:
        raise KeyError(
            f"unknown GPU platform {name!r}; available: {sorted(_GPU_REGISTRY)}"
        )
    return _GPU_REGISTRY[key]()


def available_gpus() -> list:
    """Names of the registered GPU platforms."""
    return sorted(_GPU_REGISTRY)
