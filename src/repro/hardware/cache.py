"""Last-level-cache contention model.

The paper attributes the Broadwell-vs-Skylake difference in optimal batch size
(Fig. 12c) to their cache hierarchies: Broadwell's *inclusive* L2/L3 suffers
more contention as the number of concurrently active cores grows (the paper
measures 55 % vs 40 % L2 miss rates at request- vs batch-parallel operating
points), while Skylake's *exclusive* hierarchy degrades more gracefully.

:class:`CacheHierarchy` turns the number of active cores into a multiplicative
slowdown applied to the memory-bound portion of an operator's latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.utils.validation import check_positive


class CachePolicy(str, Enum):
    """Inclusion policy of the L2/L3 hierarchy."""

    INCLUSIVE = "inclusive"
    EXCLUSIVE = "exclusive"


@dataclass(frozen=True)
class CacheHierarchy:
    """Parametric model of LLC contention under multi-core activity.

    Attributes
    ----------
    policy:
        Inclusive or exclusive L2/L3 hierarchy.
    llc_bytes:
        Capacity of the last-level cache.
    contention_slope:
        Additional fractional slowdown of memory-bound work when *all* cores
        are active, relative to a single active core.  Inclusive hierarchies
        get a larger slope (back-invalidations evict useful L2 lines).
    """

    policy: CachePolicy
    llc_bytes: float
    contention_slope: float

    def __post_init__(self) -> None:
        check_positive("llc_bytes", self.llc_bytes)
        if self.contention_slope < 0:
            raise ValueError(
                f"contention_slope must be >= 0, got {self.contention_slope}"
            )

    def contention_factor(self, active_cores: int, total_cores: int) -> float:
        """Return the slowdown multiplier (>= 1) for memory-bound work.

        The factor grows linearly with the fraction of active cores: a single
        active core sees no contention; with all cores active the memory-bound
        portion of each request is ``1 + contention_slope`` times slower.
        """
        if active_cores < 1:
            raise ValueError(f"active_cores must be >= 1, got {active_cores}")
        if total_cores < 1:
            raise ValueError(f"total_cores must be >= 1, got {total_cores}")
        if active_cores > total_cores:
            active_cores = total_cores
        if total_cores == 1:
            return 1.0
        active_fraction = (active_cores - 1) / (total_cores - 1)
        return 1.0 + self.contention_slope * active_fraction

    def miss_rate(
        self,
        active_cores: int,
        total_cores: int,
        base_miss_rate: float = 0.30,
        max_miss_rate: float = 0.60,
    ) -> float:
        """Estimate an L2 miss rate for reporting purposes.

        Interpolates between ``base_miss_rate`` (one active core) and a value
        approaching ``max_miss_rate`` (all cores active), scaled by the
        contention slope so inclusive hierarchies reach higher miss rates.
        This mirrors the 40 %/55 % figures quoted in Section VI-A.
        """
        factor = self.contention_factor(active_cores, total_cores)
        max_factor = 1.0 + self.contention_slope
        if max_factor == 1.0:  # reprolint: disable=RL007 -- exact guard: 1.0 + 0.0 == 1.0 in IEEE-754; avoids 0/0 for slope-free configs
            return base_miss_rate
        fraction = (factor - 1.0) / (max_factor - 1.0)
        return base_miss_rate + (max_miss_rate - base_miss_rate) * fraction


def inclusive_hierarchy(llc_bytes: float, contention_slope: float = 0.55) -> CacheHierarchy:
    """Broadwell-style inclusive hierarchy with pronounced contention."""
    return CacheHierarchy(CachePolicy.INCLUSIVE, llc_bytes, contention_slope)


def exclusive_hierarchy(llc_bytes: float, contention_slope: float = 0.25) -> CacheHierarchy:
    """Skylake-style exclusive hierarchy with milder contention."""
    return CacheHierarchy(CachePolicy.EXCLUSIVE, llc_bytes, contention_slope)
