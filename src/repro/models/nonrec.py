"""Non-recommendation reference workloads for the Fig. 1 roofline.

The paper contrasts the eight recommendation models against a
compute-intensive CNN (ResNet-50) and a recurrent speech model (DeepSpeech2)
to show that recommendation sits in the memory-bound, low-operational-
intensity region of the roofline.  We only need each reference workload's
FLOPs and DRAM traffic per sample — not a runnable network — so they are
modelled as :class:`ReferenceWorkload` profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, MB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ReferenceWorkload:
    """Analytic profile of a non-recommendation DNN.

    Attributes
    ----------
    name:
        Workload name.
    flops_per_sample:
        FLOPs of one forward pass for a single input sample.
    bytes_per_sample:
        DRAM traffic of one forward pass for a single input sample.
    """

    name: str
    flops_per_sample: float
    bytes_per_sample: float

    def __post_init__(self) -> None:
        check_positive("flops_per_sample", self.flops_per_sample)
        check_positive("bytes_per_sample", self.bytes_per_sample)

    def flops(self, batch_size: int) -> float:
        """Total FLOPs at ``batch_size``."""
        check_positive("batch_size", batch_size)
        return self.flops_per_sample * batch_size

    def dram_bytes(self, batch_size: int) -> float:
        """Total DRAM traffic at ``batch_size``.

        Weight traffic amortises across the batch; activation traffic scales
        with it.  We assume roughly half of the per-sample traffic is weights.
        """
        check_positive("batch_size", batch_size)
        weight_fraction = 0.5
        weights = self.bytes_per_sample * weight_fraction
        activations = self.bytes_per_sample * (1.0 - weight_fraction) * batch_size
        return weights + activations

    def operational_intensity(self, batch_size: int = 1) -> float:
        """FLOPs per byte at ``batch_size``."""
        return self.flops(batch_size) / self.dram_bytes(batch_size)


def resnet50() -> ReferenceWorkload:
    """ResNet-50 image classification: ~4 GFLOPs and ~100 MB traffic per image."""
    return ReferenceWorkload(
        name="resnet50",
        flops_per_sample=4.1e9,
        bytes_per_sample=100.0 * MB,
    )


def deepspeech2() -> ReferenceWorkload:
    """DeepSpeech2 speech recognition: recurrent, moderately compute intensive."""
    return ReferenceWorkload(
        name="deepspeech2",
        flops_per_sample=2.4e9,
        bytes_per_sample=180.0 * MB,
    )


def reference_workloads() -> list:
    """Both reference workloads used in Fig. 1."""
    return [resnet50(), deepspeech2()]
