"""Wide & Deep (WnD) and Multi-Task Wide & Deep (MT-WnD) configurations.

Google's Play-Store Wide&Deep consumes ~1000-dimensional dense features that
bypass any dense-FC stack and are concatenated directly with one-hot embedding
lookups from tens of tables; a large 1024-512-256 predictor stack emits the
CTR.  MT-WnD (YouTube) replicates the predictor stack N times, one per
objective (CTR, comment rate, likes, ratings).  Both carry a tens-of-ms SLA
and are MLP-dominated (Table II uses 25 ms).
"""

from __future__ import annotations

from repro.models.config import (
    BottleneckClass,
    EmbeddingConfig,
    InteractionType,
    ModelConfig,
    PoolingType,
)

_WND_EMBEDDING = EmbeddingConfig(
    num_tables=20,
    rows_per_table=100_000,
    embedding_dim=32,
    lookups_per_table=1,
)


def wnd_config() -> ModelConfig:
    """Table I configuration of Wide&Deep (Google Play Store)."""
    return ModelConfig(
        name="wnd",
        company="Google",
        domain="play-store",
        dense_input_dim=1000,
        dense_fc=(),
        predict_fc=(1024, 512, 256, 1),
        embedding=_WND_EMBEDDING,
        pooling=PoolingType.CONCAT,
        interaction=InteractionType.CONCAT,
        bottleneck=BottleneckClass.MLP,
        sla_target_ms=25.0,
    )


def mt_wnd_config(num_tasks: int = 4) -> ModelConfig:
    """Table I configuration of Multi-Task Wide&Deep (YouTube).

    ``num_tasks`` parallel predictor stacks are evaluated, one per objective.
    """
    return ModelConfig(
        name="mt-wnd",
        company="YouTube",
        domain="video",
        dense_input_dim=1000,
        dense_fc=(),
        predict_fc=(1024, 512, 256, 1),
        num_tasks=num_tasks,
        embedding=_WND_EMBEDDING,
        pooling=PoolingType.CONCAT,
        interaction=InteractionType.CONCAT,
        bottleneck=BottleneckClass.MLP,
        sla_target_ms=25.0,
    )
