"""Recommendation model zoo: configurations, analytic operators, runnable networks."""

from repro.models.base import RecommendationModel
from repro.models.config import (
    BottleneckClass,
    EmbeddingConfig,
    InteractionType,
    ModelConfig,
    PoolingType,
)
from repro.models.dien import dien_config
from repro.models.din import din_config
from repro.models.dlrm import dlrm_rmc1_config, dlrm_rmc2_config, dlrm_rmc3_config
from repro.models.inputs import RecommendationBatch, generate_batch, query_input_bytes
from repro.models.ncf import ncf_config
from repro.models.nonrec import ReferenceWorkload, deepspeech2, reference_workloads, resnet50
from repro.models.ops import (
    AttentionUnit,
    Concat,
    ElementwiseSum,
    EmbeddingGather,
    FullyConnected,
    GRULayer,
    Operator,
    OperatorCategory,
    OperatorCost,
    mlp_operators,
)
from repro.models.wnd import mt_wnd_config, wnd_config
from repro.models.zoo import (
    MODEL_NAMES,
    available_models,
    get_config,
    get_model,
    models_by_bottleneck,
    register_model,
)

__all__ = [
    "RecommendationModel",
    "BottleneckClass",
    "EmbeddingConfig",
    "InteractionType",
    "ModelConfig",
    "PoolingType",
    "dien_config",
    "din_config",
    "dlrm_rmc1_config",
    "dlrm_rmc2_config",
    "dlrm_rmc3_config",
    "RecommendationBatch",
    "generate_batch",
    "query_input_bytes",
    "ncf_config",
    "ReferenceWorkload",
    "deepspeech2",
    "reference_workloads",
    "resnet50",
    "AttentionUnit",
    "Concat",
    "ElementwiseSum",
    "EmbeddingGather",
    "FullyConnected",
    "GRULayer",
    "Operator",
    "OperatorCategory",
    "OperatorCost",
    "mlp_operators",
    "mt_wnd_config",
    "wnd_config",
    "MODEL_NAMES",
    "available_models",
    "get_config",
    "get_model",
    "models_by_bottleneck",
    "register_model",
]
