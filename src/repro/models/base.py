"""Generalised neural recommendation model (Fig. 2).

:class:`RecommendationModel` instantiates, from a :class:`ModelConfig`, both

* an **analytic operator graph** — the per-operator FLOPs / DRAM-traffic
  costs used by the execution engines and the roofline placement, and
* an **executable NumPy network** — a real forward pass producing
  click-through-rate probabilities, used by tests and examples.

The structure follows the paper exactly: continuous features flow through an
optional dense-FC stack; categorical features index embedding tables whose
gathered vectors are pooled (sum, concat, attention, or attention+GRU); the
two branches are combined by a feature-interaction operator; and one or more
predictor-FC stacks emit CTRs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.models.config import InteractionType, ModelConfig, PoolingType
from repro.models.inputs import RecommendationBatch, generate_batch, query_input_bytes
from repro.models.layers import MLP, AttentionPooling, EmbeddingTable, GRU
from repro.models.ops import (
    AttentionUnit,
    Concat,
    ElementwiseSum,
    EmbeddingGather,
    FullyConnected,
    GRULayer,
    Operator,
    OperatorCategory,
    OperatorCost,
    mlp_operators,
)
from repro.utils.rng import SeedLike, derive_rng


class RecommendationModel:
    """A runnable + analysable instance of the generalised architecture."""

    def __init__(
        self,
        config: ModelConfig,
        rng: SeedLike = None,
        materialized_rows: int = 4096,
        build_executable: bool = True,
    ) -> None:
        self._config = config
        self._operators = self._build_operator_graph(config)
        self._executable_built = False
        self._materialized_rows = materialized_rows
        if build_executable:
            self._build_executable(derive_rng(rng))

    # ------------------------------------------------------------------ #
    # Analytic operator graph
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_operator_graph(config: ModelConfig) -> List[Operator]:
        operators: List[Operator] = []
        emb = config.embedding

        if config.has_dense_stack:
            dense_dims = [config.dense_input_dim, *config.dense_fc]
            operators.extend(mlp_operators("dense", dense_dims))

        operators.append(
            EmbeddingGather(
                name="embedding",
                num_tables=emb.num_tables,
                rows_per_table=emb.rows_per_table,
                embedding_dim=emb.embedding_dim,
                lookups_per_table=emb.lookups_per_table,
            )
        )

        if config.pooling is PoolingType.SUM:
            operators.append(
                ElementwiseSum(
                    name="sparse_pool_sum",
                    elements_per_sample=emb.embedding_dim,
                    num_inputs=emb.num_tables,
                )
            )
        elif config.pooling is PoolingType.CONCAT:
            operators.append(
                Concat(
                    name="sparse_pool_concat",
                    elements_per_sample=emb.num_tables * emb.embedding_dim,
                )
            )
        elif config.pooling is PoolingType.ATTENTION:
            operators.append(
                AttentionUnit(
                    name="attention",
                    embedding_dim=emb.embedding_dim,
                    sequence_length=config.sequence_length,
                    hidden_units=config.attention_hidden,
                )
            )
            operators.append(
                Concat(
                    name="sparse_pool_concat",
                    elements_per_sample=emb.num_tables * emb.embedding_dim,
                )
            )
        else:  # ATTENTION_RNN
            operators.append(
                AttentionUnit(
                    name="attention",
                    embedding_dim=emb.embedding_dim,
                    sequence_length=config.sequence_length,
                    hidden_units=config.attention_hidden,
                )
            )
            operators.append(
                GRULayer(
                    name="interest_gru",
                    input_dim=emb.embedding_dim,
                    hidden_dim=config.gru_hidden_dim,
                    sequence_length=config.sequence_length,
                )
            )
            operators.append(
                Concat(
                    name="sparse_pool_concat",
                    elements_per_sample=config.sparse_output_dim,
                )
            )

        interaction_width = config.interaction_output_dim
        if config.interaction is InteractionType.CONCAT:
            operators.append(
                Concat(name="feature_interaction", elements_per_sample=interaction_width)
            )
        else:
            operators.append(
                ElementwiseSum(
                    name="feature_interaction",
                    elements_per_sample=interaction_width,
                    num_inputs=2,
                )
            )

        predict_dims = [interaction_width, *config.predict_fc]
        for task in range(config.num_tasks):
            prefix = "predict" if config.num_tasks == 1 else f"predict_task{task}"
            operators.extend(mlp_operators(prefix, predict_dims))
        return operators

    # ------------------------------------------------------------------ #
    # Executable network
    # ------------------------------------------------------------------ #

    def _build_executable(self, rng: np.random.Generator) -> None:
        config = self._config
        emb = config.embedding

        self._dense_mlp: Optional[MLP] = None
        if config.has_dense_stack:
            self._dense_mlp = MLP(
                [config.dense_input_dim, *config.dense_fc], rng=rng
            )

        self._tables = [
            EmbeddingTable(
                num_rows=emb.rows_per_table,
                embedding_dim=emb.embedding_dim,
                materialized_rows=self._materialized_rows,
                rng=rng,
            )
            for _ in range(emb.num_tables)
        ]

        self._attention: Optional[AttentionPooling] = None
        self._gru: Optional[GRU] = None
        if config.pooling in (PoolingType.ATTENTION, PoolingType.ATTENTION_RNN):
            self._attention = AttentionPooling(
                emb.embedding_dim, config.attention_hidden, rng=rng
            )
        if config.pooling is PoolingType.ATTENTION_RNN:
            self._gru = GRU(emb.embedding_dim, config.gru_hidden_dim, rng=rng)

        predict_dims = [config.interaction_output_dim, *config.predict_fc]
        self._predictors = [
            MLP(predict_dims, final_activation="sigmoid", rng=rng)
            for _ in range(config.num_tasks)
        ]
        self._executable_built = True

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> ModelConfig:
        """The architectural configuration this model was built from."""
        return self._config

    @property
    def name(self) -> str:
        """Zoo key of the model."""
        return self._config.name

    def operators(self) -> List[Operator]:
        """The analytic operator graph (a copy of the list)."""
        return list(self._operators)

    def cost(self, batch_size: int) -> OperatorCost:
        """Aggregate FLOPs / DRAM traffic of one inference at ``batch_size``."""
        total = OperatorCost(flops=0.0, regular_bytes=0.0, irregular_bytes=0.0)
        for op in self._operators:
            total = total + op.cost(batch_size)
        return total

    def cost_by_category(self, batch_size: int) -> Dict[OperatorCategory, OperatorCost]:
        """Per-category aggregate costs (feeds the Fig. 3 breakdown)."""
        breakdown: Dict[OperatorCategory, OperatorCost] = {}
        for op in self._operators:
            cost = op.cost(batch_size)
            if op.category in breakdown:
                breakdown[op.category] = breakdown[op.category] + cost
            else:
                breakdown[op.category] = cost
        return breakdown

    def flops(self, batch_size: int) -> float:
        """Total FLOPs of one inference at ``batch_size``."""
        return self.cost(batch_size).flops

    def dram_bytes(self, batch_size: int) -> float:
        """Total DRAM traffic of one inference at ``batch_size``."""
        return self.cost(batch_size).total_bytes

    def operational_intensity(self, batch_size: int) -> float:
        """FLOPs per byte at ``batch_size`` (the x-axis of Fig. 1)."""
        return self.cost(batch_size).operational_intensity

    def model_storage_bytes(self) -> float:
        """Nominal parameter storage (dominated by embedding tables)."""
        return sum(op.weight_bytes() for op in self._operators)

    def input_bytes(self, batch_size: int) -> float:
        """Input footprint of a batch, for accelerator transfer estimates."""
        return query_input_bytes(self._config, batch_size)

    # -- runnable inference -------------------------------------------- #

    def sample_batch(self, batch_size: int, rng: SeedLike = None) -> RecommendationBatch:
        """Generate a synthetic input batch shaped for this model."""
        return generate_batch(self._config, batch_size, rng=rng)

    def forward(self, batch: RecommendationBatch) -> np.ndarray:
        """Run inference; returns ``(batch, num_tasks)`` CTR probabilities."""
        if not self._executable_built:
            raise RuntimeError(
                "model was constructed with build_executable=False; "
                "rebuild with build_executable=True to run inference"
            )
        config = self._config
        if batch.num_tables != config.embedding.num_tables:
            raise ValueError(
                f"batch has {batch.num_tables} sparse inputs, model expects "
                f"{config.embedding.num_tables}"
            )

        dense_out = self._dense_branch(batch)
        sparse_out = self._sparse_branch(batch)
        interaction = self._interact(dense_out, sparse_out)
        outputs = [predictor.forward(interaction) for predictor in self._predictors]
        return np.concatenate(outputs, axis=1)

    def predict_ctr(self, batch: RecommendationBatch) -> np.ndarray:
        """Primary-task CTR probabilities, ``(batch,)``."""
        return self.forward(batch)[:, 0]

    # -- forward-pass internals ----------------------------------------- #

    def _dense_branch(self, batch: RecommendationBatch) -> np.ndarray:
        config = self._config
        if config.dense_input_dim == 0:
            return np.zeros((batch.batch_size, 0))
        if self._dense_mlp is not None:
            return self._dense_mlp.forward(batch.dense)
        return batch.dense

    def _sparse_branch(self, batch: RecommendationBatch) -> np.ndarray:
        config = self._config
        pooling = config.pooling
        if pooling is PoolingType.SUM:
            pooled = np.zeros((batch.batch_size, config.embedding.embedding_dim))
            for table, indices in zip(self._tables, batch.sparse):
                pooled = pooled + table.pooled_lookup(indices)
            return pooled
        if pooling is PoolingType.CONCAT:
            pooled = [
                table.pooled_lookup(indices)
                for table, indices in zip(self._tables, batch.sparse)
            ]
            return np.concatenate(pooled, axis=1)
        if pooling is PoolingType.ATTENTION:
            return self._attention_branch(batch)
        return self._attention_rnn_branch(batch)

    def _behaviour_sequence(self, batch: RecommendationBatch) -> np.ndarray:
        """History embeddings ``(batch, seq, dim)`` from the first (largest) table."""
        seq_len = self._config.sequence_length
        history_table = self._tables[0]
        indices = batch.sparse[0]
        # Re-use (and tile if necessary) the multi-hot indices as the
        # behaviour sequence of length ``sequence_length``.
        if indices.shape[1] >= seq_len:
            seq_indices = indices[:, :seq_len]
        else:
            repeats = int(np.ceil(seq_len / indices.shape[1]))
            seq_indices = np.tile(indices, (1, repeats))[:, :seq_len]
        return history_table.lookup(seq_indices)

    def _candidate_embedding(self, batch: RecommendationBatch) -> np.ndarray:
        candidate_table = self._tables[-1]
        return candidate_table.pooled_lookup(batch.sparse[-1][:, :1])

    def _attention_branch(self, batch: RecommendationBatch) -> np.ndarray:
        history = self._behaviour_sequence(batch)
        candidate = self._candidate_embedding(batch)
        attended = self._attention.forward(candidate, history)
        others = [
            table.pooled_lookup(indices)
            for table, indices in zip(self._tables[1:], batch.sparse[1:])
        ]
        return np.concatenate([attended, *others], axis=1)

    def _attention_rnn_branch(self, batch: RecommendationBatch) -> np.ndarray:
        history = self._behaviour_sequence(batch)
        candidate = self._candidate_embedding(batch)
        attended = self._attention.forward(candidate, history)
        # Interest evolution: the GRU consumes the history sequence modulated
        # by the attended interest vector.
        modulated = history * attended[:, None, :]
        evolved = self._gru.forward(modulated)
        others = [
            table.pooled_lookup(indices)
            for table, indices in zip(self._tables[1:], batch.sparse[1:])
        ]
        return np.concatenate([evolved, *others], axis=1)

    def _interact(self, dense_out: np.ndarray, sparse_out: np.ndarray) -> np.ndarray:
        config = self._config
        if config.interaction is InteractionType.CONCAT:
            return np.concatenate([dense_out, sparse_out], axis=1)
        width = config.interaction_output_dim

        def pad(x: np.ndarray) -> np.ndarray:
            if x.shape[1] == width:
                return x
            padded = np.zeros((x.shape[0], width))
            padded[:, : x.shape[1]] = x
            return padded

        return pad(dense_out) + pad(sparse_out)
