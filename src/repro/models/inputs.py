"""Synthetic input generation for recommendation inference.

A recommendation query for a user carries a batch of candidate items; each
sample has continuous (dense) features and one multi-hot index list per
embedding table.  :class:`RecommendationBatch` is the runnable input format
consumed by :meth:`repro.models.base.RecommendationModel.forward`, and
:func:`generate_batch` produces synthetic but structurally faithful inputs
(power-law-ish index popularity, unit-normal dense features).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.models.config import ModelConfig
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive


@dataclass
class RecommendationBatch:
    """One inference batch (a slice of a user query).

    Attributes
    ----------
    dense:
        ``(batch, dense_input_dim)`` continuous features; an empty second
        dimension when the model has no dense inputs.
    sparse:
        One ``(batch, lookups)`` int array per embedding table.
    """

    dense: np.ndarray
    sparse: List[np.ndarray]

    def __post_init__(self) -> None:
        if self.dense.ndim != 2:
            raise ValueError(f"dense must be 2-D, got shape {self.dense.shape}")
        batch = self.dense.shape[0]
        for table_idx, indices in enumerate(self.sparse):
            if indices.ndim != 2 or indices.shape[0] != batch:
                raise ValueError(
                    f"sparse[{table_idx}] must be (batch={batch}, lookups), "
                    f"got {indices.shape}"
                )

    @property
    def batch_size(self) -> int:
        """Number of candidate items in this batch."""
        return self.dense.shape[0]

    @property
    def num_tables(self) -> int:
        """Number of embedding tables this batch feeds."""
        return len(self.sparse)

    def input_bytes(self) -> int:
        """Bytes needed to transfer this batch to an accelerator (FP32 + int64)."""
        dense_bytes = self.dense.size * 4
        sparse_bytes = sum(indices.size * 8 for indices in self.sparse)
        return int(dense_bytes + sparse_bytes)

    def slice(self, start: int, stop: int) -> "RecommendationBatch":
        """Return the sub-batch covering samples ``[start, stop)``."""
        if not 0 <= start < stop <= self.batch_size:
            raise ValueError(
                f"invalid slice [{start}, {stop}) for batch of {self.batch_size}"
            )
        return RecommendationBatch(
            dense=self.dense[start:stop],
            sparse=[indices[start:stop] for indices in self.sparse],
        )


def _popularity_skewed_indices(
    rng: np.random.Generator, num_rows: int, shape: tuple
) -> np.ndarray:
    """Sample indices with a Zipf-like popularity skew, clipped to the table."""
    # A Pareto draw maps most mass onto small indices, mimicking the hot-item
    # skew of production categorical features.
    raw = rng.pareto(1.2, size=shape)
    scaled = np.floor(raw / (raw.max() + 1e-9) * (num_rows - 1)).astype(np.int64)
    return np.clip(scaled, 0, num_rows - 1)


def generate_batch(
    config: ModelConfig,
    batch_size: int,
    rng: SeedLike = None,
) -> RecommendationBatch:
    """Generate a synthetic :class:`RecommendationBatch` for ``config``.

    Dense features are standard normal; sparse indices follow a heavy-tailed
    popularity distribution within each table.
    """
    check_positive("batch_size", batch_size)
    generator = derive_rng(rng)
    dense_dim = config.dense_input_dim
    dense = (
        generator.normal(size=(batch_size, dense_dim))
        if dense_dim
        else np.zeros((batch_size, 0))
    )
    sparse = []
    emb = config.embedding
    for _ in range(emb.num_tables):
        sparse.append(
            _popularity_skewed_indices(
                generator, emb.rows_per_table, (batch_size, emb.lookups_per_table)
            )
        )
    return RecommendationBatch(dense=dense, sparse=sparse)


def query_input_bytes(config: ModelConfig, query_size: int) -> float:
    """Analytic input footprint of a query of ``query_size`` candidate items.

    Used by the GPU engine for PCIe transfer-time estimation without having to
    materialise an actual batch.
    """
    check_positive("query_size", query_size)
    dense_bytes = query_size * config.dense_input_dim * 4
    emb = config.embedding
    sparse_bytes = query_size * emb.num_tables * emb.lookups_per_table * 8
    return float(dense_bytes + sparse_bytes)
