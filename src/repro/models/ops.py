"""Operator-level cost descriptions.

Every recommendation model in the zoo lowers to a sequence of operators
(fully-connected layers, embedding-table gathers, pooling, feature
interaction, attention, recurrent cells).  Each operator reports, for a given
batch size, how many FLOPs it performs and how many bytes of DRAM traffic it
generates — split into *regular* (streaming) and *irregular* (gather) traffic
because the execution engines derate bandwidth for irregular access.

These analytic costs drive the roofline placement (Fig. 1), the operator time
breakdown (Fig. 3), and the latency model used by the serving simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence

from repro.utils.validation import check_positive

BYTES_PER_ELEMENT = 4  # FP32 activations and weights throughout.


class OperatorCategory(str, Enum):
    """Buckets used for the Fig. 3 operator time breakdown."""

    FC = "fc"
    EMBEDDING = "embedding"
    ATTENTION = "attention"
    RECURRENT = "recurrent"
    CONCAT = "concat"
    SUM = "sum"
    OTHER = "other"


@dataclass(frozen=True)
class OperatorCost:
    """FLOPs and DRAM traffic of one operator at one batch size."""

    flops: float
    regular_bytes: float
    irregular_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """All DRAM traffic, regular plus irregular."""
        return self.regular_bytes + self.irregular_bytes

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte of DRAM traffic (0 when traffic-free)."""
        if self.total_bytes == 0:
            return 0.0
        return self.flops / self.total_bytes

    def __add__(self, other: "OperatorCost") -> "OperatorCost":
        return OperatorCost(
            flops=self.flops + other.flops,
            regular_bytes=self.regular_bytes + other.regular_bytes,
            irregular_bytes=self.irregular_bytes + other.irregular_bytes,
        )


class Operator:
    """Base class for analytic operators.

    Subclasses implement :meth:`cost` and expose a human-readable ``name`` and
    a breakdown ``category``.
    """

    def __init__(self, name: str, category: OperatorCategory) -> None:
        self._name = name
        self._category = category

    @property
    def name(self) -> str:
        """Operator instance name (unique within one model)."""
        return self._name

    @property
    def category(self) -> OperatorCategory:
        """Breakdown bucket this operator contributes to."""
        return self._category

    def cost(self, batch_size: int) -> OperatorCost:
        """Return FLOPs and DRAM traffic at ``batch_size``."""
        raise NotImplementedError

    def weight_bytes(self) -> float:
        """Bytes of model parameters owned by this operator."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}(name={self._name!r})"


def _check_batch(batch_size: int) -> int:
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return batch_size


class FullyConnected(Operator):
    """Dense (matrix-multiply) layer: ``y = act(x W + b)``."""

    def __init__(self, name: str, in_features: int, out_features: int) -> None:
        super().__init__(name, OperatorCategory.FC)
        self.in_features = int(check_positive("in_features", in_features))
        self.out_features = int(check_positive("out_features", out_features))

    def weight_bytes(self) -> float:
        return (self.in_features * self.out_features + self.out_features) * BYTES_PER_ELEMENT

    def cost(self, batch_size: int) -> OperatorCost:
        batch = _check_batch(batch_size)
        flops = 2.0 * batch * self.in_features * self.out_features
        activation_bytes = batch * (self.in_features + self.out_features) * BYTES_PER_ELEMENT
        return OperatorCost(
            flops=flops, regular_bytes=self.weight_bytes() + activation_bytes
        )


class EmbeddingGather(Operator):
    """Multi-hot embedding-table lookup followed by on-the-fly pooling.

    Each of the ``num_tables`` tables is indexed ``lookups_per_table`` times
    per sample; the gathered rows are summed (the pooling FLOPs are included
    here because production implementations fuse the reduction into the
    gather, cf. ``SparseLengthsSum``).
    """

    def __init__(
        self,
        name: str,
        num_tables: int,
        rows_per_table: int,
        embedding_dim: int,
        lookups_per_table: int,
    ) -> None:
        super().__init__(name, OperatorCategory.EMBEDDING)
        self.num_tables = int(check_positive("num_tables", num_tables))
        self.rows_per_table = int(check_positive("rows_per_table", rows_per_table))
        self.embedding_dim = int(check_positive("embedding_dim", embedding_dim))
        self.lookups_per_table = int(check_positive("lookups_per_table", lookups_per_table))

    def weight_bytes(self) -> float:
        return (
            float(self.num_tables)
            * self.rows_per_table
            * self.embedding_dim
            * BYTES_PER_ELEMENT
        )

    def cost(self, batch_size: int) -> OperatorCost:
        batch = _check_batch(batch_size)
        rows_read = batch * self.num_tables * self.lookups_per_table
        gather_bytes = rows_read * self.embedding_dim * BYTES_PER_ELEMENT
        output_bytes = batch * self.num_tables * self.embedding_dim * BYTES_PER_ELEMENT
        index_bytes = rows_read * 8  # int64 indices streamed in.
        pooling_flops = (
            batch
            * self.num_tables
            * max(0, self.lookups_per_table - 1)
            * self.embedding_dim
        )
        return OperatorCost(
            flops=float(pooling_flops),
            regular_bytes=float(output_bytes + index_bytes),
            irregular_bytes=float(gather_bytes),
        )


class Concat(Operator):
    """Concatenation of feature vectors (pure data movement)."""

    def __init__(self, name: str, elements_per_sample: int) -> None:
        super().__init__(name, OperatorCategory.CONCAT)
        self.elements_per_sample = int(check_positive("elements_per_sample", elements_per_sample))

    def cost(self, batch_size: int) -> OperatorCost:
        batch = _check_batch(batch_size)
        moved = 2.0 * batch * self.elements_per_sample * BYTES_PER_ELEMENT
        return OperatorCost(flops=0.0, regular_bytes=moved)


class ElementwiseSum(Operator):
    """Elementwise reduction of ``num_inputs`` feature vectors."""

    def __init__(self, name: str, elements_per_sample: int, num_inputs: int = 2) -> None:
        super().__init__(name, OperatorCategory.SUM)
        self.elements_per_sample = int(check_positive("elements_per_sample", elements_per_sample))
        self.num_inputs = int(check_positive("num_inputs", num_inputs))

    def cost(self, batch_size: int) -> OperatorCost:
        batch = _check_batch(batch_size)
        flops = batch * self.elements_per_sample * max(1, self.num_inputs - 1)
        moved = batch * self.elements_per_sample * (self.num_inputs + 1) * BYTES_PER_ELEMENT
        return OperatorCost(flops=float(flops), regular_bytes=float(moved))


class AttentionUnit(Operator):
    """DIN-style local activation unit over a user-behaviour sequence.

    For each of ``sequence_length`` history items the unit concatenates the
    candidate and history embeddings, runs a small MLP to produce a scalar
    weight, and finally computes the weighted sum of history embeddings.
    """

    def __init__(
        self,
        name: str,
        embedding_dim: int,
        sequence_length: int,
        hidden_units: Sequence[int] = (36,),
    ) -> None:
        super().__init__(name, OperatorCategory.ATTENTION)
        self.embedding_dim = int(check_positive("embedding_dim", embedding_dim))
        self.sequence_length = int(check_positive("sequence_length", sequence_length))
        self.hidden_units = tuple(int(check_positive("hidden_units", h)) for h in hidden_units)

    def _mlp_dims(self) -> List[int]:
        # Input: candidate emb, history emb, their difference and product.
        return [4 * self.embedding_dim, *self.hidden_units, 1]

    def weight_bytes(self) -> float:
        dims = self._mlp_dims()
        weights = sum(dims[i] * dims[i + 1] + dims[i + 1] for i in range(len(dims) - 1))
        return weights * BYTES_PER_ELEMENT

    def cost(self, batch_size: int) -> OperatorCost:
        batch = _check_batch(batch_size)
        dims = self._mlp_dims()
        mlp_flops_per_item = 2.0 * sum(dims[i] * dims[i + 1] for i in range(len(dims) - 1))
        flops = batch * self.sequence_length * mlp_flops_per_item
        # Weighted-sum reduction of the history embeddings.
        flops += 2.0 * batch * self.sequence_length * self.embedding_dim
        activation_bytes = (
            batch
            * self.sequence_length
            * (dims[0] + sum(self.hidden_units) + 1)
            * BYTES_PER_ELEMENT
        )
        history_bytes = batch * self.sequence_length * self.embedding_dim * BYTES_PER_ELEMENT
        return OperatorCost(
            flops=float(flops),
            regular_bytes=float(self.weight_bytes() + activation_bytes + history_bytes),
        )


class GRULayer(Operator):
    """Gated recurrent unit unrolled over a behaviour sequence (DIEN)."""

    def __init__(
        self, name: str, input_dim: int, hidden_dim: int, sequence_length: int
    ) -> None:
        super().__init__(name, OperatorCategory.RECURRENT)
        self.input_dim = int(check_positive("input_dim", input_dim))
        self.hidden_dim = int(check_positive("hidden_dim", hidden_dim))
        self.sequence_length = int(check_positive("sequence_length", sequence_length))

    def weight_bytes(self) -> float:
        weights = 3 * (self.input_dim * self.hidden_dim + self.hidden_dim * self.hidden_dim)
        biases = 3 * 2 * self.hidden_dim
        return (weights + biases) * BYTES_PER_ELEMENT

    def cost(self, batch_size: int) -> OperatorCost:
        batch = _check_batch(batch_size)
        per_step_flops = 2.0 * 3 * (
            self.input_dim * self.hidden_dim + self.hidden_dim * self.hidden_dim
        ) + 7.0 * self.hidden_dim
        flops = batch * self.sequence_length * per_step_flops
        activation_bytes = (
            batch
            * self.sequence_length
            * (self.input_dim + self.hidden_dim)
            * BYTES_PER_ELEMENT
        )
        # The recurrent weights are re-read every timestep and rarely stay
        # resident across a large batch, which is what makes DIEN
        # recurrent-dominated on CPU.
        weight_traffic = self.weight_bytes() * self.sequence_length
        return OperatorCost(
            flops=float(flops), regular_bytes=float(activation_bytes + weight_traffic)
        )


def mlp_operators(name_prefix: str, layer_dims: Sequence[int]) -> List[FullyConnected]:
    """Build a chain of :class:`FullyConnected` ops from a dims list.

    ``layer_dims`` is ``[input, hidden..., output]``; ``len(layer_dims) - 1``
    operators are produced.
    """
    if len(layer_dims) < 2:
        raise ValueError(f"layer_dims needs >= 2 entries, got {list(layer_dims)}")
    ops = []
    for idx in range(len(layer_dims) - 1):
        ops.append(
            FullyConnected(
                name=f"{name_prefix}_fc{idx}",
                in_features=layer_dims[idx],
                out_features=layer_dims[idx + 1],
            )
        )
    return ops
