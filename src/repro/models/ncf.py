"""Neural Collaborative Filtering (NCF) configuration.

NCF generalises matrix factorisation with MLPs: one-hot user and item
features feed four embedding tables (two user-side, two item-side), a
generalised-MF style pooling combines them, and a small predictor stack emits
the CTR.  There is no dense-feature stack.  Table I lists a 256-256-128
predictor stack, 4 tables, 1 lookup per table, concat pooling, and Table II a
5 ms SLA (MLP-dominated).
"""

from __future__ import annotations

from repro.models.config import (
    BottleneckClass,
    EmbeddingConfig,
    InteractionType,
    ModelConfig,
    PoolingType,
)


def ncf_config() -> ModelConfig:
    """Table I configuration of NCF."""
    return ModelConfig(
        name="ncf",
        company="-",
        domain="movies",
        dense_input_dim=0,
        dense_fc=(),
        predict_fc=(256, 256, 128, 1),
        embedding=EmbeddingConfig(
            num_tables=4,
            rows_per_table=500_000,
            embedding_dim=64,
            lookups_per_table=1,
        ),
        pooling=PoolingType.CONCAT,
        interaction=InteractionType.CONCAT,
        bottleneck=BottleneckClass.MLP,
        sla_target_ms=5.0,
    )
