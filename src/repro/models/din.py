"""Alibaba Deep Interest Network (DIN) configuration.

DIN models user interest with an attention mechanism (local activation units)
over a long user-behaviour sequence gathered from large multi-hot embedding
tables (hundreds of lookups), plus several smaller one-hot tables.  There are
no dense input features, and the predictor stack is small (200-80-2).  Its
runtime is split between embedding gathers, concatenation, and the attention
FCs, with a 100 ms SLA (Table II).
"""

from __future__ import annotations

from repro.models.config import (
    BottleneckClass,
    EmbeddingConfig,
    InteractionType,
    ModelConfig,
    PoolingType,
)


def din_config() -> ModelConfig:
    """Table I configuration of DIN (embedding + attention dominated)."""
    return ModelConfig(
        name="din",
        company="Alibaba",
        domain="e-commerce",
        dense_input_dim=0,
        dense_fc=(),
        predict_fc=(200, 80, 2),
        embedding=EmbeddingConfig(
            num_tables=16,
            rows_per_table=2_000_000,
            embedding_dim=32,
            lookups_per_table=150,
        ),
        pooling=PoolingType.ATTENTION,
        interaction=InteractionType.CONCAT,
        bottleneck=BottleneckClass.ATTENTION,
        sla_target_ms=100.0,
        sequence_length=150,
        attention_hidden=(36,),
    )
