"""Executable NumPy layers used by the model zoo's forward passes.

The analytic operators in :mod:`repro.models.ops` drive the performance
model; the layers here make every model in the zoo *runnable* so that tests
and examples can exercise real inference (producing click-through-rate
predictions) rather than stubs.  They are intentionally small, dependency-free
NumPy implementations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=float)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class Linear:
    """Affine layer ``y = act(x W + b)`` with He-style random initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        rng: SeedLike = None,
    ) -> None:
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        if activation not in ("relu", "sigmoid", "none"):
            raise ValueError(f"unknown activation {activation!r}")
        generator = derive_rng(rng)
        scale = np.sqrt(2.0 / in_features)
        self.weight = generator.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.activation = activation
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the layer to a ``(batch, in_features)`` input."""
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        out = x @ self.weight + self.bias
        if self.activation == "relu":
            return relu(out)
        if self.activation == "sigmoid":
            return sigmoid(out)
        return out


class MLP:
    """Stack of :class:`Linear` layers.

    The final layer's activation is configurable (recommendation predictor
    stacks end in a sigmoid to emit a CTR probability).
    """

    def __init__(
        self,
        layer_dims: Sequence[int],
        final_activation: str = "none",
        rng: SeedLike = None,
    ) -> None:
        if len(layer_dims) < 2:
            raise ValueError(f"layer_dims needs >= 2 entries, got {list(layer_dims)}")
        generator = derive_rng(rng)
        self.layers: List[Linear] = []
        last_index = len(layer_dims) - 2
        for idx in range(len(layer_dims) - 1):
            activation = "relu" if idx < last_index else final_activation
            self.layers.append(
                Linear(layer_dims[idx], layer_dims[idx + 1], activation, generator)
            )

    @property
    def input_dim(self) -> int:
        """Expected feature dimension of the input."""
        return self.layers[0].in_features

    @property
    def output_dim(self) -> int:
        """Feature dimension of the output."""
        return self.layers[-1].out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply every layer in sequence."""
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out


class EmbeddingTable:
    """One embedding table supporting multi-hot lookups with sum pooling.

    Production tables hold up to billions of rows; for executability the
    table materialises at most ``materialized_rows`` rows and hashes indices
    into that range.  The *analytic* storage cost (used by the performance
    model) still reflects the nominal row count — the hashing only affects the
    runnable weights.
    """

    def __init__(
        self,
        num_rows: int,
        embedding_dim: int,
        materialized_rows: int = 4096,
        rng: SeedLike = None,
    ) -> None:
        check_positive("num_rows", num_rows)
        check_positive("embedding_dim", embedding_dim)
        check_positive("materialized_rows", materialized_rows)
        generator = derive_rng(rng)
        self.num_rows = int(num_rows)
        self.embedding_dim = int(embedding_dim)
        self.materialized_rows = int(min(num_rows, materialized_rows))
        self.weight = generator.normal(
            0.0, 0.1, size=(self.materialized_rows, self.embedding_dim)
        )

    def _map_indices(self, indices: np.ndarray) -> np.ndarray:
        if np.any(indices < 0) or np.any(indices >= self.num_rows):
            raise ValueError(
                f"indices must be in [0, {self.num_rows}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        return indices % self.materialized_rows

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Gather rows for ``(batch, lookups)`` indices → ``(batch, lookups, dim)``."""
        indices = np.asarray(indices)
        if indices.ndim != 2:
            raise ValueError(f"indices must be 2-D (batch, lookups), got {indices.shape}")
        return self.weight[self._map_indices(indices)]

    def pooled_lookup(self, indices: np.ndarray) -> np.ndarray:
        """Gather and sum-pool rows → ``(batch, dim)``."""
        return self.lookup(indices).sum(axis=1)


class AttentionPooling:
    """DIN-style local activation unit.

    Scores each history embedding against the candidate embedding with a
    small MLP over ``[candidate, history, candidate - history,
    candidate * history]`` and returns the weighted sum of history embeddings.
    """

    def __init__(
        self,
        embedding_dim: int,
        hidden_units: Sequence[int] = (36,),
        rng: SeedLike = None,
    ) -> None:
        check_positive("embedding_dim", embedding_dim)
        generator = derive_rng(rng)
        self.embedding_dim = int(embedding_dim)
        dims = [4 * embedding_dim, *hidden_units, 1]
        self.scorer = MLP(dims, final_activation="none", rng=generator)

    def forward(self, candidate: np.ndarray, history: np.ndarray) -> np.ndarray:
        """Pool ``history`` ``(batch, seq, dim)`` against ``candidate`` ``(batch, dim)``."""
        if candidate.ndim != 2 or history.ndim != 3:
            raise ValueError(
                "candidate must be (batch, dim) and history (batch, seq, dim), got "
                f"{candidate.shape} and {history.shape}"
            )
        batch, seq_len, dim = history.shape
        if candidate.shape != (batch, dim) or dim != self.embedding_dim:
            raise ValueError(
                f"candidate shape {candidate.shape} incompatible with history {history.shape}"
            )
        expanded = np.repeat(candidate[:, None, :], seq_len, axis=1)
        features = np.concatenate(
            [expanded, history, expanded - history, expanded * history], axis=2
        )
        scores = self.scorer.forward(features.reshape(batch * seq_len, -1))
        weights = scores.reshape(batch, seq_len, 1)
        weights = np.exp(weights - weights.max(axis=1, keepdims=True))
        weights = weights / weights.sum(axis=1, keepdims=True)
        return (weights * history).sum(axis=1)


class GRU:
    """Minimal gated-recurrent-unit layer unrolled over a sequence."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: SeedLike = None) -> None:
        check_positive("input_dim", input_dim)
        check_positive("hidden_dim", hidden_dim)
        generator = derive_rng(rng)
        scale = np.sqrt(1.0 / hidden_dim)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        self.w_z = generator.normal(0.0, scale, size=(input_dim + hidden_dim, hidden_dim))
        self.w_r = generator.normal(0.0, scale, size=(input_dim + hidden_dim, hidden_dim))
        self.w_h = generator.normal(0.0, scale, size=(input_dim + hidden_dim, hidden_dim))
        self.b_z = np.zeros(hidden_dim)
        self.b_r = np.zeros(hidden_dim)
        self.b_h = np.zeros(hidden_dim)

    def step(self, x_t: np.ndarray, h_prev: np.ndarray) -> np.ndarray:
        """One GRU timestep for ``(batch, input_dim)`` input and previous state."""
        combined = np.concatenate([x_t, h_prev], axis=1)
        z = sigmoid(combined @ self.w_z + self.b_z)
        r = sigmoid(combined @ self.w_r + self.b_r)
        combined_r = np.concatenate([x_t, r * h_prev], axis=1)
        h_tilde = np.tanh(combined_r @ self.w_h + self.b_h)
        return (1.0 - z) * h_prev + z * h_tilde

    def forward(
        self, sequence: np.ndarray, h0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Run over a ``(batch, seq, input_dim)`` sequence, return final hidden state."""
        if sequence.ndim != 3 or sequence.shape[2] != self.input_dim:
            raise ValueError(
                f"sequence must be (batch, seq, {self.input_dim}), got {sequence.shape}"
            )
        batch, seq_len, _ = sequence.shape
        hidden = h0 if h0 is not None else np.zeros((batch, self.hidden_dim))
        if hidden.shape != (batch, self.hidden_dim):
            raise ValueError(
                f"h0 must be (batch, {self.hidden_dim}), got {hidden.shape}"
            )
        for t in range(seq_len):
            hidden = self.step(sequence[:, t, :], hidden)
        return hidden
