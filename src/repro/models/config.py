"""Model architecture configuration (the knobs of Fig. 2).

The paper's generalised recommendation architecture is parameterised by the
width/depth of the dense-feature DNN stack, the predictor DNN stack, the
number of embedding tables, lookups per table, the sparse-pooling operator,
and the feature-interaction operator.  :class:`ModelConfig` captures exactly
those knobs; the eight industry models (Table I) are specific configurations
of it, constructed in the per-model modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Tuple

from repro.utils.validation import check_non_negative, check_positive


class PoolingType(str, Enum):
    """Sparse-feature pooling operator placed on top of the embedding lookups."""

    SUM = "sum"
    CONCAT = "concat"
    ATTENTION = "attention"
    ATTENTION_RNN = "attention_rnn"


class InteractionType(str, Enum):
    """Feature-interaction operator combining dense and sparse branches."""

    CONCAT = "concat"
    SUM = "sum"


class BottleneckClass(str, Enum):
    """Runtime-bottleneck label from Table II, used to group models in plots."""

    EMBEDDING = "embedding-dominated"
    MLP = "mlp-dominated"
    ATTENTION = "attention-dominated"


@dataclass(frozen=True)
class EmbeddingConfig:
    """Embedding-table configuration of one model.

    Attributes
    ----------
    num_tables:
        Number of embedding tables (one per categorical feature).
    rows_per_table:
        Nominal number of rows (categories) per table; drives storage cost.
    embedding_dim:
        Latent dimension of every table.
    lookups_per_table:
        Average multi-hot lookups per table per sample (pooling fan-in).
    """

    num_tables: int
    rows_per_table: int
    embedding_dim: int
    lookups_per_table: int

    def __post_init__(self) -> None:
        check_positive("num_tables", self.num_tables)
        check_positive("rows_per_table", self.rows_per_table)
        check_positive("embedding_dim", self.embedding_dim)
        check_positive("lookups_per_table", self.lookups_per_table)

    @property
    def storage_bytes(self) -> float:
        """Nominal embedding storage (FP32)."""
        return float(self.num_tables) * self.rows_per_table * self.embedding_dim * 4


@dataclass(frozen=True)
class ModelConfig:
    """Full architectural configuration of one recommendation model.

    Attributes
    ----------
    name:
        Zoo key, e.g. ``"dlrm-rmc1"``.
    dense_input_dim:
        Dimensionality of the continuous (dense) input features; 0 when the
        model takes no dense inputs (NCF, DIN, DIEN).
    dense_fc:
        Hidden/output widths of the dense-feature DNN stack (empty when the
        dense features bypass it, as in Wide&Deep).
    predict_fc:
        Hidden/output widths of the predictor DNN stack (excluding its input
        width, which is derived from the interaction output).
    num_tasks:
        Number of parallel predictor stacks (MT-WnD runs one per objective).
    embedding:
        Embedding-table configuration.
    pooling:
        Sparse-pooling operator.
    interaction:
        Feature-interaction operator.
    sequence_length:
        User-behaviour sequence length consumed by attention/GRU pooling.
    attention_hidden:
        Hidden widths of the attention scorer MLP.
    gru_hidden_dim:
        Hidden size of the interest-evolution GRU (DIEN only).
    bottleneck:
        Table II runtime-bottleneck classification.
    sla_target_ms:
        Published medium SLA tail-latency target in milliseconds (Table II).
    company / domain:
        Provenance columns of Table I, for reporting.
    """

    name: str
    dense_input_dim: int
    dense_fc: Tuple[int, ...]
    predict_fc: Tuple[int, ...]
    embedding: EmbeddingConfig
    pooling: PoolingType
    interaction: InteractionType
    bottleneck: BottleneckClass
    sla_target_ms: float
    num_tasks: int = 1
    sequence_length: int = 0
    attention_hidden: Tuple[int, ...] = (36,)
    gru_hidden_dim: int = 0
    company: str = "-"
    domain: str = "-"

    def __post_init__(self) -> None:
        check_non_negative("dense_input_dim", self.dense_input_dim)
        check_positive("num_tasks", self.num_tasks)
        check_positive("sla_target_ms", self.sla_target_ms)
        check_non_negative("sequence_length", self.sequence_length)
        check_non_negative("gru_hidden_dim", self.gru_hidden_dim)
        if not self.predict_fc:
            raise ValueError("predict_fc must have at least one layer width")
        if self.dense_fc and self.dense_input_dim == 0:
            raise ValueError("a dense FC stack requires dense_input_dim > 0")
        needs_sequence = self.pooling in (PoolingType.ATTENTION, PoolingType.ATTENTION_RNN)
        if needs_sequence and self.sequence_length == 0:
            raise ValueError(f"{self.pooling.value} pooling requires sequence_length > 0")
        if self.pooling is PoolingType.ATTENTION_RNN and self.gru_hidden_dim == 0:
            raise ValueError("attention_rnn pooling requires gru_hidden_dim > 0")

    @property
    def has_dense_stack(self) -> bool:
        """True if dense features pass through a bottom MLP."""
        return bool(self.dense_fc)

    @property
    def dense_output_dim(self) -> int:
        """Width of the dense branch after the (optional) dense stack."""
        if self.has_dense_stack:
            return self.dense_fc[-1]
        return self.dense_input_dim

    @property
    def sparse_output_dim(self) -> int:
        """Width of the sparse branch after pooling."""
        emb = self.embedding
        if self.pooling is PoolingType.SUM:
            return emb.embedding_dim
        if self.pooling is PoolingType.CONCAT:
            return emb.num_tables * emb.embedding_dim
        if self.pooling is PoolingType.ATTENTION:
            # Pooled behaviour vector concatenated with the candidate-side tables.
            return emb.num_tables * emb.embedding_dim
        # ATTENTION_RNN: GRU hidden state concatenated with remaining embeddings.
        return self.gru_hidden_dim + (emb.num_tables - 1) * emb.embedding_dim

    @property
    def interaction_output_dim(self) -> int:
        """Width of the feature-interaction output feeding the predictor stack."""
        if self.interaction is InteractionType.CONCAT:
            return self.dense_output_dim + self.sparse_output_dim
        return max(self.dense_output_dim, self.sparse_output_dim)

    @property
    def sla_target_s(self) -> float:
        """Medium SLA target in seconds."""
        return self.sla_target_ms / 1e3
