"""Facebook DLRM configurations (DLRM-RMC1, RMC2, RMC3).

The three DLRM variants share the generalised structure — a dense-FC bottom
stack, many embedding tables with tens of lookups each, sum pooling, concat
interaction, and a predictor stack — but are sized very differently
(Table I):

* RMC1: small FC stacks, ≤10 tables × ~80 lookups → embedding-dominated.
* RMC2: small FC stacks, ≤40 tables × ~80 lookups → embedding-dominated,
  with a relaxed 400 ms SLA.
* RMC3: a large 2560-512-32 dense stack, ≤10 tables × ~20 lookups →
  MLP-dominated.
"""

from __future__ import annotations

from repro.models.config import (
    BottleneckClass,
    EmbeddingConfig,
    InteractionType,
    ModelConfig,
    PoolingType,
)


def dlrm_rmc1_config() -> ModelConfig:
    """Table I configuration of DLRM-RMC1 (embedding-dominated, 100 ms SLA)."""
    return ModelConfig(
        name="dlrm-rmc1",
        company="Facebook",
        domain="social-media",
        dense_input_dim=256,
        dense_fc=(256, 128, 32),
        predict_fc=(256, 64, 1),
        embedding=EmbeddingConfig(
            num_tables=8,
            rows_per_table=4_000_000,
            embedding_dim=32,
            lookups_per_table=80,
        ),
        pooling=PoolingType.SUM,
        interaction=InteractionType.CONCAT,
        bottleneck=BottleneckClass.EMBEDDING,
        sla_target_ms=100.0,
    )


def dlrm_rmc2_config() -> ModelConfig:
    """Table I configuration of DLRM-RMC2 (embedding-dominated, 400 ms SLA)."""
    return ModelConfig(
        name="dlrm-rmc2",
        company="Facebook",
        domain="social-media",
        dense_input_dim=256,
        dense_fc=(256, 128, 32),
        predict_fc=(512, 128, 1),
        embedding=EmbeddingConfig(
            num_tables=32,
            rows_per_table=4_000_000,
            embedding_dim=32,
            lookups_per_table=80,
        ),
        pooling=PoolingType.SUM,
        interaction=InteractionType.CONCAT,
        bottleneck=BottleneckClass.EMBEDDING,
        sla_target_ms=400.0,
    )


def dlrm_rmc3_config() -> ModelConfig:
    """Table I configuration of DLRM-RMC3 (MLP-dominated, 100 ms SLA)."""
    return ModelConfig(
        name="dlrm-rmc3",
        company="Facebook",
        domain="social-media",
        dense_input_dim=2560,
        dense_fc=(2560, 512, 32),
        predict_fc=(512, 128, 1),
        embedding=EmbeddingConfig(
            num_tables=10,
            rows_per_table=1_000_000,
            embedding_dim=32,
            lookups_per_table=20,
        ),
        pooling=PoolingType.SUM,
        interaction=InteractionType.CONCAT,
        bottleneck=BottleneckClass.MLP,
        sla_target_ms=100.0,
    )
