"""Alibaba Deep Interest Evolution Network (DIEN) configuration.

DIEN augments DIN with attention-gated recurrent units that model how user
interests evolve over time: the behaviour sequence from the embedding tables
is processed by GRU layers whose output is concatenated with the remaining
embedding vectors before a small predictor stack.  Inputs are one-hot
(tens of lookups rather than hundreds), so runtime is dominated by the
recurrent layers; the SLA is 35 ms (Table II).
"""

from __future__ import annotations

from repro.models.config import (
    BottleneckClass,
    EmbeddingConfig,
    InteractionType,
    ModelConfig,
    PoolingType,
)


def dien_config() -> ModelConfig:
    """Table I configuration of DIEN (attention-based GRU dominated)."""
    return ModelConfig(
        name="dien",
        company="Alibaba",
        domain="e-commerce",
        dense_input_dim=0,
        dense_fc=(),
        predict_fc=(200, 80, 2),
        embedding=EmbeddingConfig(
            num_tables=16,
            rows_per_table=1_000_000,
            embedding_dim=32,
            lookups_per_table=20,
        ),
        pooling=PoolingType.ATTENTION_RNN,
        interaction=InteractionType.CONCAT,
        bottleneck=BottleneckClass.ATTENTION,
        sla_target_ms=35.0,
        sequence_length=20,
        attention_hidden=(36,),
        gru_hidden_dim=64,
    )
