"""Model zoo registry.

Maps zoo keys (``"dlrm-rmc1"``, ``"din"``, …) to their Table I configurations
and builds runnable :class:`~repro.models.base.RecommendationModel` instances.
The registry is the single place experiment drivers look up models, so adding
a new model only requires registering its config factory here.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.models.base import RecommendationModel
from repro.models.config import BottleneckClass, ModelConfig
from repro.models.dien import dien_config
from repro.models.din import din_config
from repro.models.dlrm import dlrm_rmc1_config, dlrm_rmc2_config, dlrm_rmc3_config
from repro.models.ncf import ncf_config
from repro.models.wnd import mt_wnd_config, wnd_config
from repro.utils.rng import SeedLike

ConfigFactory = Callable[[], ModelConfig]

_REGISTRY: Dict[str, ConfigFactory] = {
    "ncf": ncf_config,
    "wnd": wnd_config,
    "mt-wnd": mt_wnd_config,
    "dlrm-rmc1": dlrm_rmc1_config,
    "dlrm-rmc2": dlrm_rmc2_config,
    "dlrm-rmc3": dlrm_rmc3_config,
    "din": din_config,
    "dien": dien_config,
}

#: Zoo keys in the order the paper's figures list them.
MODEL_NAMES: List[str] = [
    "dlrm-rmc1",
    "dlrm-rmc2",
    "dlrm-rmc3",
    "ncf",
    "wnd",
    "mt-wnd",
    "din",
    "dien",
]


def available_models() -> List[str]:
    """All registered zoo keys (paper ordering)."""
    return list(MODEL_NAMES)


def register_model(name: str, factory: ConfigFactory, overwrite: bool = False) -> None:
    """Register a new model configuration factory under ``name``.

    Raises ``ValueError`` if the name is taken and ``overwrite`` is false.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"model {name!r} is already registered")
    _REGISTRY[key] = factory
    if key not in MODEL_NAMES:
        MODEL_NAMES.append(key)


def get_config(name: str) -> ModelConfig:
    """Return the Table I configuration for ``name``."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _REGISTRY[key]()


def get_model(
    name: str,
    rng: SeedLike = None,
    build_executable: bool = True,
    materialized_rows: int = 4096,
) -> RecommendationModel:
    """Build a runnable model for zoo key ``name``.

    Pass ``build_executable=False`` for analytic-only use (scheduling,
    latency modelling) to skip weight allocation.
    """
    return RecommendationModel(
        get_config(name),
        rng=rng,
        build_executable=build_executable,
        materialized_rows=materialized_rows,
    )


def models_by_bottleneck(bottleneck: BottleneckClass) -> List[str]:
    """Zoo keys whose Table II bottleneck class matches ``bottleneck``."""
    return [name for name in MODEL_NAMES if get_config(name).bottleneck is bottleneck]
