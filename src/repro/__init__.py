"""repro: a reproduction of DeepRecSys (ISCA 2020).

The package provides two artifacts mirroring the paper:

* **DeepRecInfra** (:mod:`repro.infra`, :mod:`repro.models`,
  :mod:`repro.queries`, :mod:`repro.serving`) — an end-to-end at-scale
  recommendation inference infrastructure: eight industry-representative
  models, SLA tail-latency targets, and a production-like query load
  generator feeding a discrete-event serving simulator.
* **DeepRecSched** (:mod:`repro.core`) — a hill-climbing scheduler that
  maximises latency-bounded throughput by tuning the per-request batch size
  and the accelerator query-size offload threshold.

Quickstart::

    from repro import DeepRecSched, SLATier

    sched = DeepRecSched("dlrm-rmc1", cpu_platform="skylake")
    baseline = sched.baseline(SLATier.MEDIUM)
    tuned = sched.optimize_cpu(SLATier.MEDIUM)
    print(tuned.qps / baseline.qps)
"""

from repro.core.scheduler import DeepRecSched, OperatingPoint
from repro.execution.engine import build_cpu_engine, build_engine_pair, build_gpu_engine
from repro.infra.deeprecinfra import DeepRecInfra, InfraConfig
from repro.models.zoo import available_models, get_config, get_model
from repro.queries.generator import LoadGenerator
from repro.serving.simulator import ServingConfig, ServingSimulator, SimulationResult
from repro.serving.sla import SLATier, sla_target, sla_targets

__version__ = "1.0.0"

__all__ = [
    "DeepRecSched",
    "OperatingPoint",
    "build_cpu_engine",
    "build_engine_pair",
    "build_gpu_engine",
    "DeepRecInfra",
    "InfraConfig",
    "available_models",
    "get_config",
    "get_model",
    "LoadGenerator",
    "ServingConfig",
    "ServingSimulator",
    "SimulationResult",
    "SLATier",
    "sla_target",
    "sla_targets",
    "__version__",
]
