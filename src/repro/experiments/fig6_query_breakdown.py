"""Fig. 6: execution-time share of small vs large queries, CPU vs GPU.

Splits the query population at the 75th-percentile size and reports, for each
model, (a) the fraction of total CPU execution time contributed by queries at
or below p75 vs above it, and (b) the aggregate speedup a GPU provides on the
large-query population — the motivation for offloading only large queries.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.execution.engine import build_cpu_engine, build_gpu_engine
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.models.zoo import MODEL_NAMES, get_model
from repro.queries.size_dist import ProductionQuerySizes


@register_experiment("figure-6")
def run(
    models: Optional[Sequence[str]] = None,
    cpu_platform: str = "broadwell",
    gpu_platform: str = "gtx1080ti",
    num_queries: int = 2000,
    batch_size: int = 64,
    seed: int = 13,
) -> ExperimentResult:
    """Aggregate CPU/GPU execution time over the query-size distribution."""
    names = list(models) if models is not None else list(MODEL_NAMES)
    sizes = ProductionQuerySizes().sample(num_queries, rng=seed)
    p75 = float(np.percentile(sizes, 75))

    result = ExperimentResult(
        experiment_id="figure-6",
        title="Execution time of small (<=p75) vs large (>p75) queries",
        headers=[
            "model",
            "small-cpu-share",
            "large-cpu-share",
            "large-gpu-speedup",
            "all-gpu-speedup",
        ],
    )
    for name in names:
        model = get_model(name, build_executable=False)
        cpu_engine = build_cpu_engine(model, cpu_platform)
        gpu_engine = build_gpu_engine(model, gpu_platform)

        def cpu_query_time(query_size: int) -> float:
            # A query is processed as ceil(size / batch) sequential requests
            # on one core, matching the paper's single-worker measurement.
            full, remainder = divmod(int(query_size), batch_size)
            total = full * cpu_engine.request_latency_s(batch_size)
            if remainder:
                total += cpu_engine.request_latency_s(remainder)
            return total

        small_cpu = sum(cpu_query_time(s) for s in sizes if s <= p75)
        large_cpu = sum(cpu_query_time(s) for s in sizes if s > p75)
        large_gpu = sum(gpu_engine.query_latency_s(int(s)) for s in sizes if s > p75)
        all_gpu = large_gpu + sum(
            gpu_engine.query_latency_s(int(s)) for s in sizes if s <= p75
        )
        total_cpu = small_cpu + large_cpu
        result.add_row(
            name,
            round(small_cpu / total_cpu, 3),
            round(large_cpu / total_cpu, 3),
            round(large_cpu / large_gpu, 3),
            round(total_cpu / all_gpu, 3),
        )
    result.metadata["p75_query_size"] = p75
    result.notes = (
        "Large queries (top quartile) account for roughly half of CPU time and "
        "are the most effectively accelerated by the GPU."
    )
    return result
