"""Fig. 13: batch-size tuning deployed on a production-scale cluster.

Simulates the paper's production experiment protocol: a heterogeneous fleet
of machines receives diurnally modulated live traffic near its serving
capacity, first with the fixed production batch size (largest query split
over all worker cores) and then with the tuned batch size; the reported
quantities are the resulting p95 and p99 tail-latency reductions (the paper
measures 1.39x and 1.31x across models and servers).

The production experiment ran for 24 hours on hundreds of machines; here the
traffic cycle is compressed (seconds instead of hours) and the fleet is a few
nodes with a reduced worker-core count, which preserves the load-relative
behaviour while keeping the simulation affordable.
"""

from __future__ import annotations

from repro.core.static_scheduler import StaticSchedulerPolicy
from repro.execution.engine import build_engine_pair
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.infra.datacenter import DatacenterCluster
from repro.queries.size_dist import ProductionQuerySizes
from repro.queries.trace import DiurnalPattern
from repro.utils.validation import check_in_range, check_positive


@register_experiment("figure-13")
def run(
    model: str = "dlrm-rmc1",
    tuned_batch_size: int = 512,
    num_nodes: int = 2,
    num_cores_per_node: int = 16,
    load_fraction: float = 1.05,
    duration_s: float = 8.0,
    diurnal_amplitude: float = 0.4,
    seed: int = 29,
) -> ExperimentResult:
    """Compare fixed vs tuned batch size on a loaded production fleet.

    ``load_fraction`` sets the mean offered load as a fraction of the fixed
    configuration's estimated capacity; with the default diurnal amplitude the
    traffic peak pushes the fixed configuration past saturation, which is
    exactly the regime where the tuned batch size pays off.
    """
    check_positive("tuned_batch_size", tuned_batch_size)
    check_positive("num_cores_per_node", num_cores_per_node)
    check_in_range("load_fraction", load_fraction, 0.1, 1.5)

    cluster = DatacenterCluster(
        model, num_nodes=num_nodes, num_cores=num_cores_per_node, seed=seed
    )
    pattern = DiurnalPattern(amplitude=diurnal_amplitude, period_s=duration_s)

    reference = build_engine_pair(model, "skylake", None)
    fixed_batch = StaticSchedulerPolicy().batch_size(
        reference.cpu.platform, num_cores=num_cores_per_node
    )
    mean_query_size = ProductionQuerySizes().mean()
    base_rate = load_fraction * cluster.estimated_capacity_qps(
        fixed_batch, mean_query_size
    )

    fixed = cluster.run_diurnal(
        batch_size=fixed_batch,
        base_rate_qps=base_rate,
        duration_s=duration_s,
        pattern=pattern,
        seed=seed,
    )
    tuned = cluster.run_diurnal(
        batch_size=tuned_batch_size,
        base_rate_qps=base_rate,
        duration_s=duration_s,
        pattern=pattern,
        seed=seed,
    )

    p95_reduction = fixed.p95_latency_s / tuned.p95_latency_s
    p99_reduction = fixed.p99_latency_s / tuned.p99_latency_s

    result = ExperimentResult(
        experiment_id="figure-13",
        title="Production-cluster tail latency: fixed vs tuned batch size",
        headers=["configuration", "batch-size", "p95-ms", "p99-ms"],
    )
    result.add_row(
        "fixed (baseline)", fixed_batch,
        round(fixed.p95_latency_s * 1e3, 2), round(fixed.p99_latency_s * 1e3, 2),
    )
    result.add_row(
        "tuned (deeprecsched)", tuned_batch_size,
        round(tuned.p95_latency_s * 1e3, 2), round(tuned.p99_latency_s * 1e3, 2),
    )
    result.metadata["p95_reduction"] = p95_reduction
    result.metadata["p99_reduction"] = p99_reduction
    result.metadata["offered_qps"] = base_rate
    result.metadata["fixed_batch_size"] = fixed_batch
    result.notes = (
        f"p95 reduction {p95_reduction:.2f}x, p99 reduction {p99_reduction:.2f}x "
        "(paper: 1.39x and 1.31x)."
    )
    return result
