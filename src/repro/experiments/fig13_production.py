"""Fig. 13: batch-size tuning deployed on a production-scale cluster.

Simulates the paper's production experiment protocol: a heterogeneous fleet
of machines receives diurnally modulated live traffic near its serving
capacity, first with the fixed production batch size (largest query split
over all worker cores) and then with the tuned batch size; the reported
quantities are the resulting p95 and p99 tail-latency reductions (the paper
measures 1.39x and 1.31x across models and servers).

The production experiment ran for 24 hours on hundreds of machines; here the
traffic cycle is compressed (seconds instead of hours) and the fleet is a few
nodes with a reduced worker-core count, which preserves the load-relative
behaviour while keeping the simulation affordable.

Since the fleet unification the replay runs through the shared-heap
:class:`~repro.serving.cluster.ClusterSimulator`, so the experiment sweeps
*balancing policies* on top of batch sizes: ``random`` reproduces the legacy
uniform pre-partitioning as an online policy, and load-aware policies
(``least-outstanding`` by default) show what a real balancer buys the same
fleet.  Per-node load shares and the active policy land in the result
metadata.  ``jobs > 1`` fans the independent (batch, policy) replays out over
a process pool, and ``capacity_cache_dir`` memoises completed replays on
disk (the same directory the capacity searches use for warm starts).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.static_scheduler import StaticSchedulerPolicy
from repro.execution.engine import build_engine_pair
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.infra.datacenter import DatacenterCluster
from repro.queries.size_dist import ProductionQuerySizes
from repro.queries.trace import DiurnalPattern
from repro.runtime.pool import TaskContext, as_completed, pool_scope
from repro.utils.validation import check_in_range, check_positive

#: The paper's production protocol (uniform ``random`` assignment) plus the
#: load-aware policies: plain least-outstanding and its speed-weighted
#: variant, which normalises each node's outstanding work by its
#: ``speed_factor`` — on the datacenter's speed-spread fleet that is the
#: policy a capacity-aware production balancer would run.  Any name in the
#: balancer registry can be swept via ``policies=``.
DEFAULT_POLICIES = ("random", "least-outstanding", "weighted-least-outstanding")

#: Keys every replay summary carries.  The schema version is folded into the
#: cache digest, so entries written by a version with different summary keys
#: can never be served back (bump this when the summary shape changes).
_REPLAY_SCHEMA = 1
_SUMMARY_KEYS = frozenset(
    {
        "p95_latency_s",
        "p99_latency_s",
        "query_shares",
        "max_node_share",
        "scalar_fallbacks",
    }
)


def _replay_summary(
    cluster: DatacenterCluster,
    batch_size: int,
    policy: str,
    replay: Dict[str, Any],
) -> Dict[str, Any]:
    """One diurnal replay reduced to the JSON-serialisable numbers we report."""
    outcome = cluster.run_diurnal(
        batch_size=batch_size,
        base_rate_qps=replay["base_rate_qps"],
        duration_s=replay["duration_s"],
        pattern=DiurnalPattern(
            amplitude=replay["diurnal_amplitude"], period_s=replay["duration_s"]
        ),
        seed=replay["seed"],
        policy=policy,
    )
    shares = outcome.query_shares()
    return {
        "p95_latency_s": outcome.p95_latency_s,
        "p99_latency_s": outcome.p99_latency_s,
        "query_shares": {str(node_id): share for node_id, share in shares.items()},
        "max_node_share": max(shares.values()),
        "scalar_fallbacks": outcome.scalar_fallbacks,
    }


def _replay_digest(
    cluster_kwargs: Dict[str, Any],
    replay: Dict[str, Any],
    batch_size: int,
    policy: str,
) -> str:
    payload = json.dumps(
        {
            "kind": "fig13-replay",
            "schema": _REPLAY_SCHEMA,
            "cluster": cluster_kwargs,
            "replay": replay,
            "batch_size": batch_size,
            "policy": policy,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


# Task context for the parallel replay fan: each pool worker builds the
# (deterministic) cluster once, then receives bare (batch, policy) points.
def _build_replay_state(
    payload: Tuple[Dict[str, Any], Dict[str, Any]],
) -> Tuple[DatacenterCluster, Dict[str, Any]]:
    cluster_kwargs, replay = payload
    return DatacenterCluster(**cluster_kwargs), replay


def _replay_point(
    state: Tuple[DatacenterCluster, Dict[str, Any]], point: Tuple[int, str]
) -> Dict[str, Any]:
    cluster, replay = state
    batch_size, policy = point
    return _replay_summary(cluster, batch_size, policy, replay)


def _run_replays(
    cluster: DatacenterCluster,
    cluster_kwargs: Dict[str, Any],
    replay: Dict[str, Any],
    points: Sequence[Tuple[int, str]],
    jobs: int,
    cache_dir: Union[str, Path, None],
) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """Evaluate replay points (memo + worker pool); returns (summaries, stats)."""
    cache = Path(cache_dir) if cache_dir is not None else None
    summaries: List[Optional[Dict[str, Any]]] = [None] * len(points)
    todo: List[int] = []
    for index, (batch_size, policy) in enumerate(points):
        if cache is not None:
            path = cache / f"fig13-{_replay_digest(cluster_kwargs, replay, batch_size, policy)}.json"
            if path.is_file():
                try:
                    loaded = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    loaded = None  # unreadable entry: recompute
                if isinstance(loaded, dict) and _SUMMARY_KEYS <= loaded.keys():
                    summaries[index] = loaded
                    continue
        todo.append(index)

    if todo:
        # The serial path reuses the caller's already-built cluster (seeded
        # into the context); pool workers each build their own deterministic
        # copy from the kwargs, cached across points by the context token.
        # Nested invocations (a pooled sweep point) run inline automatically.
        # Completion-driven: each replay is memoised the moment it lands, so
        # an interrupted run keeps its finished points.
        context = TaskContext(
            _build_replay_state, (cluster_kwargs, replay), value=(cluster, replay)
        )
        if cache is not None:
            cache.mkdir(parents=True, exist_ok=True)
        with pool_scope(jobs) as worker_pool:
            futures = {
                worker_pool.submit(_replay_point, points[i], context=context): i
                for i in todo
            }
            for future in as_completed(futures):
                index = futures[future]
                summaries[index] = future.result()
                if cache is not None:
                    batch_size, policy = points[index]
                    path = cache / (
                        "fig13-"
                        f"{_replay_digest(cluster_kwargs, replay, batch_size, policy)}"
                        ".json"
                    )
                    scratch = path.with_suffix(f".tmp-{os.getpid()}")
                    scratch.write_text(json.dumps(summaries[index], sort_keys=True))
                    scratch.replace(path)
    # Every slot is filled (cache hit or computed); the caller indexes the
    # list positionally, so dropping entries would mispair fixed/tuned runs.
    assert all(summary is not None for summary in summaries)
    stats = {"replay_hits": len(points) - len(todo), "replay_misses": len(todo)}
    return summaries, stats  # type: ignore[return-value]


@register_experiment("figure-13")
def run(
    model: str = "dlrm-rmc1",
    tuned_batch_size: int = 512,
    num_nodes: int = 2,
    num_cores_per_node: int = 16,
    load_fraction: float = 1.05,
    duration_s: float = 8.0,
    diurnal_amplitude: float = 0.4,
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: int = 29,
    jobs: int = 1,
    capacity_cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Compare fixed vs tuned batch size on a loaded fleet, per balancing policy.

    ``load_fraction`` sets the mean offered load as a fraction of the fixed
    configuration's estimated capacity; with the default diurnal amplitude the
    traffic peak pushes the fixed configuration past saturation, which is
    exactly the regime where the tuned batch size pays off.  Every
    (batch size, policy) pair replays the *same* trace through one
    shared-heap cluster run.  The headline ``p95_reduction``/``p99_reduction``
    metadata keys report the first policy (``random`` by default, matching the
    paper's production setup); per-policy reductions and load shares are under
    ``by_policy``.
    """
    check_positive("tuned_batch_size", tuned_batch_size)
    check_positive("num_cores_per_node", num_cores_per_node)
    check_in_range("load_fraction", load_fraction, 0.1, 1.5)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    policies = list(policies)
    if not policies:
        raise ValueError("policies must name at least one balancing policy")

    cluster_kwargs: Dict[str, Any] = dict(
        model=model, num_nodes=num_nodes, num_cores=num_cores_per_node, seed=seed
    )
    cluster = DatacenterCluster(**cluster_kwargs)

    reference = build_engine_pair(model, "skylake", None)
    fixed_batch = StaticSchedulerPolicy().batch_size(
        reference.cpu.platform, num_cores=num_cores_per_node
    )
    mean_query_size = ProductionQuerySizes().mean()
    base_rate = load_fraction * cluster.estimated_capacity_qps(
        fixed_batch, mean_query_size
    )
    replay: Dict[str, Any] = dict(
        base_rate_qps=base_rate,
        duration_s=duration_s,
        diurnal_amplitude=diurnal_amplitude,
        seed=seed,
    )

    points = [
        (batch_size, policy)
        for policy in policies
        for batch_size in (fixed_batch, tuned_batch_size)
    ]
    summaries, replay_stats = _run_replays(
        cluster, cluster_kwargs, replay, points, jobs, capacity_cache_dir
    )

    result = ExperimentResult(
        experiment_id="figure-13",
        title="Production-cluster tail latency: fixed vs tuned batch size",
        headers=["policy", "configuration", "batch-size", "p95-ms", "p99-ms", "max-node-share"],
    )
    by_policy: Dict[str, Dict[str, Any]] = {}
    total_fallbacks = 0
    for offset, policy in enumerate(policies):
        fixed, tuned = summaries[2 * offset], summaries[2 * offset + 1]
        result.add_row(
            policy, "fixed (baseline)", fixed_batch,
            round(fixed["p95_latency_s"] * 1e3, 2), round(fixed["p99_latency_s"] * 1e3, 2),
            round(fixed["max_node_share"], 3),
        )
        result.add_row(
            policy, "tuned (deeprecsched)", tuned_batch_size,
            round(tuned["p95_latency_s"] * 1e3, 2), round(tuned["p99_latency_s"] * 1e3, 2),
            round(tuned["max_node_share"], 3),
        )
        by_policy[policy] = {
            "p95_reduction": fixed["p95_latency_s"] / tuned["p95_latency_s"],
            "p99_reduction": fixed["p99_latency_s"] / tuned["p99_latency_s"],
            "fixed_query_shares": fixed["query_shares"],
            "tuned_query_shares": tuned["query_shares"],
        }
        # The engines' fallback counters are cumulative per cluster object,
        # so the absolute value depends on jobs/caching; the reliable signal
        # (asserted in tests) is zero vs nonzero: 0 means every replay stayed
        # on the dense fast path.
        total_fallbacks = max(
            total_fallbacks, fixed["scalar_fallbacks"], tuned["scalar_fallbacks"]
        )

    headline = by_policy[policies[0]]
    result.metadata["p95_reduction"] = headline["p95_reduction"]
    result.metadata["p99_reduction"] = headline["p99_reduction"]
    result.metadata["offered_qps"] = base_rate
    result.metadata["fixed_batch_size"] = fixed_batch
    result.metadata["policies"] = list(policies)
    result.metadata["by_policy"] = by_policy
    result.metadata["scalar_fallbacks"] = total_fallbacks
    if capacity_cache_dir is not None:
        result.metadata["capacity_cache_stats"] = replay_stats
    result.notes = (
        f"p95 reduction {headline['p95_reduction']:.2f}x, "
        f"p99 reduction {headline['p99_reduction']:.2f}x under the "
        f"{policies[0]!r} policy (paper: 1.39x and 1.31x)."
    )
    return result
