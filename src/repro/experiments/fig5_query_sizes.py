"""Fig. 5: production query-size distribution vs lognormal.

Compares the production (heavy-tail) query-size distribution against the
lognormal assumption from prior work: percentiles of each, the p75 knee, and
the share of total work carried by the largest quarter of queries.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.queries.size_dist import (
    LognormalQuerySizes,
    ProductionQuerySizes,
    work_share_above_percentile,
)

DEFAULT_PERCENTILES = (25, 50, 75, 90, 95, 99)


@register_experiment("figure-5")
def run(
    num_samples: int = 20000,
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    seed: int = 7,
) -> ExperimentResult:
    """Compare the production and lognormal query-size distributions."""
    production = ProductionQuerySizes()
    lognormal = LognormalQuerySizes()
    prod_samples = production.sample(num_samples, rng=seed)
    logn_samples = lognormal.sample(num_samples, rng=seed + 1)

    result = ExperimentResult(
        experiment_id="figure-5",
        title="Query working-set-size distributions (production vs lognormal)",
        headers=["distribution"]
        + [f"p{int(pct)}" for pct in percentiles]
        + ["mean", "max", "top-quartile-work-share"],
    )
    for label, samples, dist in (
        ("production", prod_samples, production),
        ("lognormal", logn_samples, lognormal),
    ):
        work_share = work_share_above_percentile(dist, 75.0, count=num_samples, rng=seed)
        result.add_row(
            label,
            *[float(np.percentile(samples, pct)) for pct in percentiles],
            float(np.mean(samples)),
            int(samples.max()),
            round(work_share, 3),
        )

    prod_tail_ratio = float(np.percentile(prod_samples, 99) / np.percentile(prod_samples, 50))
    logn_tail_ratio = float(np.percentile(logn_samples, 99) / np.percentile(logn_samples, 50))
    result.metadata["production_tail_ratio_p99_p50"] = prod_tail_ratio
    result.metadata["lognormal_tail_ratio_p99_p50"] = logn_tail_ratio
    result.metadata["production_top_quartile_work_share"] = work_share_above_percentile(
        production, 75.0, count=num_samples, rng=seed
    )
    result.notes = (
        "Production query sizes have a heavier tail than lognormal; the top "
        "quartile of queries carries roughly half of all work."
    )
    return result
