"""Fig. 9: request- vs batch-level parallelism trade-off.

Sweeps the per-request batch size and reports latency-bounded throughput
(max QPS under the p95 SLA):

* top panel — one model (DLRM-RMC3) at two tail-latency targets, showing the
  optimal batch size growing as the target relaxes;
* bottom panel — three models with different bottlenecks (embedding-, MLP-,
  and attention-dominated), showing the optimum varies by model.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.execution.engine import build_engine_pair
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.queries.generator import LoadGenerator
from repro.serving.simulator import ServingConfig
from repro.serving.sla import SLATier, sla_target

DEFAULT_BATCH_SIZES = (16, 32, 64, 128, 256, 512, 1024)
DEFAULT_MODELS = ("dlrm-rmc1", "dlrm-rmc3", "dien")


@register_experiment("figure-9")
def run(
    models: Sequence[str] = DEFAULT_MODELS,
    tiers: Sequence[SLATier] = (SLATier.LOW, SLATier.MEDIUM),
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    cpu_platform: str = "skylake",
    num_queries: int = 500,
    capacity_iterations: int = 5,
    seed: int = 3,
    jobs: int = 1,
    capacity_cache_dir: Optional[str] = None,
    bracket_hints: bool = False,
) -> ExperimentResult:
    """Sweep QPS over batch sizes for several models and latency targets.

    Each (model, tier) row's batch-size searches are submitted into the
    invocation's shared worker pool concurrently
    (:func:`run_capacity_searches`), so ``jobs > 1`` keeps the pool full
    across the whole row rather than within one bisection;
    ``capacity_cache_dir`` replays previously recorded searches — both
    return results bit-identical to a cold serial run.
    ``bracket_hints=True`` lets exact cache misses tighten their bracket
    from adjacent batch-size/SLA entries (fewer evaluations, same
    capacities within bracket tolerance — opt-in, not bit-identical).
    """
    from repro.runtime.capacity import CapacitySearch, run_capacity_searches
    from repro.serving.capacity import CapacityCache

    result = ExperimentResult(
        experiment_id="figure-9",
        title="Latency-bounded throughput vs per-request batch size",
        headers=["model", "tier", "sla-ms"]
        + [f"qps@b{batch}" for batch in batch_sizes]
        + ["optimal-batch"],
    )
    warm_start = CapacityCache(capacity_cache_dir) if capacity_cache_dir else None
    optima: Dict[str, Dict[str, int]] = {}
    for model in models:
        engines = build_engine_pair(model, cpu_platform, None)
        generator = LoadGenerator(seed=seed)
        optima[model] = {}
        for tier in tiers:
            target = sla_target(model, tier)
            outcomes = run_capacity_searches(
                [
                    CapacitySearch.for_server(
                        engines,
                        ServingConfig(batch_size=batch),
                        target.latency_s,
                        generator,
                        num_queries=num_queries,
                        iterations=capacity_iterations,
                    )
                    for batch in batch_sizes
                ],
                jobs=jobs,
                warm_start_cache=warm_start,
                bracket_hints=bracket_hints,
            )
            qps_values = [outcome.max_qps for outcome in outcomes]
            best_index = max(range(len(batch_sizes)), key=lambda i: qps_values[i])
            optimal = batch_sizes[best_index]
            optima[model][tier.value] = optimal
            result.add_row(
                model,
                tier.value,
                round(target.latency_ms, 1),
                *[round(q, 1) for q in qps_values],
                optimal,
            )
    result.metadata["optimal_batch"] = optima
    if warm_start is not None:
        result.metadata["capacity_cache_stats"] = dict(warm_start.stats)
    result.notes = (
        "Optimal batch size grows with relaxed latency targets and is larger "
        "for embedding-dominated models than MLP/attention-dominated ones."
    )
    return result
