"""Ablation studies for the design choices DESIGN.md calls out.

Three ablations isolate the modelling decisions that drive DeepRecSched's
behaviour:

* **Arrival-process ablation** — the paper notes that assuming fixed or
  uniform inter-arrival gaps (as prior work often does) instead of the
  Poisson arrivals observed in production changes the achievable
  latency-bounded throughput.  The ablation measures capacity at a fixed
  operating point under each arrival process.
* **Query-size-distribution ablation** — Section VI-A shows that tuning the
  batch size against a lognormal size distribution and then deploying it on
  production-shaped traffic costs 1.2-1.7x in throughput.  The ablation tunes
  under each distribution and cross-evaluates.
* **Cache-contention ablation** — the LLC contention model is what couples
  request-level parallelism to memory performance; disabling it (zero
  contention slope) quantifies its effect on capacity at small vs large batch
  sizes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.execution.cpu_engine import CPUEngine
from repro.execution.engine import EnginePair, build_engine_pair
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.hardware.cache import CacheHierarchy
from repro.hardware.cpu import get_cpu
from repro.queries.arrival import get_arrival_process
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import LognormalQuerySizes, ProductionQuerySizes
from repro.serving.capacity import find_max_qps
from repro.serving.simulator import ServingConfig
from repro.serving.sla import SLATier, sla_target


@register_experiment("ablation-arrival")
def run_arrival_ablation(
    model: str = "dlrm-rmc1",
    batch_size: int = 512,
    tier: SLATier = SLATier.MEDIUM,
    arrival_processes: Sequence[str] = ("poisson", "fixed", "uniform"),
    num_queries: int = 400,
    capacity_iterations: int = 4,
    seed: int = 7,
    jobs: int = 1,
    capacity_cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Capacity of one operating point under different arrival processes.

    Poisson arrivals produce burstier queueing than fixed/uniform gaps, so the
    capacity under the production (Poisson) assumption is the most
    conservative of the three — sizing a deployment with a smoother arrival
    model overstates what the SLA can sustain.  ``jobs``/``capacity_cache_dir``
    parallelise and replay the capacity searches (bit-identical results).
    """
    engines = build_engine_pair(model, "skylake", None)
    target = sla_target(model, tier)
    result = ExperimentResult(
        experiment_id="ablation-arrival",
        title=f"Capacity vs arrival-process assumption ({model}, batch {batch_size})",
        headers=["arrival-process", "max-qps", "p95-ms-at-capacity"],
    )
    capacities = {}
    for name in arrival_processes:
        generator = LoadGenerator(
            arrival=get_arrival_process(name, rate_qps=100.0), seed=seed
        )
        outcome = find_max_qps(
            engines,
            ServingConfig(batch_size=batch_size),
            target.latency_s,
            generator,
            num_queries=num_queries,
            iterations=capacity_iterations,
            jobs=jobs,
            warm_start_cache=capacity_cache_dir,
        )
        capacities[name] = outcome.max_qps
        p95_ms = outcome.result.p95_latency_s * 1e3 if outcome.result else 0.0
        result.add_row(name, round(outcome.max_qps, 1), round(p95_ms, 2))
    result.metadata["capacity_by_arrival"] = capacities
    result.notes = (
        "Smoother-than-Poisson arrival assumptions overstate the sustainable "
        "load under a tail-latency SLA."
    )
    return result


@register_experiment("ablation-size-dist")
def run_size_distribution_ablation(
    model: str = "dlrm-rmc1",
    tier: SLATier = SLATier.MEDIUM,
    batch_sizes: Sequence[int] = (64, 128, 256, 512, 1024),
    num_queries: int = 400,
    capacity_iterations: int = 4,
    seed: int = 7,
    jobs: int = 1,
    capacity_cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Tune the batch size under each size distribution, cross-evaluate on the other.

    Reproduces the Section VI-A observation that a lognormal-tuned operating
    point loses throughput when deployed against production-shaped traffic.
    The cross-evaluation re-asks the tuning sweep's question at the optimum,
    so with a ``capacity_cache_dir`` those repeat searches replay instantly;
    ``jobs > 1`` parallelises each bisection (bit-identical results).
    """
    engines = build_engine_pair(model, "skylake", None)
    target = sla_target(model, tier)
    distributions = {
        "production": ProductionQuerySizes(),
        "lognormal": LognormalQuerySizes(),
    }

    def capacity(batch: int, dist_name: str) -> float:
        generator = LoadGenerator(sizes=distributions[dist_name], seed=seed)
        outcome = find_max_qps(
            engines,
            ServingConfig(batch_size=batch),
            target.latency_s,
            generator,
            num_queries=num_queries,
            iterations=capacity_iterations,
            jobs=jobs,
            warm_start_cache=capacity_cache_dir,
        )
        return outcome.max_qps

    optima = {}
    for dist_name in distributions:
        best_batch, best_qps = batch_sizes[0], 0.0
        for batch in batch_sizes:
            qps = capacity(batch, dist_name)
            # Prefer the smaller batch on near-ties (flat optimum region).
            if qps > best_qps * 1.02:
                best_batch, best_qps = batch, qps
        optima[dist_name] = best_batch

    result = ExperimentResult(
        experiment_id="ablation-size-dist",
        title=f"Batch size tuned under one size distribution, evaluated on another ({model})",
        headers=["tuned-on", "optimal-batch", "qps-on-production", "qps-on-lognormal"],
    )
    production_qps = {}
    for dist_name, batch in optima.items():
        on_production = capacity(batch, "production")
        on_lognormal = capacity(batch, "lognormal")
        production_qps[dist_name] = on_production
        result.add_row(dist_name, batch, round(on_production, 1), round(on_lognormal, 1))

    mismatch_penalty = (
        production_qps["production"] / production_qps["lognormal"]
        if production_qps["lognormal"]
        else float("inf")
    )
    result.metadata["optimal_batch"] = optima
    result.metadata["mismatch_penalty"] = mismatch_penalty
    result.notes = (
        f"Deploying the lognormal-tuned batch size on production traffic costs "
        f"{mismatch_penalty:.2f}x throughput (paper: 1.2-1.7x)."
    )
    return result


@register_experiment("ablation-cache-contention")
def run_cache_contention_ablation(
    model: str = "dlrm-rmc1",
    platform: str = "broadwell",
    tier: SLATier = SLATier.MEDIUM,
    batch_sizes: Sequence[int] = (32, 256, 1024),
    num_queries: int = 400,
    capacity_iterations: int = 4,
    seed: int = 7,
    jobs: int = 1,
    capacity_cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Capacity with and without the LLC contention model.

    With contention disabled (zero slope), small batches stop paying a
    penalty for keeping many cores active, so the gap between small- and
    large-batch capacity shrinks — quantifying how much of the batch-size
    preference comes from the cache model versus the efficiency curves.
    """
    cpu = get_cpu(platform)
    no_contention_cache = CacheHierarchy(
        policy=cpu.cache.policy, llc_bytes=cpu.cache.llc_bytes, contention_slope=0.0
    )
    cpu_no_contention = replace(cpu, cache=no_contention_cache)
    target = sla_target(model, tier)
    generator = LoadGenerator(seed=seed)

    result = ExperimentResult(
        experiment_id="ablation-cache-contention",
        title=f"Capacity with and without LLC contention ({model}, {platform})",
        headers=["batch-size", "qps-with-contention", "qps-without-contention", "ratio"],
    )
    ratios = {}
    for batch in batch_sizes:
        capacities = {}
        for label, cpu_platform in (("with", cpu), ("without", cpu_no_contention)):
            engines = EnginePair(cpu=CPUEngine(
                build_engine_pair(model, platform, None).cpu.model, cpu_platform
            ))
            outcome = find_max_qps(
                engines,
                ServingConfig(batch_size=batch),
                target.latency_s,
                generator,
                num_queries=num_queries,
                iterations=capacity_iterations,
                jobs=jobs,
                warm_start_cache=capacity_cache_dir,
            )
            capacities[label] = outcome.max_qps
        ratio = (
            capacities["without"] / capacities["with"] if capacities["with"] else 0.0
        )
        ratios[batch] = ratio
        result.add_row(
            batch,
            round(capacities["with"], 1),
            round(capacities["without"], 1),
            round(ratio, 3),
        )
    result.metadata["uplift_without_contention"] = ratios
    result.notes = (
        "Removing LLC contention helps small batches (many active cores) more "
        "than large ones, confirming contention as a driver of the batch-size choice."
    )
    return result
