"""Fig. 7: single-node subsampling tracks the datacenter latency distribution.

Runs a model on a simulated heterogeneous fleet and compares the latency CDF
of a handful of nodes against the fleet-wide CDF; the paper reports agreement
within roughly 10 %.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.infra.datacenter import DatacenterCluster
from repro.queries.generator import LoadGenerator
from repro.queries.arrival import PoissonArrival

DEFAULT_CASES: Tuple[Tuple[str, str], ...] = (
    ("dlrm-rmc1", "skylake"),
    ("dlrm-rmc3", "broadwell"),
)


@register_experiment("figure-7")
def run(
    cases: Sequence[Tuple[str, str]] = DEFAULT_CASES,
    num_nodes: int = 16,
    subsample_nodes: int = 3,
    queries_per_node: int = 150,
    batch_size: int = 128,
    rate_per_node_qps: float = 20.0,
    seed: int = 23,
) -> ExperimentResult:
    """Measure the CDF gap between a node subsample and the whole fleet."""
    result = ExperimentResult(
        experiment_id="figure-7",
        title="Datacenter vs single-node latency distribution",
        headers=[
            "model",
            "platform",
            "fleet-p95-ms",
            "subsample-p95-ms",
            "max-relative-gap",
        ],
    )
    gaps = []
    for model, platform in cases:
        cluster = DatacenterCluster(
            model,
            num_nodes=num_nodes,
            platform_mix={platform: 1.0},
            seed=seed,
        )
        generator = LoadGenerator(
            arrival=PoissonArrival(rate_per_node_qps * num_nodes), seed=seed
        )
        queries = generator.generate(queries_per_node * num_nodes)
        outcome = cluster.run(queries, batch_size=batch_size)
        subsample_ids = [node.node_id for node in cluster.nodes[:subsample_nodes]]
        gap = outcome.subsample_gap(subsample_ids)
        gaps.append(gap)
        subsample_latencies = outcome.node_latencies(subsample_ids)
        subsample_latencies.sort()
        subsample_p95 = subsample_latencies[int(0.95 * (len(subsample_latencies) - 1))]
        result.add_row(
            model,
            platform,
            round(outcome.p95_latency_s * 1e3, 3),
            round(subsample_p95 * 1e3, 3),
            round(gap, 4),
        )
    result.metadata["max_gap"] = max(gaps)
    result.notes = (
        "A handful of nodes reproduces the fleet-wide latency distribution; "
        "the paper reports agreement within ~10%."
    )
    return result
