"""Fig. 7: single-node subsampling tracks the datacenter latency distribution.

Runs a model on a simulated heterogeneous fleet and compares the latency CDF
of a handful of nodes against the fleet-wide CDF; the paper reports agreement
within roughly 10 %.  Since the fleet unification the comparison runs under
*real* load balancing (one shared-heap cluster pass per policy): ``random``
reproduces the paper's uniform assignment, and the load-aware policies check
that the subsampling claim survives a balancer that skews traffic toward
momentarily idle nodes.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.infra.datacenter import DatacenterCluster
from repro.queries.generator import LoadGenerator
from repro.queries.arrival import PoissonArrival

DEFAULT_CASES: Tuple[Tuple[str, str], ...] = (
    ("dlrm-rmc1", "skylake"),
    ("dlrm-rmc3", "broadwell"),
)

DEFAULT_POLICIES: Tuple[str, ...] = ("random", "least-outstanding")


@register_experiment("figure-7")
def run(
    cases: Sequence[Tuple[str, str]] = DEFAULT_CASES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    num_nodes: int = 16,
    subsample_nodes: int = 3,
    queries_per_node: int = 150,
    batch_size: int = 128,
    rate_per_node_qps: float = 20.0,
    seed: int = 23,
) -> ExperimentResult:
    """Measure the CDF gap between a node subsample and the whole fleet.

    One row per (model, platform, policy); ``max_gap`` in the metadata is the
    worst gap across every case and policy, and ``gap_by_policy`` breaks the
    worst gap down per balancing policy.
    """
    if not policies:
        raise ValueError("policies must name at least one balancing policy")
    result = ExperimentResult(
        experiment_id="figure-7",
        title="Datacenter vs single-node latency distribution",
        headers=[
            "model",
            "platform",
            "policy",
            "fleet-p95-ms",
            "subsample-p95-ms",
            "max-relative-gap",
        ],
    )
    gaps = []
    gap_by_policy: Dict[str, float] = {}
    for model, platform in cases:
        cluster = DatacenterCluster(
            model,
            num_nodes=num_nodes,
            platform_mix={platform: 1.0},
            seed=seed,
        )
        generator = LoadGenerator(
            arrival=PoissonArrival(rate_per_node_qps * num_nodes), seed=seed
        )
        queries = generator.generate(queries_per_node * num_nodes)
        for policy in policies:
            outcome = cluster.run(queries, batch_size=batch_size, policy=policy)
            subsample_ids = [
                node.node_id
                for node in cluster.nodes[:subsample_nodes]
                if node.node_id in outcome.per_node_results
            ]
            subsample_latencies = outcome.node_latencies(subsample_ids)
            if not subsample_latencies:
                raise ValueError(
                    f"policy {policy!r} routed no measurable queries to the "
                    f"first {subsample_nodes} nodes; send more queries or "
                    "subsample more nodes"
                )
            gap = outcome.subsample_gap(subsample_ids)
            gaps.append(gap)
            gap_by_policy[policy] = max(gap_by_policy.get(policy, 0.0), gap)
            subsample_latencies.sort()
            subsample_p95 = subsample_latencies[
                int(0.95 * (len(subsample_latencies) - 1))
            ]
            result.add_row(
                model,
                platform,
                policy,
                round(outcome.p95_latency_s * 1e3, 3),
                round(subsample_p95 * 1e3, 3),
                round(gap, 4),
            )
    result.metadata["max_gap"] = max(gaps)
    result.metadata["gap_by_policy"] = gap_by_policy
    result.notes = (
        "A handful of nodes reproduces the fleet-wide latency distribution "
        "under both random and load-aware balancing; the paper reports "
        "agreement within ~10%."
    )
    return result
