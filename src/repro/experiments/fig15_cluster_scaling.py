"""Fig. 15 (extension): fleet-scale serving capacity vs fleet size and policy.

The paper's evaluation stops at one server plus a trace-driven production
cluster; this extension experiment measures how latency-bounded throughput
(QPS at the p95 SLA) scales as identical servers are added behind each
load-balancing policy, and what a heterogeneous fleet (CPU-only servers mixed
with accelerator-attached ones running DeepRecSched offloading) sustains.

Reported per policy:

* fleet capacity at each fleet size, with scaling efficiency relative to
  ``N x`` the single-server capacity (1.0 = perfect linear scaling);
* capacity of a mixed CPU/GPU fleet at the largest size.

Load-aware policies (least-outstanding, power-of-two-choices) track linear
scaling closely; round-robin gives up capacity because it keeps feeding
servers that are momentarily behind, which inflates the fleet tail.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.execution.engine import build_engine_pair
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.queries.generator import LoadGenerator
from repro.runtime.capacity import CapacitySearch, run_capacity_searches
from repro.serving.capacity import CapacityCache
from repro.serving.cluster import ClusterServer, homogeneous_fleet
from repro.serving.simulator import ServingConfig
from repro.serving.sla import SLATier, sla_target

DEFAULT_FLEET_SIZES = (1, 2, 4)
DEFAULT_POLICIES = ("round-robin", "least-outstanding", "power-of-two")


@register_experiment("figure-15")
def run(
    model: str = "dlrm-rmc1",
    tier: SLATier = SLATier.MEDIUM,
    fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    cpu_platform: str = "skylake",
    gpu_platform: str = "gtx1080ti",
    num_cores: int = 8,
    batch_size: int = 256,
    offload_threshold: int = 512,
    hetero_fleet_size: int = 0,
    num_queries: int = 250,
    capacity_iterations: int = 4,
    max_queries: int = 3000,
    seed: int = 5,
    jobs: int = 1,
    capacity_cache_dir: Optional[str] = None,
    bracket_hints: bool = False,
) -> ExperimentResult:
    """Sweep fleet size x balancing policy; add one heterogeneous fleet per policy.

    ``hetero_fleet_size`` of 0 reuses the largest homogeneous fleet size; the
    heterogeneous fleet attaches an accelerator (with DeepRecSched query-size
    offloading at ``offload_threshold``) to every other server.

    All of the sweep's capacity searches are submitted into the invocation's
    shared worker pool *concurrently* (:func:`run_capacity_searches`), so
    with ``jobs > 1`` the pool stays full even where one bisection's
    speculative lookahead could not fill it — results stay identical to the
    serial sweep.  ``capacity_cache_dir`` replays previously recorded
    identical searches (bit-identical warm starts); ``bracket_hints=True``
    additionally lets exact misses tighten their initial bracket from
    near-miss entries (fewer evaluations, same capacities within the cold
    search's bracket tolerance — not bit-identical, hence opt-in).
    """
    sizes = sorted(set(int(n) for n in fleet_sizes))
    if not sizes or sizes[0] < 1:
        raise ValueError(f"fleet_sizes must be positive, got {fleet_sizes!r}")
    target = sla_target(model, tier)
    config = ServingConfig(batch_size=batch_size, num_cores=num_cores)
    cpu_engines = build_engine_pair(model, cpu_platform, None)
    generator = LoadGenerator(seed=seed)

    hetero_size = hetero_fleet_size if hetero_fleet_size else sizes[-1]
    gpu_engines = build_engine_pair(model, cpu_platform, gpu_platform)
    gpu_config = ServingConfig(
        batch_size=batch_size, num_cores=num_cores, offload_threshold=offload_threshold
    )
    # Accelerators go on odd indices; a fleet of one gets the accelerator so
    # the mixed-fleet row never silently degenerates to CPU-only.
    hetero_servers = [
        ClusterServer(
            engines=gpu_engines if (index % 2 or hetero_size == 1) else cpu_engines,
            config=gpu_config if (index % 2 or hetero_size == 1) else config,
            name=f"{'gpu' if (index % 2 or hetero_size == 1) else 'cpu'}-{index}",
        )
        for index in range(hetero_size)
    ]
    server_kinds = {
        "gpu" if server.engines.has_accelerator else "cpu" for server in hetero_servers
    }
    hetero_label = (
        "hetero cpu+gpu" if len(server_kinds) == 2 else f"{server_kinds.pop()}-only"
    )

    result = ExperimentResult(
        experiment_id="figure-15",
        title=f"Fleet capacity vs size and balancing policy ({model}, {target.latency_ms:.0f} ms p95)",
        headers=["policy", "servers", "fleet", "max-qps", "scaling-x", "efficiency"],
    )

    warm_start = CapacityCache(capacity_cache_dir) if capacity_cache_dir else None

    # One search description per (policy, fleet) point; the whole grid is
    # submitted into the shared pool at once, so searches interleave their
    # candidate evaluations instead of draining one bisection at a time.
    searches = []
    for policy in policies:
        for size in sizes:
            searches.append(
                CapacitySearch.for_fleet(
                    homogeneous_fleet(cpu_engines, config, size),
                    policy,
                    target.latency_s,
                    generator,
                    num_queries=num_queries,
                    iterations=capacity_iterations,
                    max_queries=max_queries,
                )
            )
        searches.append(
            CapacitySearch.for_fleet(
                hetero_servers,
                policy,
                target.latency_s,
                generator,
                num_queries=num_queries,
                iterations=capacity_iterations,
                max_queries=max_queries,
            )
        )
    outcomes = iter(
        run_capacity_searches(
            searches,
            jobs=jobs,
            warm_start_cache=warm_start,
            bracket_hints=bracket_hints,
        )
    )

    qps_by_policy: Dict[str, Dict[str, float]] = {}
    efficiency_by_policy: Dict[str, Dict[str, float]] = {}
    hetero_qps: Dict[str, float] = {}
    for policy in policies:
        qps_by_policy[policy] = {}
        efficiency_by_policy[policy] = {}
        base_qps = 0.0
        for size in sizes:
            qps = next(outcomes).max_qps
            if size == sizes[0]:
                base_qps = qps / sizes[0] if sizes[0] else 0.0
            scaling = qps / base_qps if base_qps else 0.0
            efficiency = scaling / size if size else 0.0
            qps_by_policy[policy][str(size)] = qps
            efficiency_by_policy[policy][str(size)] = efficiency
            result.add_row(
                policy, size, "homogeneous", round(qps, 1), round(scaling, 2),
                round(efficiency, 3),
            )
        qps = next(outcomes).max_qps
        hetero_qps[policy] = qps
        scaling = qps / base_qps if base_qps else 0.0
        result.add_row(
            policy, hetero_size, hetero_label, round(qps, 1), round(scaling, 2),
            round(scaling / hetero_size, 3),
        )

    result.metadata["qps_by_policy"] = qps_by_policy
    result.metadata["scaling_efficiency"] = efficiency_by_policy
    result.metadata["hetero_qps"] = hetero_qps
    result.metadata["sla_latency_ms"] = target.latency_ms
    if warm_start is not None:
        result.metadata["capacity_cache_stats"] = dict(warm_start.stats)
    result.notes = (
        "Load-aware balancing (least-outstanding, power-of-two) preserves "
        "near-linear QPS-at-SLA scaling; heterogeneous fleets add accelerator "
        "capacity on top of the CPU servers."
    )
    return result
