"""Per-table / per-figure experiment drivers reproducing the paper's evaluation."""

# Importing the driver modules registers them with the experiment registry.
from repro.experiments import (  # noqa: F401
    ablations,
    degraded_fleet,
    fig1_roofline,
    fig3_operators,
    fig4_gpu_speedup,
    fig5_query_sizes,
    fig6_query_breakdown,
    fig7_subsampling,
    fig9_batch_sweep,
    fig10_threshold_sweep,
    fig11_throughput,
    fig12_parallelism,
    fig13_production,
    fig14_gpu_tradeoff,
    fig15_cluster_scaling,
    table1_models,
    table2_sla,
)
from repro.experiments.registry import (
    available_experiments,
    get_experiment,
    register_experiment,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    SweepOutcome,
    SweepRunner,
    config_hash,
    render_report,
    run_experiment,
    run_experiments,
)

__all__ = [
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "ExperimentResult",
    "SweepOutcome",
    "SweepRunner",
    "config_hash",
    "render_report",
    "run_experiment",
    "run_experiments",
]
