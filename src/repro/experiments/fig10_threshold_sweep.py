"""Fig. 10: accelerator query-size-threshold sweep.

With the CPU batch size fixed, sweeps the query-size threshold above which
whole queries are offloaded to the GPU and reports the latency-bounded
throughput at each point; the optimum sits between "all GPU" (threshold 1)
and "all CPU" (threshold = max query size) and differs per model.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.execution.engine import build_engine_pair
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import MAX_QUERY_SIZE
from repro.serving.capacity import find_max_qps
from repro.serving.simulator import ServingConfig
from repro.serving.sla import SLATier, sla_target

DEFAULT_THRESHOLDS = (1, 64, 128, 256, 384, 512, 768, MAX_QUERY_SIZE)
DEFAULT_CASES = (("dlrm-rmc1", 512), ("dlrm-rmc3", 256), ("dien", 256))


@register_experiment("figure-10")
def run(
    cases: Sequence[Sequence] = DEFAULT_CASES,
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    tier: SLATier = SLATier.MEDIUM,
    cpu_platform: str = "skylake",
    gpu_platform: str = "gtx1080ti",
    num_queries: int = 500,
    capacity_iterations: int = 5,
    seed: int = 3,
) -> ExperimentResult:
    """Sweep QPS over GPU offload thresholds for several models."""
    result = ExperimentResult(
        experiment_id="figure-10",
        title="Latency-bounded throughput vs accelerator query-size threshold",
        headers=["model", "batch-size", "sla-ms"]
        + [f"qps@t{threshold}" for threshold in thresholds]
        + ["optimal-threshold"],
    )
    optima: Dict[str, int] = {}
    for model, batch_size in cases:
        engines = build_engine_pair(model, cpu_platform, gpu_platform)
        generator = LoadGenerator(seed=seed)
        target = sla_target(model, tier)
        qps_values = []
        for threshold in thresholds:
            config = ServingConfig(batch_size=batch_size, offload_threshold=threshold)
            outcome = find_max_qps(
                engines,
                config,
                target.latency_s,
                generator,
                num_queries=num_queries,
                iterations=capacity_iterations,
            )
            qps_values.append(outcome.max_qps)
        best_index = max(range(len(thresholds)), key=lambda i: qps_values[i])
        optima[model] = thresholds[best_index]
        result.add_row(
            model,
            batch_size,
            round(target.latency_ms, 1),
            *[round(q, 1) for q in qps_values],
            thresholds[best_index],
        )
    result.metadata["optimal_threshold"] = optima
    result.notes = (
        "Throughput peaks at an intermediate query-size threshold: the GPU "
        "absorbs the heavy tail while small queries stay on the CPU."
    )
    return result
