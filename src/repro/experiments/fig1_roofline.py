"""Fig. 1: recommendation models on a Skylake roofline next to CNN/RNN workloads.

Places each recommendation model (and the ResNet-50 / DeepSpeech2 reference
workloads) on the roofline of a server CPU: operational intensity on the
x-axis, achieved performance on the y-axis.  The paper's observation is that
recommendation models cluster in the memory-bound, low-intensity region while
the CNN sits near the compute roof.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.execution.engine import build_cpu_engine
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.hardware.cpu import get_cpu
from repro.hardware.roofline import RooflineModel, RooflinePoint
from repro.models.nonrec import reference_workloads
from repro.models.zoo import MODEL_NAMES, get_model
from repro.utils.units import flops_to_gflops


@register_experiment("figure-1")
def run(
    models: Optional[Sequence[str]] = None,
    platform: str = "skylake",
    batch_size: int = 64,
) -> ExperimentResult:
    """Compute roofline placements for the model zoo and reference DNNs."""
    names = list(models) if models is not None else list(MODEL_NAMES)
    cpu = get_cpu(platform)
    roofline = RooflineModel(cpu)

    result = ExperimentResult(
        experiment_id="figure-1",
        title=f"Roofline placement on {platform} (batch {batch_size})",
        headers=[
            "workload",
            "op-intensity",
            "achieved-gflops",
            "attainable-gflops",
            "memory-bound",
        ],
    )

    rec_intensities = []
    for name in names:
        model = get_model(name, build_executable=False)
        engine = build_cpu_engine(model, platform)
        intensity = model.operational_intensity(batch_size)
        latency = engine.request_latency_s(batch_size, active_cores=1)
        achieved = model.flops(batch_size) / latency
        point = RooflinePoint(name, intensity, achieved)
        rec_intensities.append(intensity)
        result.add_row(
            name,
            round(intensity, 3),
            round(flops_to_gflops(achieved), 3),
            round(flops_to_gflops(roofline.attainable_flops(intensity)), 3),
            roofline.is_memory_bound(intensity),
        )

    reference_intensities = []
    for workload in reference_workloads():
        intensity = workload.operational_intensity(batch_size)
        # Reference DNNs achieve a healthy fraction of their attainable rate.
        achieved = 0.6 * roofline.attainable_flops(intensity)
        reference_intensities.append(intensity)
        result.add_row(
            workload.name,
            round(intensity, 3),
            round(flops_to_gflops(achieved), 3),
            round(flops_to_gflops(roofline.attainable_flops(intensity)), 3),
            roofline.is_memory_bound(intensity),
        )

    result.metadata["ridge_point"] = roofline.ridge_point
    result.metadata["max_rec_intensity"] = max(rec_intensities)
    result.metadata["min_reference_intensity"] = min(reference_intensities)
    result.notes = (
        "Recommendation models sit at low operational intensity (memory-bound "
        "region); CNN/RNN references sit at much higher intensity."
    )
    return result
