"""Common result container for experiment drivers.

Every paper table/figure driver returns an :class:`ExperimentResult`: the
experiment identifier, a set of rows mirroring what the paper plots, and a
plain-text rendering used by the benchmark harness and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.utils.tables import format_table


@dataclass
class ExperimentResult:
    """Rows regenerated for one paper table or figure.

    Attributes
    ----------
    experiment_id:
        Identifier such as ``"figure-11"`` or ``"table-1"``.
    title:
        Human-readable description of what the rows show.
    headers:
        Column names.
    rows:
        One entry per plotted row/series point.
    notes:
        Free-form commentary (e.g. which paper claim the rows support).
    metadata:
        Machine-readable summary values (speedups, optima) keyed by name.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the header length)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(values))

    def to_table(self, float_fmt: str = ".3f") -> str:
        """Render the rows as an aligned plain-text table."""
        heading = f"[{self.experiment_id}] {self.title}"
        table = format_table(self.headers, self.rows, float_fmt=float_fmt, title=heading)
        if self.notes:
            return f"{table}\n{self.notes}"
        return table

    def to_dict(self) -> Dict[str, Any]:
        """Serialisable representation (id, headers, rows, metadata)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. a sweep cache entry).

        Round-tripping through JSON turns tuples into lists and integer
        metadata keys into strings; consumers of cached results should index
        metadata accordingly (the drivers in this repo already use string
        keys).
        """
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload.get("title", ""),
            headers=list(payload.get("headers", [])),
            rows=[list(row) for row in payload.get("rows", [])],
            notes=payload.get("notes", ""),
            metadata=dict(payload.get("metadata", {})),
        )

    def column(self, name: str) -> List[Any]:
        """All values of one named column."""
        if name not in self.headers:
            raise KeyError(f"unknown column {name!r}; headers: {list(self.headers)}")
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]
