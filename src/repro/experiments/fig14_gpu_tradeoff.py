"""Fig. 14: CPU-only vs CPU+GPU across tail-latency targets.

For one model (DLRM-RMC1 in the paper), sweeps the tail-latency target and
reports, for the CPU-only and CPU+GPU schedulers: the achievable QPS, the
share of work processed by the GPU, and QPS/Watt.  The paper's findings are
that the GPU unlocks lower latency targets and higher QPS everywhere, that
the GPU's share of work shrinks as the target relaxes, and that QPS/Watt only
favours the GPU at tight targets.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.batch_tuner import BatchSizeTuner
from repro.core.offload_tuner import OffloadThresholdTuner
from repro.execution.engine import build_engine_pair
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.hardware.power import SystemPowerModel
from repro.queries.generator import LoadGenerator
from repro.serving.capacity import find_max_qps
from repro.serving.simulator import ServingConfig


@register_experiment("figure-14")
def run(
    model: str = "dlrm-rmc1",
    latency_targets_ms: Sequence[float] = (50.0, 75.0, 100.0, 125.0, 150.0),
    cpu_platform: str = "skylake",
    gpu_platform: str = "gtx1080ti",
    num_queries: int = 400,
    capacity_iterations: int = 4,
    seed: int = 5,
) -> ExperimentResult:
    """Sweep tail-latency targets for CPU-only and CPU+GPU scheduling."""
    engines = build_engine_pair(model, cpu_platform, gpu_platform)
    generator = LoadGenerator(seed=seed)
    power_model = SystemPowerModel(engines.cpu.platform, engines.gpu.platform)

    result = ExperimentResult(
        experiment_id="figure-14",
        title=f"CPU vs CPU+GPU across tail-latency targets ({model})",
        headers=[
            "sla-ms",
            "cpu-qps",
            "gpu-qps",
            "gpu-work-fraction",
            "cpu-qps/w",
            "gpu-qps/w",
        ],
    )
    gpu_fractions = []
    for sla_ms in latency_targets_ms:
        sla_s = sla_ms / 1e3
        batch_tuner = BatchSizeTuner(
            engines, generator,
            num_queries=num_queries, capacity_iterations=capacity_iterations,
        )
        cpu_tuning = batch_tuner.tune(sla_s)
        cpu_config = ServingConfig(batch_size=max(1, cpu_tuning.best_batch_size))
        cpu_outcome = find_max_qps(
            engines, cpu_config, sla_s, generator,
            num_queries=num_queries, iterations=capacity_iterations,
        )
        cpu_result = cpu_outcome.result
        cpu_util = cpu_result.cpu_utilization if cpu_result else 0.0
        cpu_power = power_model.power(cpu_util, 0.0, cpu_outcome.max_qps)

        offload_tuner = OffloadThresholdTuner(
            engines, generator,
            num_queries=num_queries, capacity_iterations=capacity_iterations,
        )
        gpu_tuning = offload_tuner.tune(max(1, cpu_tuning.best_batch_size), sla_s)
        gpu_config = ServingConfig(
            batch_size=max(1, cpu_tuning.best_batch_size),
            offload_threshold=gpu_tuning.best_threshold,
        )
        gpu_outcome = find_max_qps(
            engines, gpu_config, sla_s, generator,
            num_queries=num_queries, iterations=capacity_iterations,
        )
        gpu_result = gpu_outcome.result
        gpu_work = gpu_result.gpu_work_fraction if gpu_result else 0.0
        gpu_power = power_model.power(
            gpu_result.cpu_utilization if gpu_result else 0.0,
            gpu_result.gpu_utilization if gpu_result else 0.0,
            gpu_outcome.max_qps,
        )
        gpu_fractions.append(gpu_work)

        cpu_qpw = cpu_outcome.max_qps / cpu_power.cpu_watts if cpu_power.cpu_watts else 0.0
        gpu_qpw = gpu_power.qps_per_watt if gpu_power.total_watts else 0.0
        result.add_row(
            sla_ms,
            round(cpu_outcome.max_qps, 1),
            round(gpu_outcome.max_qps, 1),
            round(gpu_work, 3),
            round(cpu_qpw, 2),
            round(gpu_qpw, 2),
        )

    result.metadata["gpu_work_fraction_by_target"] = dict(
        zip([float(t) for t in latency_targets_ms], gpu_fractions)
    )
    result.notes = (
        "CPU+GPU achieves higher QPS at every target; the GPU's share of work "
        "shrinks as the target relaxes, and QPS/Watt favours the GPU mainly at "
        "tight targets."
    )
    return result
