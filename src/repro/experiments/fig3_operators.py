"""Fig. 3: operator time breakdown per model at batch size 64.

Reports, for every model, the fraction of request time spent in each operator
category (FC, embedding, attention, recurrent, concat, sum) on a Broadwell
core — the basis for the embedding- / MLP- / attention-dominated grouping
used throughout the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.execution.breakdown import compute_breakdown
from repro.execution.engine import build_cpu_engine
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.models.ops import OperatorCategory
from repro.models.zoo import MODEL_NAMES

_COLUMNS = [
    OperatorCategory.FC,
    OperatorCategory.EMBEDDING,
    OperatorCategory.ATTENTION,
    OperatorCategory.RECURRENT,
    OperatorCategory.CONCAT,
    OperatorCategory.SUM,
]


@register_experiment("figure-3")
def run(
    models: Optional[Sequence[str]] = None,
    platform: str = "broadwell",
    batch_size: int = 64,
) -> ExperimentResult:
    """Compute per-category time fractions for each model."""
    names = list(models) if models is not None else list(MODEL_NAMES)
    result = ExperimentResult(
        experiment_id="figure-3",
        title=f"Operator time breakdown at batch {batch_size} on {platform}",
        headers=["model", "dominant"]
        + [category.value for category in _COLUMNS]
        + ["latency-ms"],
    )
    dominant = {}
    for name in names:
        breakdown = compute_breakdown(build_cpu_engine(name, platform), batch_size)
        dominant[name] = breakdown.dominant_category.value
        result.add_row(
            name,
            breakdown.dominant_category.value,
            *[round(breakdown.fraction(category), 3) for category in _COLUMNS],
            round(breakdown.total_latency_s * 1e3, 3),
        )
    result.metadata["dominant_by_model"] = dominant
    return result
