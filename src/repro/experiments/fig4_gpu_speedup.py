"""Fig. 4: GPU speedup over a CPU core across batch sizes.

For every model, sweeps the batch size from 1 to the maximum query size and
reports the GPU-over-CPU speedup, the batch size at which the GPU begins to
outperform the CPU (the crossover annotated in the paper's figure), and the
share of GPU time spent on input data loading (the paper reports 60-80 % on
average).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.execution.engine import build_cpu_engine, build_gpu_engine
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.models.zoo import MODEL_NAMES, get_model

DEFAULT_BATCH_SIZES = (1, 4, 16, 64, 256, 1024)


@register_experiment("figure-4")
def run(
    models: Optional[Sequence[str]] = None,
    cpu_platform: str = "broadwell",
    gpu_platform: str = "gtx1080ti",
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
) -> ExperimentResult:
    """Sweep GPU-over-CPU speedup vs batch size per model."""
    names = list(models) if models is not None else list(MODEL_NAMES)
    sizes = list(batch_sizes)
    result = ExperimentResult(
        experiment_id="figure-4",
        title=f"GPU speedup over one {cpu_platform} core vs batch size",
        headers=["model"]
        + [f"speedup@{batch}" for batch in sizes]
        + ["crossover-batch", "data-loading-fraction"],
    )
    crossovers = {}
    for name in names:
        model = get_model(name, build_executable=False)
        cpu_engine = build_cpu_engine(model, cpu_platform)
        gpu_engine = build_gpu_engine(model, gpu_platform)
        speedups = []
        crossover = None
        loading_fractions = []
        for batch in sizes:
            cpu_latency = cpu_engine.request_latency_s(batch, active_cores=1)
            gpu_latency = gpu_engine.query_latency(batch)
            speedup = cpu_latency / gpu_latency.total_s
            speedups.append(round(speedup, 3))
            loading_fractions.append(gpu_latency.data_loading_fraction)
            if crossover is None and speedup >= 1.0:
                crossover = batch
        crossovers[name] = crossover
        mean_loading = sum(loading_fractions) / len(loading_fractions)
        result.add_row(name, *speedups, crossover, round(mean_loading, 3))
    result.metadata["crossover_by_model"] = crossovers
    result.notes = (
        "GPUs overtake the CPU only above a per-model batch-size crossover; "
        "input data loading dominates GPU time."
    )
    return result
