"""Degraded-fleet extension: serving capacity and tails under injected faults.

The paper's evaluation assumes every node stays healthy; production fleets
do not.  This extension experiment injects deterministic, seeded fault
plans (node crash/recovery intervals plus straggler episodes — see
:mod:`repro.faults`) into the shared-heap
:class:`~repro.serving.cluster.ClusterSimulator` and measures what failures
cost — and what failure-awareness buys back — as the fault rate rises:

* **naive** arm: the stock ``least-outstanding`` balancer with no retries.
  It has no health view, so a crashed node (whose queue the crash just
  cleared) looks *maximally attractive* and the balancer blackholes
  traffic into it — the classic failure mode this experiment exists to
  show.
* **failure-aware** arm: the ``failure-aware`` balancer (skips down nodes,
  discounts stragglers) plus a :class:`~repro.faults.RetryPolicy` with a
  retry budget and hedged duplicates.

Both arms replay the *same* query stream under the *same* seeded fault
plan per fault rate, so every difference in the table is attributable to
the balancing/retry policy alone.  Reported per (rate, arm): fleet
capacity at the p95 SLA under faults, measured p95 at a fixed offered
load, and SLA violations (failed queries plus completions over the SLA).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.execution.engine import build_engine_pair
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.faults import FaultPlan, RetryPolicy
from repro.queries.generator import LoadGenerator
from repro.runtime.capacity import CapacitySearch, run_capacity_searches
from repro.serving.capacity import CapacityCache
from repro.serving.cluster import ClusterSimulator, homogeneous_fleet
from repro.serving.simulator import ServingConfig
from repro.serving.sla import SLATier, sla_target
from repro.utils.validation import check_in_range, check_positive

#: Per-node crash rates swept by default.  High-capacity simulated fleets
#: compress wall-clock into sub-second traces, so the rates are time-dense
#: (fractions of a crash per simulated second) to land a handful of crash
#: windows inside every replay.
DEFAULT_CRASH_RATES_HZ = (0.0, 0.2, 0.5)

#: The two arms compared at every fault rate: (label, balancer, retry policy).
ARMS: Tuple[Tuple[str, str, RetryPolicy], ...] = (
    ("naive", "least-outstanding", RetryPolicy()),
    (
        "failure-aware",
        "failure-aware",
        RetryPolicy(max_retries=2, hedge=True),
    ),
)


@register_experiment("degraded-fleet")
def run(
    model: str = "dlrm-rmc1",
    tier: SLATier = SLATier.MEDIUM,
    num_servers: int = 3,
    num_cores: int = 8,
    batch_size: int = 256,
    crash_rates_hz: Sequence[float] = DEFAULT_CRASH_RATES_HZ,
    mean_downtime_s: float = 0.5,
    straggler_slowdown: float = 3.0,
    mean_straggler_s: float = 1.0,
    load_fraction: float = 0.55,
    duration_s: float = 4.0,
    capacity_num_queries: int = 6000,
    capacity_iterations: int = 4,
    capacity_max_queries: int = 12000,
    seed: int = 17,
    jobs: int = 1,
    capacity_cache_dir: Optional[str] = None,
) -> ExperimentResult:
    """Sweep fault rate x {naive, failure-aware} on one homogeneous fleet.

    ``crash_rates_hz`` are per-node crash rates; each rate also injects
    straggler episodes at half that rate (slowdown
    ``straggler_slowdown``), so the sweep degrades both availability and
    speed together.  ``load_fraction`` fixes the measured offered load as
    a fraction of the *healthy* fleet's capacity at the SLA — the same
    absolute QPS for every cell, so p95/violations columns are comparable
    across rates and arms.  Fault plans are seeded per rate and shared by
    both arms (and by the capacity search), making every cell a
    deterministic function of ``seed``.
    """
    check_positive("num_servers", num_servers)
    check_in_range("load_fraction", load_fraction, 0.1, 1.0)
    check_positive("duration_s", duration_s)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    rates = [float(rate) for rate in crash_rates_hz]
    if not rates or any(rate < 0 for rate in rates):
        raise ValueError(
            f"crash_rates_hz must be non-negative, got {crash_rates_hz!r}"
        )

    target = sla_target(model, tier)
    engines = build_engine_pair(model, "skylake", None)
    config = ServingConfig(batch_size=batch_size, num_cores=num_cores)
    servers = homogeneous_fleet(engines, config, num_servers)
    generator = LoadGenerator(seed=seed)
    warm_start = CapacityCache(capacity_cache_dir) if capacity_cache_dir else None
    fidelity = dict(
        num_queries=capacity_num_queries,
        iterations=capacity_iterations,
        max_queries=capacity_max_queries,
    )

    # Healthy-fleet capacity anchors the offered load for every cell.
    baseline = run_capacity_searches(
        [
            CapacitySearch.for_fleet(
                servers, "least-outstanding", target.latency_s, generator,
                **fidelity,
            )
        ],
        jobs=jobs,
        warm_start_cache=warm_start,
    )[0]
    offered_qps = load_fraction * baseline.max_qps
    num_queries = max(1, int(offered_qps * duration_s))
    queries = generator.with_rate(offered_qps).generate(num_queries)
    horizon_s = queries[-1].arrival_time if queries else 0.0

    # One seeded plan per fault rate, shared verbatim by both arms and by
    # that rate's capacity searches.
    plans = [
        FaultPlan.generate(
            num_servers,
            horizon_s,
            crash_rate_hz=rate,
            mean_downtime_s=mean_downtime_s,
            straggler_rate_hz=rate / 2.0,
            mean_straggler_s=mean_straggler_s,
            straggler_slowdown=straggler_slowdown,
            seed=seed,
        )
        for rate in rates
    ]

    # Capacity under faults, one search per (rate, arm), all submitted into
    # the shared pool at once like every other sweep in the repository.
    searches = [
        CapacitySearch.for_fleet(
            servers, balancer, target.latency_s, generator,
            fault_plan=plan, retry_policy=retry, **fidelity,
        )
        for plan in plans
        for (_, balancer, retry) in ARMS
    ]
    capacities = iter(
        run_capacity_searches(searches, jobs=jobs, warm_start_cache=warm_start)
    )

    result = ExperimentResult(
        experiment_id="degraded-fleet",
        title=(
            f"Fleet capacity and tails under injected faults "
            f"({model}, {num_servers} servers, {target.latency_ms:.0f} ms p95)"
        ),
        headers=[
            "crash-rate-hz", "arm", "capacity-qps", "p95-ms", "violations",
            "failed", "retries", "hedges", "crashes",
        ],
    )
    by_rate: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for rate, plan in zip(rates, plans):
        cells: Dict[str, Dict[str, Any]] = {}
        for label, balancer, retry in ARMS:
            capacity = next(capacities)
            simulator = ClusterSimulator(
                servers,
                balancer=balancer,
                fault_plan=plan,
                retry_policy=retry,
            )
            measured = simulator.run(queries)
            stats = measured.fault_stats
            failed = measured.failed_queries
            over_sla = sum(
                1
                for latency in measured.latencies_s
                if latency > target.latency_s
            )
            violations = failed + over_sla
            result.add_row(
                rate, label, round(capacity.max_qps, 1),
                round(measured.p95_latency_s * 1e3, 2), violations, failed,
                stats.retries if stats else 0,
                stats.hedged_dispatches if stats else 0,
                stats.crashes if stats else 0,
            )
            cells[label] = {
                "capacity_qps": capacity.max_qps,
                "p95_latency_s": measured.p95_latency_s,
                "violations": violations,
                "failed_queries": failed,
                "blackholed": stats.blackholed_dispatches if stats else 0,
                "retries": stats.retries if stats else 0,
                "hedged": stats.hedged_dispatches if stats else 0,
                "crashes": stats.crashes if stats else 0,
            }
        by_rate[f"{rate:g}"] = cells

    worst = f"{max(rates):g}"
    result.metadata["baseline_capacity_qps"] = baseline.max_qps
    result.metadata["offered_qps"] = offered_qps
    result.metadata["crash_rates_hz"] = rates
    result.metadata["by_rate"] = by_rate
    result.metadata["sla_latency_ms"] = target.latency_ms
    if warm_start is not None:
        result.metadata["capacity_cache_stats"] = dict(warm_start.stats)
    naive_worst = by_rate[worst]["naive"]
    aware_worst = by_rate[worst]["failure-aware"]
    result.notes = (
        f"At {worst} crashes/s per node: naive balancing suffers "
        f"{naive_worst['violations']} SLA violations "
        f"({naive_worst['failed_queries']} failed outright); failure-aware "
        f"balancing with retry+hedging holds that to "
        f"{aware_worst['violations']} violations "
        f"({aware_worst['failed_queries']} failed)."
    )
    return result
