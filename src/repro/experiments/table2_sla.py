"""Table II: runtime bottleneck class and SLA target per model.

The bottleneck column is *measured* (dominant operator category of the
modelled breakdown at batch 64), not copied from the config, so this
experiment doubles as a consistency check between the model definitions and
the paper's classification.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.execution.breakdown import compute_breakdown
from repro.execution.engine import build_cpu_engine
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.models.ops import OperatorCategory
from repro.models.zoo import MODEL_NAMES, get_config

_BOTTLENECK_LABELS = {
    OperatorCategory.EMBEDDING: "embedding dominated",
    OperatorCategory.FC: "mlp dominated",
    OperatorCategory.ATTENTION: "attention dominated",
    OperatorCategory.RECURRENT: "attention-based gru dominated",
    OperatorCategory.CONCAT: "data-movement dominated",
    OperatorCategory.SUM: "data-movement dominated",
    OperatorCategory.OTHER: "other",
}


@register_experiment("table-2")
def run(
    models: Optional[Sequence[str]] = None,
    platform: str = "broadwell",
    batch_size: int = 64,
) -> ExperimentResult:
    """Regenerate Table II: measured bottleneck plus published SLA target."""
    names = list(models) if models is not None else list(MODEL_NAMES)
    result = ExperimentResult(
        experiment_id="table-2",
        title="Runtime bottleneck and SLA tail-latency target per model",
        headers=["model", "measured-bottleneck", "expected-class", "sla-target-ms"],
    )
    matches = 0
    for name in names:
        config = get_config(name)
        breakdown = compute_breakdown(build_cpu_engine(name, platform), batch_size)
        measured = _BOTTLENECK_LABELS[breakdown.dominant_category]
        expected = config.bottleneck.value
        if expected.split("-")[0] in measured:
            matches += 1
        result.add_row(name, measured, expected, config.sla_target_ms)
    result.metadata["bottleneck_agreement"] = matches / len(names)
    result.notes = (
        "SLA targets are the published medium targets; Low/High tiers are "
        "50% below/above."
    )
    return result
