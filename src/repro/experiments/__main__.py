"""Command-line entry point for regenerating paper tables and figures.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments figure-3
    python -m repro.experiments table-1 figure-5 --output report.txt
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.registry import available_experiments
from repro.experiments.runner import render_report, run_experiments
from repro.runtime.pool import shared_pool


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the experiment CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate DeepRecSys paper tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="Experiment ids (e.g. figure-3, table-1). Default: all registered.",
    )
    parser.add_argument(
        "--list", action="store_true", help="List registered experiment ids and exit."
    )
    parser.add_argument(
        "--output", default="", help="Write the report to a file as well as stdout."
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="Worker processes for running experiments in parallel (0 = all cores).",
    )
    parser.add_argument(
        "--cache-dir",
        default="",
        help="Directory for the on-disk result cache (reruns become instant).",
    )
    parser.add_argument(
        "--workers",
        default="",
        help=(
            "Comma-separated host:port addresses of remote workers "
            "(started with `python -m repro.runtime.remote worker`); the run "
            "is drained by that fleet instead of local processes, with "
            "host-failure recovery and local fallback."
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiments and print a plain-text report."""
    args = build_parser().parse_args(argv)
    if args.list:
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.jobs < 0:
        print(f"--jobs must be >= 0, got {args.jobs}", file=sys.stderr)
        return 2
    ids = args.experiments or None
    remote_pool = None
    if args.workers:
        from repro.runtime.remote import RemoteWorkerPool

        try:
            remote_pool = RemoteWorkerPool(
                args.workers, cache_sync=args.cache_dir or None
            )
        except ValueError as error:
            print(f"--workers: {error}", file=sys.stderr)
            return 2
        if remote_pool.live_workers == 0:
            print(
                "warning: no remote workers reachable; running locally",
                file=sys.stderr,
            )
        workers = args.jobs if args.jobs > 1 else remote_pool.max_workers
    else:
        workers = args.jobs if args.jobs else (os.cpu_count() or 1)
    # One pool per invocation: every parallel consumer below — the sweep
    # runner, capacity searches, figure replay fans — resolves to this pool,
    # so the whole run forks at most one set of workers (lazily, only if
    # parallel work actually arrives).  With --workers the invocation's pool
    # is the remote fleet instead, same surface, zero call-site changes.
    with shared_pool(workers, pool=remote_pool) as invocation_pool:
        results = run_experiments(
            ids,
            processes=workers,
            cache_dir=args.cache_dir or None,
        )
        fleet_stats = invocation_pool.stats if remote_pool is not None else None
    report = render_report(results)
    print(report)
    if fleet_stats is not None:
        counters = ", ".join(
            f"{key}={value}"
            for key, value in sorted(fleet_stats.items())
            if value and key != "submitted" and key != "completed"
        )
        print(
            f"[remote] workers={fleet_stats['remote_workers']} "
            f"tasks={fleet_stats['completed']}/{fleet_stats['submitted']}"
            + (f" ({counters})" if counters else "")
        )
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
