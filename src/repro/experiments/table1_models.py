"""Table I: architectural features of the eight recommendation models."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.models.zoo import MODEL_NAMES, get_config
from repro.utils.units import bytes_to_gb


@register_experiment("table-1")
def run(models: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Regenerate the Table I rows from the zoo configurations."""
    names = list(models) if models is not None else list(MODEL_NAMES)
    result = ExperimentResult(
        experiment_id="table-1",
        title="Architectural features of state-of-the-art recommendation models",
        headers=[
            "model",
            "company",
            "domain",
            "dense-fc",
            "predict-fc",
            "tasks",
            "tables",
            "lookups",
            "pooling",
            "emb-dim",
            "storage-gb",
        ],
    )
    for name in names:
        config = get_config(name)
        dense_fc = "-".join(str(width) for width in config.dense_fc) or "-"
        predict_fc = "-".join(str(width) for width in config.predict_fc)
        result.add_row(
            config.name,
            config.company,
            config.domain,
            dense_fc,
            predict_fc,
            config.num_tasks,
            config.embedding.num_tables,
            config.embedding.lookups_per_table,
            config.pooling.value,
            config.embedding.embedding_dim,
            round(bytes_to_gb(config.embedding.storage_bytes), 3),
        )
    result.metadata["num_models"] = len(names)
    return result
