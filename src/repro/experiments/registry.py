"""Experiment registry: maps paper table/figure identifiers to driver functions."""

from __future__ import annotations

import inspect
from typing import Callable, Dict, KeysView, List

from repro.experiments.result import ExperimentResult

ExperimentFn = Callable[..., ExperimentResult]

_REGISTRY: Dict[str, ExperimentFn] = {}


def register_experiment(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering a driver function under ``experiment_id``."""

    def decorator(fn: ExperimentFn) -> ExperimentFn:
        key = experiment_id.lower()
        if key in _REGISTRY:
            raise ValueError(f"experiment {experiment_id!r} is already registered")
        _REGISTRY[key] = fn
        return fn

    return decorator


def get_experiment(experiment_id: str) -> ExperimentFn:
    """Return the driver registered under ``experiment_id``."""
    key = experiment_id.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {available_experiments()}"
        )
    return _REGISTRY[key]


def available_experiments() -> List[str]:
    """All registered experiment identifiers, sorted."""
    return sorted(_REGISTRY)


def experiment_parameters(experiment_id: str) -> KeysView[str]:
    """Parameter names the driver registered under ``experiment_id`` accepts.

    The runner uses this to route worker/cache settings (``jobs``,
    ``capacity_cache_dir``) only into drivers that understand them, and the
    CLI-routing tests use it to enumerate every driver that does.
    """
    return inspect.signature(get_experiment(experiment_id)).parameters.keys()


def experiments_accepting(parameter: str) -> List[str]:
    """Registered experiment ids whose drivers accept ``parameter``, sorted."""
    return [
        experiment_id
        for experiment_id in available_experiments()
        if parameter in experiment_parameters(experiment_id)
    ]
