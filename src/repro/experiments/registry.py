"""Experiment registry: maps paper table/figure identifiers to driver functions."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments.result import ExperimentResult

ExperimentFn = Callable[..., ExperimentResult]

_REGISTRY: Dict[str, ExperimentFn] = {}


def register_experiment(experiment_id: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator registering a driver function under ``experiment_id``."""

    def decorator(fn: ExperimentFn) -> ExperimentFn:
        key = experiment_id.lower()
        if key in _REGISTRY:
            raise ValueError(f"experiment {experiment_id!r} is already registered")
        _REGISTRY[key] = fn
        return fn

    return decorator


def get_experiment(experiment_id: str) -> ExperimentFn:
    """Return the driver registered under ``experiment_id``."""
    key = experiment_id.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {available_experiments()}"
        )
    return _REGISTRY[key]


def available_experiments() -> List[str]:
    """All registered experiment identifiers, sorted."""
    return sorted(_REGISTRY)
