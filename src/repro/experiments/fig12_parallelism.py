"""Fig. 12: where the optimal batch size comes from.

Three panels, all produced by sweeping batch size and finding the optimum
under a latency target:

* (a) the optimum shifts with the tail-latency target and with the query-size
  distribution (production vs lognormal) — DLRM-RMC1;
* (b) the optimum differs across models with different bottlenecks;
* (c) the optimum differs across CPU platforms (Broadwell vs Skylake) —
  DLRM-RMC3.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.execution.engine import build_engine_pair
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.queries.generator import LoadGenerator
from repro.queries.size_dist import LognormalQuerySizes, ProductionQuerySizes
from repro.serving.capacity import find_max_qps
from repro.serving.simulator import ServingConfig
from repro.serving.sla import SLATier, sla_target

DEFAULT_BATCH_SIZES = (32, 64, 128, 256, 512, 1024)


def _optimal_batch(
    engines,
    generator: LoadGenerator,
    sla_latency_s: float,
    batch_sizes: Sequence[int],
    num_queries: int,
    capacity_iterations: int,
) -> tuple:
    best_batch, best_qps = batch_sizes[0], 0.0
    for batch in batch_sizes:
        outcome = find_max_qps(
            engines,
            ServingConfig(batch_size=batch),
            sla_latency_s,
            generator,
            num_queries=num_queries,
            iterations=capacity_iterations,
        )
        # Prefer the smaller batch size on near-ties: the QPS surface is flat
        # near the optimum, and requiring a 2% improvement keeps the reported
        # optimum stable across seeds and fidelity settings.
        if outcome.max_qps > best_qps * 1.02:
            best_batch, best_qps = batch, outcome.max_qps
    return best_batch, best_qps


@register_experiment("figure-12")
def run(
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    tiers: Sequence[SLATier] = (SLATier.LOW, SLATier.MEDIUM, SLATier.HIGH),
    panel_a_model: str = "dlrm-rmc1",
    panel_b_models: Sequence[str] = ("dlrm-rmc1", "dlrm-rmc3", "dien", "wnd"),
    panel_c_model: str = "dlrm-rmc3",
    num_queries: int = 400,
    capacity_iterations: int = 4,
    seed: int = 3,
) -> ExperimentResult:
    """Find optimal batch sizes across SLA targets, size distributions, models, platforms."""
    result = ExperimentResult(
        experiment_id="figure-12",
        title="Optimal per-request batch size across targets, distributions, models, platforms",
        headers=["panel", "case", "tier", "optimal-batch", "qps"],
    )
    metadata: Dict[str, Dict] = {"panel_a": {}, "panel_b": {}, "panel_c": {}}

    # Panel (a): SLA tiers x query-size distributions for one model.
    engines_a = build_engine_pair(panel_a_model, "skylake", None)
    for dist_name, sizes in (
        ("production", ProductionQuerySizes()),
        ("lognormal", LognormalQuerySizes()),
    ):
        generator = LoadGenerator(sizes=sizes, seed=seed)
        for tier in tiers:
            target = sla_target(panel_a_model, tier)
            batch, qps = _optimal_batch(
                engines_a, generator, target.latency_s, batch_sizes,
                num_queries, capacity_iterations,
            )
            metadata["panel_a"][f"{dist_name}-{tier.value}"] = batch
            result.add_row("a", f"{panel_a_model}/{dist_name}", tier.value, batch, round(qps, 1))

    # Panel (b): model diversity at the medium tier.
    generator_b = LoadGenerator(seed=seed)
    for model in panel_b_models:
        engines_b = build_engine_pair(model, "skylake", None)
        target = sla_target(model, SLATier.HIGH)
        batch, qps = _optimal_batch(
            engines_b, generator_b, target.latency_s, batch_sizes,
            num_queries, capacity_iterations,
        )
        metadata["panel_b"][model] = batch
        result.add_row("b", model, SLATier.HIGH.value, batch, round(qps, 1))

    # Panel (c): hardware platforms for one model.
    generator_c = LoadGenerator(seed=seed)
    for platform in ("broadwell", "skylake"):
        engines_c = build_engine_pair(panel_c_model, platform, None)
        target = sla_target(panel_c_model, SLATier.HIGH)
        batch, qps = _optimal_batch(
            engines_c, generator_c, target.latency_s, batch_sizes,
            num_queries, capacity_iterations,
        )
        metadata["panel_c"][platform] = batch
        result.add_row("c", f"{panel_c_model}/{platform}", SLATier.HIGH.value, batch, round(qps, 1))

    result.metadata.update(metadata)
    result.notes = (
        "Optimal batch sizes: grow with relaxed targets, are lower under the "
        "lognormal distribution than the production one, larger for "
        "embedding-dominated models, and larger on Broadwell than Skylake."
    )
    return result
