"""Fig. 11: headline throughput and power-efficiency comparison.

For every model and SLA tier, compares the static production baseline against
DeepRecSched-CPU (tuned batch size) and DeepRecSched-GPU (tuned batch size
plus tuned offload threshold), reporting QPS and QPS/Watt normalised to the
baseline at the *low* tier — exactly the quantities plotted in the paper's
Fig. 11 — plus the geometric mean across models.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.scheduler import DeepRecSched
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.models.zoo import MODEL_NAMES
from repro.serving.sla import SLATier
from repro.utils.stats import geometric_mean

DEFAULT_TIERS = (SLATier.LOW, SLATier.MEDIUM, SLATier.HIGH)


@register_experiment("figure-11")
def run(
    models: Optional[Sequence[str]] = None,
    tiers: Sequence[SLATier] = DEFAULT_TIERS,
    cpu_platform: str = "skylake",
    gpu_platform: str = "gtx1080ti",
    num_queries: int = 400,
    capacity_iterations: int = 4,
    seed: int = 5,
) -> ExperimentResult:
    """Run baseline / DeepRecSched-CPU / DeepRecSched-GPU for every model and tier."""
    names = list(models) if models is not None else list(MODEL_NAMES)
    result = ExperimentResult(
        experiment_id="figure-11",
        title="QPS and QPS/Watt vs the static baseline (normalised to baseline@low)",
        headers=[
            "model",
            "tier",
            "baseline-qps",
            "cpu-qps",
            "gpu-qps",
            "cpu-speedup",
            "gpu-speedup",
            "baseline-qps/w",
            "cpu-qps/w",
            "gpu-qps/w",
        ],
    )

    cpu_speedups: Dict[str, list] = {tier.value: [] for tier in tiers}
    gpu_speedups: Dict[str, list] = {tier.value: [] for tier in tiers}

    for model in names:
        scheduler = DeepRecSched(
            model,
            cpu_platform=cpu_platform,
            gpu_platform=gpu_platform,
            num_queries=num_queries,
            capacity_iterations=capacity_iterations,
            seed=seed,
        )
        for tier in tiers:
            baseline = scheduler.baseline(tier)
            cpu_point = scheduler.optimize_cpu(tier)
            gpu_point = scheduler.optimize_gpu(tier, batch_size=cpu_point.batch_size)
            baseline_qps = max(baseline.qps, 1e-9)
            cpu_speedup = cpu_point.qps / baseline_qps
            gpu_speedup = gpu_point.qps / baseline_qps
            cpu_speedups[tier.value].append(max(cpu_speedup, 1e-9))
            gpu_speedups[tier.value].append(max(gpu_speedup, 1e-9))
            result.add_row(
                model,
                tier.value,
                round(baseline.qps, 1),
                round(cpu_point.qps, 1),
                round(gpu_point.qps, 1),
                round(cpu_speedup, 2),
                round(gpu_speedup, 2),
                round(baseline.qps_per_watt, 2),
                round(cpu_point.qps_per_watt, 2),
                round(gpu_point.qps_per_watt, 2),
            )

    geomeans = {}
    for tier in tiers:
        geomeans[tier.value] = {
            "cpu": geometric_mean(cpu_speedups[tier.value]),
            "gpu": geometric_mean(gpu_speedups[tier.value]),
        }
        result.add_row(
            "geomean",
            tier.value,
            1.0,
            0.0,
            0.0,
            round(geomeans[tier.value]["cpu"], 2),
            round(geomeans[tier.value]["gpu"], 2),
            0.0,
            0.0,
            0.0,
        )
    result.metadata["geomean_speedups"] = geomeans
    result.notes = (
        "Paper reference points: DeepRecSched-CPU 1.7x/2.1x/2.7x and "
        "DeepRecSched-GPU 4.0x/5.1x/5.8x over the static baseline at "
        "low/medium/high tail-latency targets (geometric mean over models)."
    )
    return result
