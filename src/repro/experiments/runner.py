"""Experiment runner: execute registered drivers by id and render reports.

Besides the serial helpers (:func:`run_experiment` / :func:`run_experiments`),
this module provides :class:`SweepRunner`, a parallel sweep executor: it fans
independent sweep points out over the invocation's shared
:class:`~repro.runtime.pool.WorkerPool` (one Python process per host core by
default) and memoises every completed point in an on-disk cache keyed by a
stable hash of ``(experiment_id, kwargs)``.  Figure sweeps (fig9–fig15) are
embarrassingly parallel across their grid points, so this turns an
hours-long serial regeneration into minutes on a many-core host — and
re-running a sweep with overlapping points only pays for the new ones.

Parallelism is layered without oversubscription: when the sweep itself runs
points in the pool, drivers are *not* handed a worker budget on top (and the
pool's nesting detection would run any nested parallel call serially
anyway); when a single experiment runs inline, the worker budget is instead
routed into the driver as ``jobs`` so e.g. figure-15's capacity searches use
the same shared pool the sweep would have.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.registry import (
    available_experiments,
    experiment_parameters,
    get_experiment,
)
from repro.experiments.result import ExperimentResult
from repro.runtime.pool import as_completed, pool_scope


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run a single registered experiment and return its result."""
    driver = get_experiment(experiment_id)
    return driver(**kwargs)


def _parallelism_overrides(
    experiment_id: str,
    existing: Dict[str, Any],
    processes: Optional[int],
    cache_dir: Union[str, Path, None],
    pooled: bool = False,
) -> Dict[str, Any]:
    """Route worker/cache settings into a driver that understands them.

    When the driver runs inline (a single-experiment invocation, or a serial
    sweep), the requested ``processes`` are handed to it as ``jobs`` so its
    internal parallel work (capacity bisections, replay fans) lands on the
    invocation's shared pool.  When the driver itself runs *inside* the pool
    (``pooled=True``), no ``jobs`` are injected — sweep-level parallelism
    already owns the workers, and handing each pooled point a worker budget
    on top would oversubscribe the host (nested calls would run serially by
    nesting detection, but only after paying the speculative batching
    overhead).  ``cache_dir`` doubles as the capacity warm-start / replay
    memo directory either way.  Explicit overrides always win.
    """
    parameters = experiment_parameters(experiment_id)
    extra = dict(existing)
    workers = processes if processes is not None else (os.cpu_count() or 1)
    if not pooled and workers > 1 and "jobs" in parameters and "jobs" not in extra:
        extra["jobs"] = workers
    if (
        cache_dir is not None
        and "capacity_cache_dir" in parameters
        and "capacity_cache_dir" not in extra
    ):
        # Resolve so the same directory hashes identically regardless of the
        # working directory the sweep is launched from.
        extra["capacity_cache_dir"] = str(Path(cache_dir).resolve())
    return extra


def run_experiments(
    experiment_ids: Optional[Sequence[str]] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
    processes: Optional[int] = 1,
    cache_dir: Union[str, Path, None] = None,
) -> List[ExperimentResult]:
    """Run several experiments (all registered ones by default).

    ``overrides`` maps experiment ids to keyword arguments for their drivers,
    so callers can lower fidelity for quick runs.  With ``processes > 1`` the
    experiments execute concurrently on the invocation's shared worker pool;
    ``cache_dir`` additionally memoises each (experiment, kwargs) pair on
    disk and is forwarded to every driver that accepts a
    ``capacity_cache_dir``.  When a *single* experiment is requested, the
    worker budget is instead passed to the driver itself (as ``jobs``) if it
    accepts one, so e.g. figure-15's capacity searches scale with ``--jobs``
    rather than wasting the pool on a one-point sweep.
    """
    ids = list(experiment_ids) if experiment_ids is not None else available_experiments()
    overrides = dict(overrides) if overrides else {}
    workers = processes if processes is not None else (os.cpu_count() or 1)
    pooled = len(ids) > 1 and workers > 1
    for eid in ids:
        overrides[eid] = _parallelism_overrides(
            eid, overrides.get(eid, {}), processes, cache_dir, pooled=pooled
        )
    if (workers == 1 or len(ids) == 1) and cache_dir is None:
        return [run_experiment(eid, **overrides.get(eid, {})) for eid in ids]
    runner = SweepRunner(
        processes=1 if len(ids) == 1 else processes, cache_dir=cache_dir
    )
    outcome = runner.run_points([(eid, overrides.get(eid, {})) for eid in ids])
    return outcome.results


def render_report(results: Sequence[ExperimentResult]) -> str:
    """Render a multi-experiment plain-text report.

    Drivers that ran against a warm-start / replay cache record its per-tier
    hit/miss counters under ``metadata["capacity_cache_stats"]``; the report
    appends them under each table so cache behaviour is visible from the
    CLI (``--cache-dir``) instead of only via a debugger.
    """
    sections = []
    for result in results:
        section = result.to_table()
        stats = result.metadata.get("capacity_cache_stats")
        if isinstance(stats, dict) and stats:
            rendered = ", ".join(
                f"{key.replace('_', ' ')}: {value}"
                for key, value in sorted(stats.items())
            )
            section = f"{section}\n[cache] {rendered}"
        sections.append(section)
    return "\n\n".join(sections)


# --------------------------------------------------------------------------- #
# Parallel sweep execution with an on-disk result cache
# --------------------------------------------------------------------------- #


def canonicalize(value: Any) -> Any:
    """Reduce driver kwargs to a canonical JSON-serialisable form.

    Tuples become lists, enums their values, mappings get sorted keys —
    anything else must already be JSON-representable.  Two kwargs dicts that
    canonicalise identically are treated as the same sweep point.
    """
    if isinstance(value, Enum):
        return canonicalize(value.value)
    if isinstance(value, dict):
        return {str(key): canonicalize(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for sweep caching: {value!r}"
    )


#: Driver kwargs that, by convention, cannot change an experiment's results —
#: only how fast they are computed.  Excluded from the memo key so cached
#: sweep points hit regardless of the worker budget of the run that wrote
#: them.  ``capacity_cache_dir`` qualifies since the unified capacity search
#: made warm starts replay-exact: a warm-started search returns bit-identical
#: results to the cold serial run, so the cache directory (and whether one
#: was set at all) cannot change what a driver computes.
RESULT_NEUTRAL_KEYS = frozenset({"jobs", "capacity_cache_dir"})

#: Version of the sweep-memo key.  The memo is keyed on *kwargs*, so a change
#: to a driver's defaults or semantics (new default policy swept, different
#: reported columns) would otherwise serve stale entries recorded under the
#: old behaviour.  Bump this whenever such a change lands; every old entry
#: then misses by construction.  (v2: figure-13's default policy sweep grew
#: ``weighted-least-outstanding``.  v3: cache-aware drivers record
#: ``capacity_cache_stats`` metadata, which entries recorded by older
#: drivers lack.)
SWEEP_MEMO_SCHEMA = 3


def config_hash(experiment_id: str, kwargs: Dict[str, Any]) -> str:
    """Stable hex digest identifying one (experiment, kwargs) sweep point.

    Result-neutral knobs (:data:`RESULT_NEUTRAL_KEYS`) are dropped before
    hashing: a point computed with ``jobs=8`` against a warm-start cache is
    the same result as one computed serially and cold.  The
    :data:`SWEEP_MEMO_SCHEMA` version is folded in so entries recorded under
    older driver semantics can never be served back.
    """
    meaningful = {
        key: value for key, value in kwargs.items() if key not in RESULT_NEUTRAL_KEYS
    }
    payload = json.dumps(
        {
            "schema": SWEEP_MEMO_SCHEMA,
            "experiment_id": experiment_id.lower(),
            "kwargs": canonicalize(meaningful),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _execute_point(point: Tuple[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Worker entry: run one sweep point and return the serialised result.

    Importing :mod:`repro.experiments` (a side effect of unpickling this
    function in a spawned worker) registers every driver, so the registry is
    populated regardless of the multiprocessing start method.
    """
    experiment_id, kwargs = point
    return run_experiment(experiment_id, **kwargs).to_dict()


@dataclass
class SweepOutcome:
    """Results plus execution statistics from one sweep run."""

    results: List[ExperimentResult]
    cache_hits: int
    cache_misses: int
    elapsed_s: float
    processes: int
    point_hashes: List[str] = field(default_factory=list)

    @property
    def num_points(self) -> int:
        """Total sweep points (cached + executed)."""
        return len(self.results)


class SweepRunner:
    """Execute independent sweep points in parallel with on-disk memoisation.

    Parameters
    ----------
    processes:
        Worker processes; ``None`` means one per host core (capped by the
        number of uncached points).  ``1`` executes inline, which is also
        the fallback whenever only one point needs computing.
    cache_dir:
        Directory for the result cache; created on first use.  ``None``
        disables caching.  Entries are one JSON file per point, named by
        :func:`config_hash`, so caches can be shared, inspected, and pruned
        with ordinary file tools.
    """

    def __init__(
        self,
        processes: Optional[int] = None,
        cache_dir: Union[str, Path, None] = None,
    ) -> None:
        if processes is not None and processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._processes = processes
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None

    @property
    def cache_dir(self) -> Optional[Path]:
        """The cache directory, if caching is enabled."""
        return self._cache_dir

    # ------------------------------------------------------------------ #

    def _cache_path(self, digest: str) -> Optional[Path]:
        if self._cache_dir is None:
            return None
        return self._cache_dir / f"{digest}.json"

    def _cache_load(self, digest: str) -> Optional[ExperimentResult]:
        path = self._cache_path(digest)
        if path is None or not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
            return ExperimentResult.from_dict(payload["result"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, AttributeError):
            return None  # Treat unreadable/corrupt/foreign-shaped entries as misses.

    def _cache_store(
        self, digest: str, experiment_id: str, kwargs: Dict[str, Any], result: Dict[str, Any]
    ) -> None:
        path = self._cache_path(digest)
        if path is None:
            return
        self._cache_dir.mkdir(parents=True, exist_ok=True)
        entry = {
            "experiment_id": experiment_id,
            "kwargs": canonicalize(kwargs),
            "result": result,
        }
        # Write-then-rename keeps concurrent sweeps from reading torn entries.
        scratch = path.with_suffix(f".tmp-{os.getpid()}")
        scratch.write_text(json.dumps(entry, sort_keys=True))
        scratch.replace(path)

    # ------------------------------------------------------------------ #

    def run(
        self, experiment_id: str, points: Sequence[Dict[str, Any]]
    ) -> SweepOutcome:
        """Run ``points`` (kwargs dicts) of one experiment, possibly in parallel."""
        return self.run_points([(experiment_id, dict(point)) for point in points])

    def run_points(
        self, points: Sequence[Tuple[str, Dict[str, Any]]]
    ) -> SweepOutcome:
        """Run mixed (experiment_id, kwargs) sweep points, possibly in parallel.

        With caching enabled, points are deduplicated by config hash: each
        distinct point is computed once per run and identical points (within
        the run or from earlier runs) are served from its result.  Without a
        cache directory no hashing happens at all, so kwargs only need to be
        picklable, not canonicalisable.
        """
        if not points:
            raise ValueError("a sweep needs at least one point")
        started = time.perf_counter()
        use_cache = self._cache_dir is not None
        digests = (
            [config_hash(eid, kwargs) for eid, kwargs in points] if use_cache else []
        )

        results: List[Optional[ExperimentResult]] = [None] * len(points)
        execute: List[int] = []  # point indices actually computed
        if use_cache:
            first_index_by_digest: Dict[str, int] = {}
            for index, digest in enumerate(digests):
                if digest in first_index_by_digest:
                    continue  # duplicate of an earlier point in this run
                cached = self._cache_load(digest)
                if cached is not None:
                    results[index] = cached
                else:
                    execute.append(index)
                first_index_by_digest[digest] = index
        else:
            execute = list(range(len(points)))

        host_cores = os.cpu_count() or 1
        workers = self._processes if self._processes is not None else host_cores
        workers = max(1, min(workers, len(execute)))

        if execute:
            todo = [points[index] for index in execute]
            if workers == 1:
                # Inline fallback: the sweep itself runs serially (one
                # uncached point, or a serial budget).  If the *caller's*
                # budget allows parallelism, re-grant it to each driver as
                # ``jobs`` — otherwise a mostly-cached sweep would strand
                # the invocation's shared pool while its one fresh point
                # bisects serially.  The memo key is unaffected (``jobs`` is
                # result-neutral) and the stored kwargs stay the caller's.
                budget = self._processes if self._processes is not None else host_cores
                payloads = [
                    _execute_point(
                        (eid, _parallelism_overrides(eid, kwargs, budget, None))
                    )
                    for eid, kwargs in todo
                ]
                for index, payload in zip(execute, payloads):
                    experiment_id, kwargs = points[index]
                    if use_cache:
                        self._cache_store(
                            digests[index], experiment_id, kwargs, payload
                        )
                    results[index] = ExperimentResult.from_dict(payload)
            else:
                # The invocation's shared WorkerPool when one is active (the
                # CLI owns one per invocation), else a private pool closed on
                # exit; a nested sweep inside a pool worker runs inline.
                # Completion-driven: each point's result is cached the moment
                # it lands (an interrupted sweep keeps its finished points),
                # while the remaining points keep the pool full.
                with pool_scope(workers) as worker_pool:
                    futures = {
                        worker_pool.submit(_execute_point, point): index
                        for index, point in zip(execute, todo)
                    }
                    for future in as_completed(futures):
                        index = futures[future]
                        payload = future.result()
                        experiment_id, kwargs = points[index]
                        if use_cache:
                            self._cache_store(
                                digests[index], experiment_id, kwargs, payload
                            )
                        results[index] = ExperimentResult.from_dict(payload)

        if use_cache:
            # Resolve intra-run duplicates from their representative's result.
            for index, digest in enumerate(digests):
                if results[index] is None:
                    results[index] = results[first_index_by_digest[digest]]

        return SweepOutcome(
            results=[result for result in results if result is not None],
            cache_hits=len(points) - len(execute),
            cache_misses=len(execute),
            elapsed_s=time.perf_counter() - started,
            processes=workers,
            point_hashes=digests,
        )
