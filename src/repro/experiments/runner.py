"""Experiment runner: execute registered drivers by id and render reports."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.registry import available_experiments, get_experiment
from repro.experiments.result import ExperimentResult


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run a single registered experiment and return its result."""
    driver = get_experiment(experiment_id)
    return driver(**kwargs)


def run_experiments(
    experiment_ids: Optional[Sequence[str]] = None,
    overrides: Optional[Dict[str, Dict[str, Any]]] = None,
) -> List[ExperimentResult]:
    """Run several experiments (all registered ones by default).

    ``overrides`` maps experiment ids to keyword arguments for their drivers,
    so callers can lower fidelity for quick runs.
    """
    ids = list(experiment_ids) if experiment_ids is not None else available_experiments()
    overrides = overrides or {}
    results = []
    for experiment_id in ids:
        kwargs = overrides.get(experiment_id, {})
        results.append(run_experiment(experiment_id, **kwargs))
    return results


def render_report(results: Sequence[ExperimentResult]) -> str:
    """Render a multi-experiment plain-text report."""
    sections = [result.to_table() for result in results]
    return "\n\n".join(sections)
