"""Deterministic fault plans: crash/recovery intervals and straggler episodes.

A :class:`FaultPlan` describes, per fleet node, when the node is *down*
(crashed: accepts no work, and any in-flight work is lost) and when it is
*straggling* (alive but with service times multiplied by a ``slowdown``
factor).  Plans are plain data — either authored explicitly or derived from
a seed via :meth:`FaultPlan.generate`, which draws per-node Poisson
processes through :class:`~repro.utils.rng.RngFactory` children so the same
seed always yields the same plan regardless of process or iteration order.

The simulator consumes a plan as a flat, time-sorted list of
:class:`FaultEvent` transitions (:meth:`FaultPlan.events`); ties at one
instant resolve in a fixed kind order (recoveries before crashes) so replays
are bit-identical.  :class:`RetryPolicy` configures what happens to queries
caught on a crashed node — fail them, or re-dispatch with a bounded retry
budget and optional hedged duplicates.  :class:`NodeHealth` is the mutable
per-node view the simulator maintains and failure-aware balancers read, and
:class:`FaultStats` is the tally a faulted run reports.

>>> plan = FaultPlan.generate(
...     num_servers=3, horizon_s=50.0,
...     crash_rate_hz=0.05, mean_downtime_s=4.0, seed=7)
>>> plan == FaultPlan.generate(
...     num_servers=3, horizon_s=50.0,
...     crash_rate_hz=0.05, mean_downtime_s=4.0, seed=7)
True
>>> plan.is_empty()
False
>>> FaultPlan().is_empty()
True
>>> FaultPlan.from_dict(plan.to_dict()) == plan
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.utils.rng import RngFactory
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "CrashWindow",
    "StragglerEpisode",
    "NodeFaultSchedule",
    "FaultEvent",
    "FaultPlan",
    "RetryPolicy",
    "NodeHealth",
    "FaultStats",
]


def _check_interval(label: str, start_s: float, end_s: float) -> None:
    check_non_negative(f"{label}.start_s", start_s)
    if end_s <= start_s:
        raise ValueError(
            f"{label} must end after it starts, got [{start_s}, {end_s})"
        )


def _check_disjoint(
    label: str, intervals: Sequence[Union[CrashWindow, StragglerEpisode]]
) -> None:
    for earlier, later in zip(intervals, intervals[1:]):
        if later.start_s < earlier.end_s:
            raise ValueError(
                f"{label} intervals overlap: [{earlier.start_s}, {earlier.end_s}) "
                f"and [{later.start_s}, {later.end_s})"
            )


@dataclass(frozen=True)
class CrashWindow:
    """One ``[start_s, end_s)`` interval during which a node is down.

    The node crashes at ``start_s`` (in-flight work lost) and recovers —
    empty, accepting traffic again — at ``end_s``.
    """

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_interval("CrashWindow", self.start_s, self.end_s)


@dataclass(frozen=True)
class StragglerEpisode:
    """One interval during which a node's service times are multiplied.

    ``slowdown`` must be ≥ 1: stragglers only ever get slower.  Episodes may
    overlap a crash window (the slowdown simply has nothing to act on while
    the node is down).
    """

    start_s: float
    end_s: float
    slowdown: float

    def __post_init__(self) -> None:
        _check_interval("StragglerEpisode", self.start_s, self.end_s)
        if self.slowdown < 1.0:
            raise ValueError(
                f"StragglerEpisode.slowdown must be >= 1, got {self.slowdown}"
            )


@dataclass(frozen=True)
class NodeFaultSchedule:
    """All faults for one node: disjoint crash windows + straggler episodes."""

    crashes: Tuple[CrashWindow, ...] = ()
    stragglers: Tuple[StragglerEpisode, ...] = ()

    def __post_init__(self) -> None:
        ordered_crashes = tuple(
            sorted(self.crashes, key=lambda w: (w.start_s, w.end_s))
        )
        ordered_stragglers = tuple(
            sorted(self.stragglers, key=lambda e: (e.start_s, e.end_s))
        )
        _check_disjoint("crash", ordered_crashes)
        _check_disjoint("straggler", ordered_stragglers)
        object.__setattr__(self, "crashes", ordered_crashes)
        object.__setattr__(self, "stragglers", ordered_stragglers)

    @property
    def empty(self) -> bool:
        """True when the node has no faults at all."""
        return not self.crashes and not self.stragglers


#: Transition kinds, in tie-break order at one instant: a node finishing a
#: straggler episode or recovering is processed before a node crashing or
#: starting to straggle at the same time, so back-to-back intervals behave
#: as the half-open ``[start, end)`` semantics promise.
KIND_SLOW_OFF = "slow-off"
KIND_RECOVER = "recover"
KIND_SLOW_ON = "slow-on"
KIND_CRASH = "crash"
_KIND_RANK = {KIND_SLOW_OFF: 0, KIND_RECOVER: 1, KIND_SLOW_ON: 2, KIND_CRASH: 3}


@dataclass(frozen=True)
class FaultEvent:
    """One node state transition, as the simulator consumes it."""

    time_s: float
    node: int
    kind: str
    slowdown: float = 1.0

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time_s, _KIND_RANK[self.kind], self.node)


@dataclass(frozen=True)
class FaultPlan:
    """Per-node fault schedules for a fleet, keyed by server index.

    An empty plan (``FaultPlan()`` or every schedule empty) is the "no
    faults" sentinel: the simulator takes its original, bit-identical code
    path when given one.
    """

    nodes: Mapping[int, NodeFaultSchedule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalised: Dict[int, NodeFaultSchedule] = {}
        for node, schedule in self.nodes.items():
            index = int(node)
            check_non_negative("node index", index)
            if not schedule.empty:
                normalised[index] = schedule
        object.__setattr__(self, "nodes", normalised)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return dict(self.nodes) == dict(other.nodes)

    def __hash__(self) -> int:
        # Process-stable: the tuple reaches hash() as int node indices and
        # frozen dataclasses of floats/tuples-of-floats.  CPython only salts
        # str/bytes hashing with PYTHONHASHSEED, so no string may ever enter
        # this structure (enforced by test_faults.py::TestFaultPlanHash).
        return hash(  # reprolint: disable=RL001 -- int/float-only tuple; unsalted across processes
            tuple(sorted(self.nodes.items(), key=lambda kv: kv[0]))
        )

    # ------------------------------------------------------------------ #

    def is_empty(self) -> bool:
        """True when no node has any crash or straggler scheduled."""
        return not self.nodes

    def events(self, num_servers: int) -> List[FaultEvent]:
        """The plan flattened to time-sorted transitions for a fleet.

        Schedules for node indices at or beyond ``num_servers`` are ignored,
        so one plan can be evaluated against fleets of different sizes.
        """
        out: List[FaultEvent] = []
        for node in sorted(self.nodes):
            if node >= num_servers:
                continue
            schedule = self.nodes[node]
            for window in schedule.crashes:
                out.append(FaultEvent(window.start_s, node, KIND_CRASH))
                out.append(FaultEvent(window.end_s, node, KIND_RECOVER))
            for episode in schedule.stragglers:
                out.append(
                    FaultEvent(
                        episode.start_s, node, KIND_SLOW_ON, episode.slowdown
                    )
                )
                out.append(FaultEvent(episode.end_s, node, KIND_SLOW_OFF))
        out.sort(key=FaultEvent.sort_key)
        return out

    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (stable across equal plans)."""
        return {
            "nodes": {
                str(node): {
                    "crashes": [
                        [window.start_s, window.end_s]
                        for window in self.nodes[node].crashes
                    ],
                    "stragglers": [
                        [episode.start_s, episode.end_s, episode.slowdown]
                        for episode in self.nodes[node].stragglers
                    ],
                }
                for node in sorted(self.nodes)
            }
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        nodes: Dict[int, NodeFaultSchedule] = {}
        for node, schedule in payload.get("nodes", {}).items():
            nodes[int(node)] = NodeFaultSchedule(
                crashes=tuple(
                    CrashWindow(float(start), float(end))
                    for start, end in schedule.get("crashes", ())
                ),
                stragglers=tuple(
                    StragglerEpisode(float(start), float(end), float(slow))
                    for start, end, slow in schedule.get("stragglers", ())
                ),
            )
        return cls(nodes=nodes)

    # ------------------------------------------------------------------ #

    @classmethod
    def generate(
        cls,
        num_servers: int,
        horizon_s: float,
        *,
        crash_rate_hz: float = 0.0,
        mean_downtime_s: float = 2.0,
        straggler_rate_hz: float = 0.0,
        mean_straggler_s: float = 2.0,
        straggler_slowdown: float = 3.0,
        seed: int = 0,
    ) -> "FaultPlan":
        """Draw a seeded plan: independent Poisson faults per node.

        Each node's crash and straggler streams come from their own
        :meth:`RngFactory.child <repro.utils.rng.RngFactory.child>` streams
        (``fault/node-i/crash`` and ``fault/node-i/straggle``), so the plan
        is a pure function of ``(seed, num_servers, rates, horizon)`` —
        independent of iteration order, process, or which other knobs are
        enabled.  Intervals are non-overlapping by construction (the next
        fault is drawn from the end of the previous one) and an interval may
        extend past ``horizon_s`` (the node simply never recovers on-trace).
        """
        check_positive("num_servers", num_servers)
        check_positive("horizon_s", horizon_s)
        check_non_negative("crash_rate_hz", crash_rate_hz)
        check_non_negative("straggler_rate_hz", straggler_rate_hz)
        if crash_rate_hz:
            check_positive("mean_downtime_s", mean_downtime_s)
        if straggler_rate_hz:
            check_positive("mean_straggler_s", mean_straggler_s)
            if straggler_slowdown < 1.0:
                raise ValueError(
                    f"straggler_slowdown must be >= 1, got {straggler_slowdown}"
                )
        factory = RngFactory(seed)
        nodes: Dict[int, NodeFaultSchedule] = {}
        for node in range(num_servers):
            crashes: List[CrashWindow] = []
            if crash_rate_hz > 0.0:
                rng = factory.child(f"fault/node-{node}/crash")
                now = float(rng.exponential(1.0 / crash_rate_hz))
                while now < horizon_s:
                    downtime = float(rng.exponential(mean_downtime_s))
                    crashes.append(CrashWindow(now, now + downtime))
                    now += downtime + float(rng.exponential(1.0 / crash_rate_hz))
            stragglers: List[StragglerEpisode] = []
            if straggler_rate_hz > 0.0:
                rng = factory.child(f"fault/node-{node}/straggle")
                now = float(rng.exponential(1.0 / straggler_rate_hz))
                while now < horizon_s:
                    length = float(rng.exponential(mean_straggler_s))
                    stragglers.append(
                        StragglerEpisode(now, now + length, straggler_slowdown)
                    )
                    now += length + float(
                        rng.exponential(1.0 / straggler_rate_hz)
                    )
            schedule = NodeFaultSchedule(tuple(crashes), tuple(stragglers))
            if not schedule.empty:
                nodes[node] = schedule
        return cls(nodes=nodes)

    def scaled(self, factor: float) -> "FaultPlan":
        """A copy with every interval's times multiplied by ``factor``."""
        check_positive("factor", factor)
        return FaultPlan(
            nodes={
                node: NodeFaultSchedule(
                    crashes=tuple(
                        CrashWindow(w.start_s * factor, w.end_s * factor)
                        for w in schedule.crashes
                    ),
                    stragglers=tuple(
                        replace(
                            e,
                            start_s=e.start_s * factor,
                            end_s=e.end_s * factor,
                        )
                        for e in schedule.stragglers
                    ),
                )
                for node, schedule in self.nodes.items()
            }
        )


# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RetryPolicy:
    """What happens to a query caught on (or sent to) a crashed node.

    ``max_retries`` is the per-query budget of *re-dispatches*: 0 means
    naive — a query lost to a crash simply fails.  ``detect_delay_s`` models
    the time for the client/balancer to notice the loss before re-issuing;
    a dispatch to an already-down node is black-holed for the same delay.
    With ``hedge`` enabled, every re-dispatch issues a duplicate attempt to
    a second (healthy, distinct) node and the first completion wins.
    """

    max_retries: int = 0
    hedge: bool = False
    detect_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        check_non_negative("detect_delay_s", self.detect_delay_s)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (folded into capacity signatures)."""
        return {
            "max_retries": self.max_retries,
            "hedge": self.hedge,
            "detect_delay_s": self.detect_delay_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`."""
        return cls(
            max_retries=int(payload.get("max_retries", 0)),
            hedge=bool(payload.get("hedge", False)),
            detect_delay_s=float(payload.get("detect_delay_s", 0.005)),
        )


@dataclass
class NodeHealth:
    """One node's live state as the simulator maintains it mid-run.

    Mutable on purpose: the simulator updates the shared list in place on
    every fault transition and calls
    :meth:`LoadBalancer.observe_health <repro.serving.cluster.LoadBalancer.observe_health>`,
    so failure-aware balancers always read the current view.
    """

    up: bool = True
    slowdown: float = 1.0


@dataclass
class FaultStats:
    """Tally of everything fault injection did to one simulated run."""

    crashes: int = 0
    recoveries: int = 0
    crash_killed_in_flight: int = 0
    blackholed_dispatches: int = 0
    retries: int = 0
    hedged_dispatches: int = 0
    failed_queries: int = 0
