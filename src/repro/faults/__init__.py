"""Deterministic fault injection: crash/straggler plans and retry policies.

See :mod:`repro.faults.plan` for the data model and
``docs/resilience.md`` for the fault model, determinism guarantee, and
retry/hedging semantics.
"""

from repro.faults.plan import (
    CrashWindow,
    FaultEvent,
    FaultPlan,
    FaultStats,
    NodeFaultSchedule,
    NodeHealth,
    RetryPolicy,
    StragglerEpisode,
)

__all__ = [
    "CrashWindow",
    "FaultEvent",
    "FaultPlan",
    "FaultStats",
    "NodeFaultSchedule",
    "NodeHealth",
    "RetryPolicy",
    "StragglerEpisode",
]
