"""Shared runtime for parallel work: one worker pool, one capacity search.

``repro.runtime`` is the subsystem every parallel consumer in the repository
routes through:

* :mod:`repro.runtime.pool` — :class:`WorkerPool`, a lazily-forked,
  reusable, nesting-safe process pool; :func:`shared_pool` scopes one pool
  to a whole CLI invocation and :func:`pool_scope` is how library code picks
  it up.
* :mod:`repro.runtime.capacity` — :class:`CapacitySearch`, the unified
  single-server / fleet capacity search with completion-driven speculative
  bisection and schema-versioned warm-start replay, both decision-identical
  to the cold serial search; :func:`run_capacity_searches` interleaves many
  searches' evaluations over the one pool (plus the opt-in near-miss
  bracket-hint tier).
* :mod:`repro.runtime.remote` — :class:`RemoteWorkerPool`, the same
  futures surface executed by a fleet of worker processes on other hosts
  (``python -m repro.runtime.remote worker``), with heartbeat liveness,
  lease reassignment, and local-fallback degradation.

``repro.serving.capacity.find_max_qps``,
``repro.serving.cluster.find_cluster_max_qps``, the experiment
``SweepRunner``, and the figure drivers' replay fans are all thin layers
over these two primitives.
"""

from repro.runtime.pool import (
    Future,
    TaskContext,
    WorkerPool,
    active_pool,
    as_completed,
    in_worker,
    pool_forks,
    pool_scope,
    shared_pool,
)

__all__ = [
    "Future",
    "TaskContext",
    "WorkerPool",
    "active_pool",
    "as_completed",
    "in_worker",
    "pool_forks",
    "pool_scope",
    "shared_pool",
    "CapacitySearch",
    "CAPACITY_SCHEMA_VERSION",
    "run_capacity_searches",
    "RemoteWorkerPool",
]


def __getattr__(name):
    # CapacitySearch pulls in the serving stack; import it lazily so
    # `repro.runtime.pool` stays importable from anywhere (including the
    # serving modules themselves) without a cycle.  RemoteWorkerPool is
    # lazy for the same reason (its cache sync touches serving).
    if name in ("CapacitySearch", "CAPACITY_SCHEMA_VERSION", "run_capacity_searches"):
        from repro.runtime import capacity

        return getattr(capacity, name)
    if name == "RemoteWorkerPool":
        from repro.runtime.remote import RemoteWorkerPool

        return RemoteWorkerPool
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
