"""Distributed sweep execution: a remote worker fleet behind ``WorkerPool``.

The paper's production-scale grids (figure 13's policy × fleet × SLA
sweeps) are embarrassingly parallel across *searches*, and every driver in
this repository already funnels that parallelism through one surface:
``WorkerPool.submit`` / :func:`repro.runtime.pool.as_completed`.  This
module supplies a second executor behind that same surface, so a sweep can
be drained by worker processes on other machines with zero call-site
changes:

* **worker** — ``python -m repro.runtime.remote worker --port 9000`` starts
  a worker that listens for a coordinator, pulls pickled tasks over a
  length-prefixed TCP protocol, runs them on a local (self-healing)
  :class:`~repro.runtime.pool.WorkerPool`, and streams results back;
* **coordinator** — :class:`RemoteWorkerPool` dials a list of
  ``host:port`` workers and is a drop-in :class:`WorkerPool`: the capacity
  searches, the sweep runner, and the figure drivers submit into it exactly
  as they would into a forked pool.

Fault tolerance is the substance, not an add-on.  Liveness is tracked per
link by heartbeats; a worker that goes silent past the configured detect
delay is marked *suspect* and every task it holds a lease on is reassigned
— with the pool's deterministic seed-derived backoff and the same
``max_task_retries`` budget and :class:`~repro.runtime.pool.WorkerCrashError`
quarantine semantics as local crash recovery.  Task ids are idempotent: if
a presumed-dead worker later delivers the result of a reassigned task, the
duplicate is discarded (and counted), never double-counted.  Every blocking
socket operation carries an explicit timeout, and a coordinator that loses
*all* of its workers degrades to local inline execution — recorded in
``stats["local_fallbacks"]`` — rather than hanging.

Workers additionally piggy-back the :class:`~repro.serving.capacity.
CapacityCache` entries their tasks stored onto each result frame, so a
fleet of machines shares one warm-start cache without a network
filesystem; corrupt or conflicting entries are tolerated and counted
(:func:`repro.serving.capacity.apply_synced_entries`).

Because the same deterministic task functions run wherever the task lands
— remote host, reassigned host, or coordinator fallback — a sweep drained
by this executor is bit-identical to the serial run even when a worker is
SIGKILL'd mid-task (asserted in ``tests/test_runtime_remote.py``).

The wire format is pickled Python objects.  Pickle executes code on load:
run this only on a trusted network segment between machines you control,
exactly like ``multiprocessing``'s own socket transports.
"""

from __future__ import annotations

import argparse
import os
import pickle
import queue
import select
import socket
import struct
import sys
import threading
import time
from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.runtime.pool import (
    Future,
    TaskContext,
    WorkerCrashError,
    WorkerPool,
    _run_contextual_task,
    _TaskRecord,
    in_worker,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.serving.capacity import CapacityCache

#: Bumped when the wire format changes; hello/welcome frames carry it and a
#: mismatch ends the handshake instead of corrupting a run later.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame.  Warmed search contexts measure a few MiB;
#: anything near this bound is a corrupted length prefix, not a real task.
MAX_FRAME_BYTES = 256 * 1024 * 1024

DEFAULT_IO_TIMEOUT_S = 30.0
DEFAULT_CONNECT_TIMEOUT_S = 5.0
#: Detect delay: how long a link may stay silent before its leases move.
DEFAULT_LIVENESS_TIMEOUT_S = 5.0

#: How long receive loops block before re-checking liveness and shutdown
#: flags; bounds both failure-detection latency jitter and close() latency.
_POLL_INTERVAL_S = 0.1

_RECV_CHUNK = 1 << 16


class ProtocolError(RuntimeError):
    """The peer sent something that is not a valid protocol frame."""


class ConnectionClosed(ProtocolError):
    """The peer closed its end of the connection (EOF mid-stream)."""


class RemoteTaskError(RuntimeError):
    """A remote task's result (or its exception) could not be shipped back."""


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #


def send_frame(sock: socket.socket, message: Dict[str, Any], timeout_s: float) -> None:
    """Write one length-prefixed pickled message with an explicit timeout."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    sock.settimeout(timeout_s)
    sock.sendall(struct.pack(">I", len(payload)) + payload)


class _FrameReader:
    """Incremental frame parser over one socket.

    ``poll`` returns one complete message, or ``None`` if no complete frame
    arrived within the timeout — partial bytes stay buffered, so a frame
    split across many segments is reassembled over successive polls without
    ever blocking past the deadline.
    """

    __slots__ = ("_sock", "_buffer")

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = bytearray()

    def _take_frame(self) -> Optional[Dict[str, Any]]:
        if len(self._buffer) < 4:
            return None
        (length,) = struct.unpack_from(">I", self._buffer, 0)
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        if len(self._buffer) < 4 + length:
            return None
        payload = bytes(self._buffer[4 : 4 + length])
        del self._buffer[: 4 + length]
        message = pickle.loads(payload)
        if not isinstance(message, dict):
            raise ProtocolError(
                f"frame payload must be a message dict, got {type(message).__name__}"
            )
        return message

    def poll(self, timeout_s: float) -> Optional[Dict[str, Any]]:
        """One message, or None on timeout; raises :class:`ConnectionClosed`
        on EOF and :class:`ProtocolError` on garbage."""
        deadline = time.monotonic() + timeout_s
        while True:
            frame = self._take_frame()
            if frame is not None:
                return frame
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            # Wait for readability with select, not the socket timeout: the
            # timeout is shared state on the fd, and a concurrent
            # ``send_frame`` (heartbeats, task dispatch) rewriting it must
            # not stretch this recv past the poll deadline.
            try:
                readable, _, _ = select.select([self._sock], [], [], remaining)
            except (OSError, ValueError) as error:
                raise ConnectionClosed(f"socket unusable: {error}") from None
            if not readable:
                return None
            self._sock.settimeout(max(remaining, 0.001))
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                return None
            if not chunk:
                raise ConnectionClosed("peer closed the connection")
            self._buffer.extend(chunk)


def parse_worker_addresses(spec: str) -> List[Tuple[str, int]]:
    """Parse a ``host:port,host:port,...`` CLI spec into address tuples."""
    addresses: List[Tuple[str, int]] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        host, sep, port_text = chunk.rpartition(":")
        if not sep or not host:
            raise ValueError(f"worker address must be host:port, got {chunk!r}")
        addresses.append((host, int(port_text)))
    if not addresses:
        raise ValueError(f"no worker addresses in {spec!r}")
    return addresses


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #


def _run_remote_task(
    spec_bytes: bytes,
) -> Tuple[Any, List[Tuple[Dict[str, Any], float]]]:
    """Worker-process entry: run one shipped task, collecting cache stores.

    Runs inside the worker host's own (grand-child) pool process.  Every
    ``CapacityCache.store`` the task performs is recorded and returned with
    the value, so the coordinator can fold the entries into its cache —
    that is how a fleet shares one warm-start cache without a network
    filesystem.
    """
    from repro.serving.capacity import observe_cache_stores

    spec = pickle.loads(spec_bytes)
    kind = spec[0]
    with observe_cache_stores() as entries:
        if kind == "context":
            value = _run_contextual_task(spec[1])
        elif kind == "plain":
            _, fn, item = spec
            value = fn(item)
        else:
            raise ProtocolError(f"unknown task kind {kind!r}")
    return value, list(entries)


def _send_result(
    conn: socket.socket, task_id: int, future: Future, timeout_s: float
) -> None:
    """Ship one finished task home, degrading unpicklable outcomes to errors."""
    message: Dict[str, Any]
    try:
        value, entries = future.result(timeout=0)
    except BaseException as error:  # shipped to the coordinator, not raised here
        message = {"type": "result", "task_id": task_id, "ok": False, "error": error}
    else:
        message = {
            "type": "result",
            "task_id": task_id,
            "ok": True,
            "value": value,
            "cache_entries": entries,
        }
    try:
        send_frame(conn, message, timeout_s)
    except (pickle.PicklingError, AttributeError, TypeError) as error:
        fallback = {
            "type": "result",
            "task_id": task_id,
            "ok": False,
            "error": RemoteTaskError(f"result could not be pickled: {error!r}"),
        }
        send_frame(conn, fallback, timeout_s)


def _pool_warmup(_item: Any) -> None:
    """No-op task that forces the session pool to fork its processes."""
    return None


def _serve_session(conn: socket.socket, pool: WorkerPool, io_timeout_s: float) -> None:
    """Serve one coordinator for the lifetime of its connection.

    The session thread owns all socket IO (so heartbeats keep flowing while
    tasks run); a helper thread feeds tasks into a per-session local
    :class:`WorkerPool`, which supplies self-healing for crashes of the
    task processes on *this* host — the coordinator's lease machinery only
    has to cover the loss of the whole worker.  The pool arrives *already
    forked* (before this connection was accepted), so its task processes
    never inherit the session fd — a SIGKILL of this shell therefore
    delivers EOF to the coordinator immediately instead of leaving the
    socket propped open by orphaned children.
    """
    conn.settimeout(io_timeout_s)
    reader = _FrameReader(conn)
    hello = reader.poll(io_timeout_s)
    if hello is None or hello.get("type") != "hello":
        raise ProtocolError(f"expected hello, got {hello!r}")
    if hello.get("protocol") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol mismatch: coordinator speaks {hello.get('protocol')!r}, "
            f"worker speaks {PROTOCOL_VERSION}"
        )
    heartbeat_interval_s = max(0.02, float(hello.get("heartbeat_interval_s", 1.0)))
    send_frame(
        conn,
        {
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "worker_id": f"{socket.gethostname()}:{os.getpid()}",
            "slots": pool.max_workers,
            "pid": os.getpid(),
        },
        io_timeout_s,
    )
    inbox: "queue.Queue[Optional[Tuple[int, bytes]]]" = queue.Queue()
    pending: Dict[int, Future] = {}
    pending_lock = threading.Lock()

    def _submitter() -> None:
        while True:
            job = inbox.get()
            if job is None:
                return
            task_id, spec = job
            future = pool.submit(_run_remote_task, spec)
            with pending_lock:
                pending[task_id] = future

    submitter = threading.Thread(
        target=_submitter, daemon=True, name="remote-worker-submit"
    )
    submitter.start()
    last_beat = time.monotonic()
    try:
        while True:
            try:
                message = reader.poll(_POLL_INTERVAL_S)
            except ConnectionClosed:
                return  # the coordinator went away: this session is over
            if message is not None:
                kind = message.get("type")
                if kind == "task":
                    inbox.put((int(message["task_id"]), bytes(message["spec"])))
                elif kind == "shutdown":
                    return
                # unknown frame types are ignored for forward compatibility
            with pending_lock:
                done = [
                    (task_id, future)
                    for task_id, future in pending.items()
                    if future.done()
                ]
                for task_id, _ in done:
                    del pending[task_id]
            for task_id, future in done:
                _send_result(conn, task_id, future, io_timeout_s)
            now = time.monotonic()
            if now - last_beat >= heartbeat_interval_s:
                send_frame(conn, {"type": "heartbeat"}, io_timeout_s)
                last_beat = now
    finally:
        inbox.put(None)
        submitter.join(timeout=1.0)


def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    slots: int = 1,
    once: bool = False,
    io_timeout_s: float = DEFAULT_IO_TIMEOUT_S,
    accept_timeout_s: float = 0.5,
    on_listening: Optional[Callable[[int], None]] = None,
    stop: Optional[threading.Event] = None,
) -> int:
    """Run a worker: listen on ``host:port`` and serve coordinator sessions.

    ``port=0`` binds an ephemeral port, announced through ``on_listening``
    (the CLI prints it).  ``once`` exits after the first session — what the
    tests and the smoke example use so workers never outlive their run.
    Returns the number of sessions served.

    Each session gets a fresh :class:`WorkerPool`, *forked before its
    connection is accepted*: the pool's task processes must never inherit
    a session fd (they would keep the coordinator's socket open — and its
    failure detector blind — after this shell is SIGKILL'd), and a fresh
    pool per session keeps context-cache tokens from different
    coordinators (which can collide across hosts: tokens are
    ``(pid, counter)``) from ever sharing one worker cache.
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(8)
    listener.settimeout(accept_timeout_s)
    if on_listening is not None:
        on_listening(listener.getsockname()[1])
    sessions = 0
    pool: Optional[WorkerPool] = None
    try:
        while stop is None or not stop.is_set():
            if pool is None:
                pool = WorkerPool(max_workers=slots)
                pool.submit(_pool_warmup, None).result()  # fork before accept
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            try:
                _serve_session(conn, pool, io_timeout_s=io_timeout_s)
            except (OSError, ProtocolError, pickle.UnpicklingError, EOFError):
                pass  # a misbehaving coordinator ends its own session only
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
                pool.close()
                pool = None
            sessions += 1
            if once:
                break
    finally:
        if pool is not None:
            pool.close()
        listener.close()
    return sessions


# --------------------------------------------------------------------------- #
# Coordinator side
# --------------------------------------------------------------------------- #


class _RemoteRecord(_TaskRecord):
    """One submitted task plus the settle guard duplicate discard rides on."""

    __slots__ = ("settled",)

    def __init__(
        self,
        future: Future,
        fn: Callable[..., Any],
        item: Any,
        context: Optional[TaskContext],
        seq: int,
    ) -> None:
        super().__init__(future, fn, item, context, seq=seq)
        self.settled = False


class _WorkerLink:
    """Coordinator-side state for one connected worker."""

    __slots__ = (
        "index",
        "address",
        "sock",
        "reader",
        "worker_id",
        "slots",
        "send_lock",
        "inflight",
        "last_seen",
        "alive",
        "suspect",
        "thread",
    )

    def __init__(
        self,
        index: int,
        address: Tuple[str, int],
        sock: socket.socket,
        reader: _FrameReader,
        worker_id: str,
        slots: int,
    ) -> None:
        self.index = index
        self.address = address
        self.sock = sock
        self.reader = reader
        self.worker_id = worker_id
        self.slots = slots
        self.send_lock = threading.Lock()
        self.inflight: Dict[int, _RemoteRecord] = {}
        self.last_seen = time.monotonic()
        self.alive = True  # socket believed usable
        self.suspect = False  # heartbeat overdue; leases reassigned
        self.thread: Optional[threading.Thread] = None


class RemoteWorkerPool(WorkerPool):
    """A :class:`WorkerPool` whose workers live on other hosts.

    Dials each ``host:port`` in ``workers`` at construction; addresses that
    refuse or time out are tolerated and counted
    (``stats["connect_failures"]``).  ``max_workers`` becomes the fleet's
    total advertised slots, and because :attr:`spans_hosts` is set, budget
    planners skip the local-core clamp when sizing speculation against it.

    Failure semantics mirror the local pool's crash handling, lifted to
    host granularity: a silent link is *suspected* after
    ``liveness_timeout_s`` and a broken one declared dead; either way its
    in-flight leases are reassigned with the deterministic seed-derived
    backoff, each task burning one attempt of the same
    ``max_task_retries`` budget before quarantine with
    :class:`WorkerCrashError`.  Late results for reassigned task ids are
    discarded (``stats["duplicate_results"]``).  With zero live workers the
    pool runs tasks inline in the coordinator — recorded in
    ``stats["local_fallbacks"]`` — so a fleet-wide outage degrades a
    distributed sweep to a slow correct run, never a hang.

    ``cache_sync`` (a :class:`~repro.serving.capacity.CapacityCache` or a
    cache directory path) merges the warm-start entries each result frame
    piggy-backs home; conflicting or corrupt entries are kept out and
    counted rather than trusted.
    """

    spans_hosts = True

    def __init__(
        self,
        workers: Union[str, Iterable[Union[str, Tuple[str, int]]]],
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
        io_timeout_s: float = DEFAULT_IO_TIMEOUT_S,
        liveness_timeout_s: float = DEFAULT_LIVENESS_TIMEOUT_S,
        max_task_retries: int = 3,
        retry_backoff_s: float = 0.05,
        backoff_seed: int = 0,
        sleeper: Optional[Callable[[float], None]] = None,
        cache_sync: Optional[Union[str, "os.PathLike[str]", "CapacityCache"]] = None,
    ) -> None:
        super().__init__(
            max_workers=1,
            max_task_retries=max_task_retries,
            retry_backoff_s=retry_backoff_s,
            backoff_seed=backoff_seed,
            sleeper=sleeper,
        )
        self._connect_timeout_s = connect_timeout_s
        self._io_timeout_s = io_timeout_s
        self._liveness_timeout_s = liveness_timeout_s
        self._heartbeat_interval_s = max(0.02, liveness_timeout_s / 4.0)
        self._closed = False
        self._records: Dict[int, _RemoteRecord] = {}
        self._queue: Deque[_RemoteRecord] = deque()
        self._links: List[_WorkerLink] = []
        self._cache = self._resolve_cache(cache_sync)
        self._stats.update(
            {
                "remote_workers": 0,
                "connect_failures": 0,
                "worker_failures": 0,
                "lease_timeouts": 0,
                "lease_reassignments": 0,
                "suspect_recoveries": 0,
                "duplicate_results": 0,
                "local_fallbacks": 0,
                "cache_entries_applied": 0,
                "cache_conflicts": 0,
                "cache_rejected": 0,
            }
        )
        for index, address in enumerate(self._normalize_addresses(workers)):
            link = self._connect(index, address)
            if link is not None:
                self._links.append(link)
        self._stats["remote_workers"] = len(self._links)
        self._max_workers = max(1, sum(link.slots for link in self._links))
        for link in self._links:
            thread = threading.Thread(
                target=self._serve_link,
                args=(link,),
                daemon=True,
                name=f"remote-link-{link.index}",
            )
            link.thread = thread
            thread.start()

    @staticmethod
    def _normalize_addresses(
        workers: Union[str, Iterable[Union[str, Tuple[str, int]]]]
    ) -> List[Tuple[str, int]]:
        if isinstance(workers, str):
            return parse_worker_addresses(workers)
        addresses: List[Tuple[str, int]] = []
        for worker in workers:
            if isinstance(worker, str):
                addresses.extend(parse_worker_addresses(worker))
            else:
                host, port = worker
                addresses.append((str(host), int(port)))
        return addresses

    @staticmethod
    def _resolve_cache(
        cache_sync: Optional[Union[str, "os.PathLike[str]", "CapacityCache"]]
    ) -> Optional["CapacityCache"]:
        if cache_sync is None:
            return None
        if isinstance(cache_sync, (str, os.PathLike)):
            from repro.serving.capacity import CapacityCache

            return CapacityCache(cache_sync)
        return cache_sync

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #

    def _connect(self, index: int, address: Tuple[str, int]) -> Optional[_WorkerLink]:
        try:
            sock = socket.create_connection(address, timeout=self._connect_timeout_s)
        except OSError:
            with self._lock:
                self._stats["connect_failures"] += 1
            return None
        try:
            send_frame(
                sock,
                {
                    "type": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "heartbeat_interval_s": self._heartbeat_interval_s,
                },
                self._io_timeout_s,
            )
            reader = _FrameReader(sock)
            welcome = reader.poll(self._io_timeout_s)
            if (
                welcome is None
                or welcome.get("type") != "welcome"
                or welcome.get("protocol") != PROTOCOL_VERSION
            ):
                raise ProtocolError(f"bad welcome: {welcome!r}")
        except (OSError, ProtocolError, pickle.UnpicklingError, EOFError):
            with self._lock:
                self._stats["connect_failures"] += 1
            try:
                sock.close()
            except OSError:
                pass
            return None
        return _WorkerLink(
            index=index,
            address=address,
            sock=sock,
            reader=reader,
            worker_id=str(welcome.get("worker_id", f"{address[0]}:{address[1]}")),
            slots=max(1, int(welcome.get("slots", 1))),
        )

    @property
    def live_workers(self) -> int:
        """Links currently believed healthy (connected, heartbeating)."""
        with self._lock:
            return sum(1 for link in self._links if link.alive and not link.suspect)

    # ------------------------------------------------------------------ #
    # Receiving
    # ------------------------------------------------------------------ #

    def _serve_link(self, link: _WorkerLink) -> None:
        """Receiver thread: drain one link, enforcing heartbeat liveness."""
        try:
            while True:
                with self._lock:
                    if self._closed or not link.alive:
                        return
                try:
                    message = link.reader.poll(_POLL_INTERVAL_S)
                except (ConnectionClosed, ProtocolError, OSError) as error:
                    self._link_lost(link, error)
                    return
                now = time.monotonic()
                if message is None:
                    overdue = False
                    with self._lock:
                        overdue = (
                            link.alive
                            and not link.suspect
                            and now - link.last_seen > self._liveness_timeout_s
                        )
                    if overdue:
                        self._mark_suspect(link)
                    continue
                link.last_seen = now
                recovered = False
                with self._lock:
                    if link.suspect:
                        link.suspect = False
                        self._stats["suspect_recoveries"] += 1
                        recovered = True
                if recovered:
                    self._pump()
                kind = message.get("type")
                if kind == "result":
                    self._handle_result(link, message)
                # heartbeats only refresh last_seen; unknown types are ignored
        except BaseException as error:  # a receiver must never die silently
            self._link_lost(link, error)

    def _handle_result(self, link: _WorkerLink, message: Dict[str, Any]) -> None:
        task_id = int(message.get("task_id", -1))
        with self._lock:
            link.inflight.pop(task_id, None)
            record = self._records.get(task_id)
        entries = message.get("cache_entries") or ()
        if entries:
            self._apply_cache_entries(entries)
        if record is None:
            with self._lock:
                self._stats["duplicate_results"] += 1
        elif bool(message.get("ok")):
            if not self._settle_value(record, message.get("value")):
                with self._lock:
                    self._stats["duplicate_results"] += 1
        else:
            error = message.get("error")
            if not isinstance(error, BaseException):
                error = RemoteTaskError(f"malformed error from worker: {error!r}")
            if not self._settle_error(record, error):
                with self._lock:
                    self._stats["duplicate_results"] += 1
        self._pump()

    def _apply_cache_entries(self, entries: Iterable[Any]) -> None:
        if self._cache is None:
            return
        from repro.serving.capacity import apply_synced_entries

        merged = apply_synced_entries(self._cache, entries)
        with self._lock:
            self._stats["cache_entries_applied"] += merged["applied"]
            self._stats["cache_conflicts"] += merged["conflicts"]
            self._stats["cache_rejected"] += merged["rejected"]

    # ------------------------------------------------------------------ #
    # Failure handling
    # ------------------------------------------------------------------ #

    def _mark_suspect(self, link: _WorkerLink) -> None:
        """Heartbeat overdue: reassign the link's leases, keep listening."""
        with self._lock:
            if self._closed or not link.alive or link.suspect:
                return
            link.suspect = True
            self._stats["lease_timeouts"] += 1
            stranded = list(link.inflight.values())
            link.inflight.clear()
        self._reassign(stranded)
        self._pump()

    def _link_lost(self, link: _WorkerLink, error: Optional[BaseException]) -> None:
        """The link is unusable (EOF, reset, garbage): declare the host dead."""
        with self._lock:
            if not link.alive:
                return
            link.alive = False
            closed = self._closed
            if not closed:
                # A link torn down by close() is a shutdown, not a failure.
                self._stats["worker_failures"] += 1
                self._stats["worker_crashes"] += 1
            stranded = list(link.inflight.values())
            link.inflight.clear()
        try:
            link.sock.close()
        except OSError:
            pass
        if closed:
            return
        self._reassign(stranded)
        self._pump()

    def _reassign(self, records: List[_RemoteRecord]) -> None:
        """Move stranded leases to another worker, budget and backoff applied."""
        for record in records:
            record.attempts += 1
            with self._lock:
                quarantine = record.attempts > self._max_task_retries
                if quarantine:
                    self._stats["quarantined"] += 1
                else:
                    self._stats["lease_reassignments"] += 1
                    self._stats["retries"] += 1
            if quarantine:
                self._settle_error(
                    record,
                    WorkerCrashError(
                        f"task {record.item!r} lost its worker host "
                        f"{record.attempts} times; quarantined"
                    ),
                )
                continue
            delay = self._backoff_delay(record.seq, record.attempts)
            if delay > 0:
                self._sleeper(delay)
            self._place(record)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _try_dispatch(self, record: _RemoteRecord) -> str:
        """Try to put ``record`` on a live worker: 'sent', 'busy', or 'dead'.

        'sent' also covers a send that failed en route — the failure path
        (link loss or an unpicklable task) re-routes or settles the record
        itself, so the caller never sees it again either way.
        """
        with self._lock:
            live = [link for link in self._links if link.alive and not link.suspect]
            if not live:
                return "dead"
            open_links = [link for link in live if len(link.inflight) < link.slots]
            if not open_links:
                return "busy"
            link = min(open_links, key=lambda lnk: (len(lnk.inflight), lnk.index))
            link.inflight[record.seq] = record
        self._send_task(link, record)
        return "sent"

    def _send_task(self, link: _WorkerLink, record: _RemoteRecord) -> None:
        if record.context is not None:
            spec: Tuple[Any, ...] = (
                "context",
                record.context.pack(record.fn, record.item),
            )
        else:
            spec = ("plain", record.fn, record.item)
        try:
            payload = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, AttributeError, TypeError) as error:
            with self._lock:
                link.inflight.pop(record.seq, None)
            self._settle_error(record, error)  # a task bug, not a link failure
            return
        message = {"type": "task", "task_id": record.seq, "spec": payload}
        try:
            with link.send_lock:
                send_frame(link.sock, message, self._io_timeout_s)
        except OSError as error:
            self._link_lost(link, error)
            with self._lock:
                orphan = link.inflight.pop(record.seq, None)
            if orphan is not None:
                # _link_lost raced past this record (or was a no-op because
                # another thread already declared the link dead): it is
                # still ours to recover.
                self._reassign([record])

    def _place(self, record: _RemoteRecord) -> None:
        outcome = self._try_dispatch(record)
        if outcome == "busy":
            with self._lock:
                self._queue.append(record)
        elif outcome == "dead":
            self._run_local(record)

    def _pump(self) -> None:
        """Drain queued tasks into whatever capacity exists right now."""
        while True:
            with self._lock:
                if not self._queue:
                    return
                record = self._queue.popleft()
            outcome = self._try_dispatch(record)
            if outcome == "busy":
                with self._lock:
                    self._queue.appendleft(record)
                return
            if outcome == "dead":
                self._run_local(record)

    def _run_local(self, record: _RemoteRecord) -> None:
        """Zero live workers: run inline so the sweep completes, not hangs."""
        with self._lock:
            self._stats["local_fallbacks"] += 1
        try:
            if record.context is not None:
                value = record.fn(record.context.build(), record.item)
            else:
                value = record.fn(record.item)
        except BaseException as error:  # delivered at .result(), like serial
            self._settle_error(record, error)
        else:
            self._settle_value(record, value)

    # ------------------------------------------------------------------ #
    # Settling (idempotent: first completion wins, duplicates discard)
    # ------------------------------------------------------------------ #

    def _settle_value(self, record: _RemoteRecord, value: Any) -> bool:
        with self._lock:
            if record.settled:
                return False
            record.settled = True
            self._stats["completed"] += 1
        record.future._resolve(value)
        return True

    def _settle_error(self, record: _RemoteRecord, error: BaseException) -> bool:
        with self._lock:
            if record.settled:
                return False
            record.settled = True
        record.future._reject(error)
        return True

    # ------------------------------------------------------------------ #
    # WorkerPool surface
    # ------------------------------------------------------------------ #

    def submit(
        self,
        fn: Callable[..., Any],
        item: Any,
        context: Optional[TaskContext] = None,
    ) -> Future:
        """Dispatch one task to the fleet and return its :class:`Future`.

        Identical contract to :meth:`WorkerPool.submit`; the task runs on
        the least-loaded live worker with a free slot, queues when the
        fleet is saturated, and runs inline when no live worker exists.
        """
        if self._closed:
            raise RuntimeError("RemoteWorkerPool is closed")
        if in_worker():
            # Nested inside a pool worker: forking (and remote dispatch
            # from a worker) is forbidden; the base inline path applies.
            return super().submit(fn, item, context=context)
        future = Future(item)
        with self._lock:
            self._stats["submitted"] += 1
            seq = self._stats["submitted"]
            record = _RemoteRecord(future, fn, item, context, seq=seq)
            self._records[seq] = record
        self._place(record)
        return future

    @property
    def parallelism(self) -> int:
        """Effective width: never 1 outside a worker, so batch helpers like
        :meth:`WorkerPool.map` always route through :meth:`submit` — even a
        one-slot or currently-dead fleet must get remote dispatch, lease
        recovery, and the local-fallback accounting, not a silent inline
        loop."""
        return 1 if in_worker() else max(2, self._max_workers)

    @property
    def forked(self) -> bool:
        """Whether remote resources are held (any worker link connected)."""
        return bool(self._links) or super().forked

    def close(self) -> None:
        """Shut the fleet down: send shutdowns, close links, settle strays."""
        with self._lock:
            already = self._closed
            self._closed = True
            links = list(self._links)
            self._queue.clear()
            unsettled = [
                record for record in self._records.values() if not record.settled
            ]
        if already:
            return
        for link in links:
            try:
                with link.send_lock:
                    send_frame(
                        link.sock,
                        {"type": "shutdown"},
                        min(1.0, self._io_timeout_s),
                    )
            except OSError:
                pass  # the worker is gone; nothing left to shut down
            try:
                link.sock.close()
            except OSError:
                pass
        for link in links:
            if link.thread is not None:
                link.thread.join(timeout=2.0)
        for record in unsettled:
            # A consumer that closes with results unclaimed gets a loud
            # failure at .result() instead of a future that never resolves.
            self._settle_error(
                record,
                RuntimeError(
                    f"RemoteWorkerPool closed with task {record.item!r} unresolved"
                ),
            )
        super().close()

    def __repr__(self) -> str:
        return (
            f"RemoteWorkerPool(workers={len(self._links)}, "
            f"slots={self._max_workers}, live={self.live_workers})"
        )


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.runtime.remote worker`` — run one worker host."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.remote",
        description="Remote execution endpoints for distributed sweeps.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    worker = commands.add_parser(
        "worker", help="serve tasks for a RemoteWorkerPool coordinator"
    )
    worker.add_argument("--host", default="127.0.0.1", help="bind address")
    worker.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral, announced)"
    )
    worker.add_argument(
        "--slots", type=int, default=1, help="concurrent tasks this host runs"
    )
    worker.add_argument(
        "--once", action="store_true", help="exit after the first coordinator session"
    )
    worker.add_argument(
        "--io-timeout-s",
        type=float,
        default=DEFAULT_IO_TIMEOUT_S,
        help="timeout applied to every blocking socket operation",
    )
    args = parser.parse_args(argv)
    # Lets task code (and tests) detect it runs under a remote worker shell.
    os.environ["REPRO_REMOTE_WORKER"] = "1"

    def _announce(port: int) -> None:
        print(f"remote-worker listening {port}", flush=True)

    serve_worker(
        host=args.host,
        port=args.port,
        slots=args.slots,
        once=args.once,
        io_timeout_s=args.io_timeout_s,
        on_listening=_announce,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main(sys.argv[1:]))
