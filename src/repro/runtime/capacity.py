"""Unified capacity search: one entry point for single-server and fleet QPS.

The paper's headline figures all reduce to the same question — the largest
offered load whose p95 latency stays inside the SLA — asked of either one
server or a fleet.  Historically the two searches lived in different modules
with different capabilities: only the fleet search had speculative parallel
bisection and warm-started brackets.  :class:`CapacitySearch` merges them:

* ``CapacitySearch.for_server(...)`` and ``CapacitySearch.for_fleet(...)``
  describe the search; :meth:`CapacitySearch.run` executes it;
* with ``jobs > 1`` the bisection's candidate rates are evaluated
  speculatively on the invocation's shared :class:`~repro.runtime.pool.WorkerPool`
  (:func:`~repro.serving.capacity.bisect_max_qps_batched`), returning a
  result **identical** to the serial search — evaluations are deterministic
  functions of the rate, so speculation only buys wall-clock time;
* ``warm_start_cache`` consults a :class:`~repro.serving.capacity.CapacityCache`
  under a schema-versioned signature covering the engines, fleet shape,
  SLA, workload and trace seed, and search fidelity.  Because the signature
  pins everything the decision tree depends on, a cache hit *is* the value
  the cold serial search would compute: the search verifies it with a single
  evaluation at the cached rate and returns — bit-identical to the cold run,
  an order of magnitude cheaper.  Bump :data:`CAPACITY_SCHEMA_VERSION`
  whenever the search semantics change; old entries then miss by
  construction instead of replaying stale answers.

``repro.serving.capacity.find_max_qps`` and
``repro.serving.cluster.find_cluster_max_qps`` are thin wrappers over this
class, so every consumer — figure drivers, tuners, sweeps — shares one
search implementation and one pool.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.execution.engine import EnginePair
from repro.queries.generator import LoadGenerator
from repro.runtime.pool import TaskContext, WorkerPool, pool_scope
from repro.serving.capacity import (
    CapacityCache,
    CapacityResult,
    bisect_max_qps,
    bisect_max_qps_batched,
    estimate_upper_bound_qps,
    measurement_queries,
    offload_size_stats,
)
from repro.serving.cluster import (
    ClusterServer,
    ClusterSimulator,
    LoadBalancer,
    estimate_fleet_upper_bound_qps,
    warm_latency_tables,
)
from repro.serving.simulator import ServingConfig, ServingSimulator, pause_gc
from repro.utils.validation import check_positive

#: Version of the warm-start signature schema.  Folded into every signature,
#: so entries written under a different schema can never be replayed; bump it
#: whenever the search semantics or the signature's coverage change.
CAPACITY_SCHEMA_VERSION = 2


def _component_signature(component: Any) -> Dict[str, Any]:
    """Type name plus instance parameters of a workload component.

    Two distributions (or arrival processes) of the same class but different
    parameters must not collide in the warm-start cache — a stale hint from
    a different workload would replay a wrong capacity.  Raises for
    components whose state is not plain data; the caller treats that as
    "cannot sign, skip caching".
    """
    return {
        "type": type(component).__name__,
        "params": dict(sorted(vars(component).items())),
    }


def _platform_signature(platform: Any) -> Any:
    """Full parameters of a hardware platform, not just its name.

    The ablation drivers build modified platforms that *keep* the stock name
    (e.g. Broadwell with the LLC contention slope zeroed); signing only the
    name would collide their searches with the stock platform's and replay
    the wrong capacity.  Platforms are frozen dataclasses of plain numbers,
    so their full field dict is canonical; anything else falls back to the
    name and relies on the serialisability probe to reject leftovers.
    """
    if dataclasses.is_dataclass(platform):
        return dataclasses.asdict(platform)
    return platform.name


def _server_signature(server: ClusterServer) -> Dict[str, Any]:
    """Canonical description of one server: engines plus scheduling config."""
    return {
        "model": server.engines.cpu.model.name,
        "cpu": _platform_signature(server.engines.cpu.platform),
        "gpu": (
            _platform_signature(server.engines.gpu.platform)
            if server.engines.gpu is not None
            else None
        ),
        "batch_size": server.config.batch_size,
        "num_cores": server.config.num_cores,
        # Scaled nodes with different speed factors are different fleets; a
        # collision would replay the wrong search's capacity.
        "speed_factor": getattr(server.engines.cpu, "speed_factor", 1.0),
        "offload_threshold": server.config.offload_threshold,
        "warmup_fraction": server.config.warmup_fraction,
    }


# --------------------------------------------------------------------------- #
# Worker-side evaluation (also the serial path, via TaskContext.build)
# --------------------------------------------------------------------------- #


def _evaluator_state(
    simulator: Any,
    sla_latency_s: float,
    num_queries: int,
    max_queries: int,
    load_generator: LoadGenerator,
) -> Dict[str, Any]:
    """The state dict :func:`_evaluate_rate` consumes — defined in one place
    so the serial/replay path (seeded with the parent's simulator) and the
    pool-worker path (:func:`_build_evaluator`) can never drift apart."""
    return {
        "simulator": simulator,
        "sla_latency_s": sla_latency_s,
        "num_queries": num_queries,
        "max_queries": max_queries,
        "load_generator": load_generator,
    }


def _build_evaluator(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Construct the simulator and stream parameters one evaluator needs.

    Runs once per pool worker (cached by context token); the serial path
    seeds the same state shape with the parent's validated simulator, so
    both paths evaluate rates through identical state.
    """
    if payload["kind"] == "fleet":
        simulator: Any = ClusterSimulator(
            payload["servers"],
            balancer=payload["balancer"],
            warmup_fraction=payload["warmup_fraction"],
            balancer_seed=payload["balancer_seed"],
        )
    else:
        simulator = ServingSimulator(payload["engines"], payload["config"])
    return _evaluator_state(
        simulator,
        payload["sla_latency_s"],
        payload["num_queries"],
        payload["max_queries"],
        payload["load_generator"],
    )


def _evaluate_rate(state: Dict[str, Any], rate_qps: float) -> Any:
    """Run the simulator at one offered load and return its result."""
    generator = state["load_generator"].with_rate(rate_qps)
    count = measurement_queries(
        rate_qps, state["sla_latency_s"], state["num_queries"], state["max_queries"]
    )
    with pause_gc():  # query generation is allocation-heavy, cycle-free
        return state["simulator"].run(generator.generate(count))


# --------------------------------------------------------------------------- #
# The unified search
# --------------------------------------------------------------------------- #


class CapacitySearch:
    """One latency-bounded capacity search over a server or a fleet.

    Build with :meth:`for_server` or :meth:`for_fleet`, then :meth:`run`.
    The parallel path (``jobs > 1``) and the warm-start replay are both
    decision-identical to a cold serial search — callers choose them purely
    on wall-clock grounds.
    """

    def __init__(
        self,
        *,
        kind: str,
        sla_latency_s: float,
        load_generator: LoadGenerator,
        num_queries: int,
        iterations: int,
        headroom: float,
        max_queries: int,
        engines: Optional[EnginePair] = None,
        config: Optional[ServingConfig] = None,
        servers: Optional[Sequence[ClusterServer]] = None,
        balancer: Union[str, LoadBalancer, None] = None,
        warmup_fraction: Optional[float] = None,
        balancer_seed: int = 0,
    ) -> None:
        check_positive("sla_latency_s", sla_latency_s)
        check_positive("num_queries", num_queries)
        check_positive("iterations", iterations)
        self._kind = kind
        self._sla_latency_s = sla_latency_s
        self._load_generator = load_generator
        self._num_queries = num_queries
        self._iterations = iterations
        self._headroom = headroom
        self._max_queries = max_queries
        self._engines = engines
        self._config = config
        self._servers = list(servers) if servers is not None else None
        self._balancer = balancer
        self._warmup_fraction = warmup_fraction
        self._balancer_seed = balancer_seed
        # Fail fast on an invalid fleet/config — in the parent, not mid-run
        # inside a worker.  The validated simulator is kept and reused as
        # the serial/replay evaluator, so a serial search builds it once.
        if kind == "fleet":
            assert self._servers is not None and balancer is not None
            self._local_simulator: Any = ClusterSimulator(
                self._servers,
                balancer=balancer,
                warmup_fraction=warmup_fraction,
                balancer_seed=balancer_seed,
            )
        else:
            assert engines is not None and config is not None
            self._local_simulator = ServingSimulator(engines, config)

    # ------------------------------------------------------------------ #

    @classmethod
    def for_server(
        cls,
        engines: EnginePair,
        config: ServingConfig,
        sla_latency_s: float,
        load_generator: LoadGenerator,
        *,
        num_queries: int = 800,
        iterations: int = 7,
        headroom: float = 1.3,
        max_queries: int = 8000,
    ) -> "CapacitySearch":
        """A single-server search (the :func:`find_max_qps` problem)."""
        return cls(
            kind="server",
            engines=engines,
            config=config,
            sla_latency_s=sla_latency_s,
            load_generator=load_generator,
            num_queries=num_queries,
            iterations=iterations,
            headroom=headroom,
            max_queries=max_queries,
        )

    @classmethod
    def for_fleet(
        cls,
        servers: Sequence[ClusterServer],
        balancer: Union[str, LoadBalancer],
        sla_latency_s: float,
        load_generator: LoadGenerator,
        *,
        num_queries: int = 600,
        iterations: int = 6,
        headroom: float = 1.3,
        max_queries: int = 8000,
        warmup_fraction: Optional[float] = None,
        balancer_seed: int = 0,
    ) -> "CapacitySearch":
        """A fleet search (the :func:`find_cluster_max_qps` problem)."""
        return cls(
            kind="fleet",
            servers=servers,
            balancer=balancer,
            sla_latency_s=sla_latency_s,
            load_generator=load_generator,
            num_queries=num_queries,
            iterations=iterations,
            headroom=headroom,
            max_queries=max_queries,
            warmup_fraction=warmup_fraction,
            balancer_seed=balancer_seed,
        )

    # ------------------------------------------------------------------ #

    @property
    def sla_latency_s(self) -> float:
        """The p95 target the search holds rates to."""
        return self._sla_latency_s

    def _policy_name(self) -> Optional[str]:
        if self._balancer is None:
            return None
        if isinstance(self._balancer, str):
            return self._balancer
        return self._balancer.name or type(self._balancer).__name__

    def _fleet(self) -> List[ClusterServer]:
        """The search's servers as a fleet (a single server is a fleet of one)."""
        if self._servers is not None:
            return self._servers
        return [ClusterServer(engines=self._engines, config=self._config)]

    def upper_bound_qps(self) -> float:
        """Optimistic analytic throughput bound bracketing the bisection."""
        if self._kind == "fleet":
            return estimate_fleet_upper_bound_qps(self._servers, self._load_generator)
        sizes = self._load_generator.sizes
        large_fraction, mean_large = offload_size_stats(
            sizes, self._config.offload_threshold
        )
        return estimate_upper_bound_qps(
            self._engines, self._config, sizes.mean(), large_fraction, mean_large
        )

    def signature(self) -> Optional[Dict[str, Any]]:
        """Schema-versioned canonical description of this search, or None.

        Covers everything the bisection's decision tree depends on: the
        fleet shape (engines, speed factors, scheduling configs), balancing
        policy and seed, SLA, workload components and trace seed, and the
        search fidelity knobs.  Returns None when any component cannot be
        described canonically (e.g. a custom balancer instance or a size
        distribution with unserialisable state), in which case warm-start
        caching is silently skipped.
        """
        try:
            signature: Dict[str, Any] = {
                "kind": "capacity-search",
                "schema": CAPACITY_SCHEMA_VERSION,
                "search": self._kind,
                "servers": [_server_signature(s) for s in self._fleet()],
                "policy": self._policy_name(),
                "sla_latency_s": self._sla_latency_s,
                "arrival": _component_signature(self._load_generator.arrival),
                "sizes": _component_signature(self._load_generator.sizes),
                "seed": self._load_generator.seed,
                "num_queries": self._num_queries,
                "iterations": self._iterations,
                "headroom": self._headroom,
                "max_queries": self._max_queries,
                "warmup_fraction": self._warmup_fraction,
                "balancer_seed": self._balancer_seed,
            }
            json.dumps(signature, sort_keys=True)  # probe serialisability
        except (TypeError, ValueError, AttributeError):
            return None
        return signature

    # ------------------------------------------------------------------ #

    def _payload(self) -> Dict[str, Any]:
        shared = {
            "sla_latency_s": self._sla_latency_s,
            "num_queries": self._num_queries,
            "max_queries": self._max_queries,
            "load_generator": self._load_generator,
        }
        if self._kind == "fleet":
            return {
                "kind": "fleet",
                "servers": self._servers,
                "balancer": self._balancer,
                "warmup_fraction": self._warmup_fraction,
                "balancer_seed": self._balancer_seed,
                **shared,
            }
        return {
            "kind": "server",
            "engines": self._engines,
            "config": self._config,
            **shared,
        }

    def run(
        self,
        jobs: int = 1,
        warm_start_cache: Union[CapacityCache, str, Path, None] = None,
        pool: Optional[WorkerPool] = None,
    ) -> CapacityResult:
        """Execute the search and return the best sustainable rate.

        ``jobs > 1`` evaluates each bisection round's speculative candidates
        on a worker pool — an explicitly passed ``pool``, else the
        invocation's shared pool (:func:`~repro.runtime.pool.shared_pool`),
        else a private pool closed before returning.  Inside a pool worker
        the search runs serially (nested pools are never forked).  The
        returned result is identical to the serial search's in all cases.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")

        cache: Optional[CapacityCache] = None
        signature: Optional[Dict[str, Any]] = None
        if warm_start_cache is not None:
            cache = (
                warm_start_cache
                if isinstance(warm_start_cache, CapacityCache)
                else CapacityCache(warm_start_cache)
            )
            signature = self.signature()

        # Serial/replay evaluations reuse the parent's validated simulator;
        # pool workers build their own (deterministic) copy from the payload.
        context = TaskContext(
            _build_evaluator,
            self._payload(),
            value=_evaluator_state(
                self._local_simulator,
                self._sla_latency_s,
                self._num_queries,
                self._max_queries,
                self._load_generator,
            ),
        )

        if cache is not None and signature is not None:
            hint = cache.load(signature)
            if hint is not None:
                # The signature pins every decision input, so the cached QPS
                # is exactly what a cold serial search would return; one
                # evaluation rebuilds its (deterministic) result object.
                replay = _evaluate_rate(context.build(), hint)
                if replay.acceptable(self._sla_latency_s):
                    return CapacityResult(
                        max_qps=hint,
                        sla_latency_s=self._sla_latency_s,
                        result=replay,
                    )
                # A hint the simulator no longer sustains is stale (e.g. a
                # foreign file dropped into the directory): search cold.

        upper = self._headroom * self.upper_bound_qps()
        with pool_scope(jobs, pool) as worker_pool:
            if jobs > 1 and worker_pool.parallelism > 1:
                # Pre-fill the engines' latency tables so freshly forked
                # workers inherit warm tables instead of each rebuilding
                # them lazily mid-evaluation.
                warm_latency_tables(
                    self._fleet(),
                    getattr(self._load_generator.sizes, "max_size", None),
                )
                lookahead = max(
                    1, (min(jobs, worker_pool.max_workers) + 1).bit_length() - 1
                )

                def evaluate_batch(rates: Sequence[float]) -> List[Any]:
                    return worker_pool.map(_evaluate_rate, rates, context=context)

                result = bisect_max_qps_batched(
                    evaluate_batch,
                    upper,
                    self._sla_latency_s,
                    self._iterations,
                    lookahead,
                )
            else:

                def evaluate(rate_qps: float) -> Any:
                    return _evaluate_rate(context.build(), rate_qps)

                result = bisect_max_qps(
                    evaluate, upper, self._sla_latency_s, self._iterations
                )

        if cache is not None and signature is not None and result.max_qps > 0:
            cache.store(signature, result.max_qps)
        return result
