"""Unified capacity search: one entry point for single-server and fleet QPS.

The paper's headline figures all reduce to the same question — the largest
offered load whose p95 latency stays inside the SLA — asked of either one
server or a fleet.  Historically the two searches lived in different modules
with different capabilities: only the fleet search had speculative parallel
bisection and warm-started brackets.  :class:`CapacitySearch` merges them:

* ``CapacitySearch.for_server(...)`` and ``CapacitySearch.for_fleet(...)``
  describe the search; :meth:`CapacitySearch.run` executes it;
* execution is **completion-driven**: the bisection's decision tree lives in
  a :class:`~repro.serving.capacity.BisectionMachine`, and with ``jobs > 1``
  up to ``jobs`` candidate rates stay in flight on the invocation's shared
  :class:`~repro.runtime.pool.WorkerPool` — each completion advances the
  tree immediately, invalidated speculation is cancelled/ignored, and the
  pipeline refills.  Evaluations are deterministic functions of the rate, so
  the result is **identical** to the serial search; speculation only buys
  wall-clock time (and is never wider than the host's cores);
* :func:`run_capacity_searches` drives *many* searches over the one pool
  concurrently — a sweep's searches interleave their evaluations, keeping
  the pool full even when a single bisection's lookahead cannot;
* ``warm_start_cache`` consults a :class:`~repro.serving.capacity.CapacityCache`
  under a schema-versioned signature covering the engines, fleet shape,
  SLA, workload and trace seed, and search fidelity.  Because the signature
  pins everything the decision tree depends on, a cache hit *is* the value
  the cold serial search would compute: the search verifies it with a single
  evaluation at the cached rate and returns — bit-identical to the cold run,
  an order of magnitude cheaper.  Bump :data:`CAPACITY_SCHEMA_VERSION`
  whenever the search semantics change; old entries then miss by
  construction instead of replaying stale answers;
* ``bracket_hints=True`` adds the opt-in second tier: on an exact miss,
  near-miss entries (same fleet and workload; adjacent SLA, batch size, or
  policy; scaled homogeneous fleet sizes) tighten the *initial bracket
  only*.  Hinted searches evaluate strictly fewer rates and converge to the
  same capacity within the cold search's bracket tolerance, but are not
  bit-identical — hence opt-in, with per-tier hit/miss counters on the
  cache.

``repro.serving.capacity.find_max_qps`` and
``repro.serving.cluster.find_cluster_max_qps`` are thin wrappers over this
class, so every consumer — figure drivers, tuners, sweeps — shares one
search implementation and one pool.

A complete (reduced-fidelity) single-server search, serial and cold:

>>> from repro.execution.engine import EnginePair, build_cpu_engine
>>> from repro.queries.generator import LoadGenerator
>>> from repro.serving.simulator import ServingConfig
>>> engines = EnginePair(cpu=build_cpu_engine("ncf", "broadwell"), gpu=None)
>>> search = CapacitySearch.for_server(
...     engines, ServingConfig(batch_size=128, num_cores=4),
...     sla_latency_s=0.05, load_generator=LoadGenerator(seed=7),
...     num_queries=120, iterations=4, max_queries=400)
>>> result = search.run()
>>> result.max_qps > 0 and result.result.acceptable(0.05)
True
>>> search.signature()["schema"] == CAPACITY_SCHEMA_VERSION
True

Re-running the identical search against a shared cache replays the answer
(one verifying evaluation from disk, zero from the in-process memo):

>>> import tempfile
>>> from repro.serving.capacity import CapacityCache
>>> with tempfile.TemporaryDirectory() as cache_dir:
...     cache = CapacityCache(cache_dir)
...     cold = search.run(warm_start_cache=cache)
...     memo = search.run(warm_start_cache=cache)
...     (memo.max_qps == cold.max_qps == result.max_qps, memo.evaluations)
(True, 0)
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union, cast

from repro.execution.engine import EnginePair
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.queries.generator import LoadGenerator
from repro.runtime.pool import (
    Future,
    TaskContext,
    WorkerPool,
    as_completed,
    pool_scope,
)
from repro.serving.capacity import (
    BisectionMachine,
    CapacityCache,
    CapacityResult,
    estimate_upper_bound_qps,
    measurement_queries,
    offload_size_stats,
    speculative_rates,
)
from repro.serving.cluster import (
    ClusterServer,
    ClusterSimulator,
    LoadBalancer,
    estimate_fleet_upper_bound_qps,
    warm_latency_tables,
)
from repro.serving.simulator import (
    CertainAcceptance,
    CertainRejection,
    ServingConfig,
    ServingSimulator,
    pause_gc,
)
from repro.utils.validation import check_positive

#: Version of the warm-start signature schema.  Folded into every signature,
#: so entries written under a different schema can never be replayed; bump it
#: whenever the search semantics or the signature's coverage change.
#: (v3: balancing policy and seed are normalised out of single-server fleet
#: signatures — with one server every policy is pass-through and the run is
#: event-identical, so policy variants of the same search now share entries.)
CAPACITY_SCHEMA_VERSION = 3

#: Over-capacity margins of the near-miss bracket probe, by donor-similarity
#: penalty: a hinted search probes ``hint * margin`` expecting rejection and
#: ``hint`` expecting acceptance, which brackets the boundary in two
#: evaluations whenever the donor capacity is within ``margin`` of this
#: search's.  Very near donors (an adjacent balancing policy on the same
#: fleet) warrant a tight bracket; farther ones (another SLA, batch size, or
#: a scaled homogeneous fleet size) a wider one that absorbs e.g. the
#: superlinear part of fleet scaling.  A wrong-sided probe only costs a
#: fallback into the cold phases.
BRACKET_HINT_MARGINS = ((1.5, 1.06), (9.5, 1.15), (float("inf"), 1.3))


def _hint_margin(penalty: float) -> float:
    """Probe margin for a hint donor at the given similarity penalty."""
    for threshold, margin in BRACKET_HINT_MARGINS:
        if penalty <= threshold:
            return margin
    return BRACKET_HINT_MARGINS[-1][1]


#: Sentinel for "signature not computed yet" (None is a valid signature
#: outcome, so it cannot double as the marker).
_UNCOMPUTED = object()


def _memo_key(
    signature: Dict[str, Any], search: "CapacitySearch", hinted: bool
) -> Dict[str, Any]:
    """In-process memo key: the signature *plus* presentation-only fields.

    Single-server fleets normalise the balancing policy out of the shared
    signature (any policy computes the identical run), which is safe for
    the replay tier — its verifying evaluation runs under the search's own
    policy and rebuilds the correctly-labelled result.  The memo tier
    returns a stored result object verbatim, so it must not cross policies:
    a least-outstanding result replayed for a power-of-two search would
    carry the wrong policy label even though every measured number matches.
    Hinted results get their own key for the same reason hinted disk
    entries do.
    """
    return {
        "signature": signature,
        "memo_policy": search._policy_name(),
        "memo_balancer_seed": search._balancer_seed,
        "memo_hinted": hinted,
    }


def _component_signature(component: Any) -> Dict[str, Any]:
    """Type name plus instance parameters of a workload component.

    Two distributions (or arrival processes) of the same class but different
    parameters must not collide in the warm-start cache — a stale hint from
    a different workload would replay a wrong capacity.  Raises for
    components whose state is not plain data; the caller treats that as
    "cannot sign, skip caching".
    """
    return {
        "type": type(component).__name__,
        "params": dict(sorted(vars(component).items())),
    }


def _platform_signature(platform: Any) -> Any:
    """Full parameters of a hardware platform, not just its name.

    The ablation drivers build modified platforms that *keep* the stock name
    (e.g. Broadwell with the LLC contention slope zeroed); signing only the
    name would collide their searches with the stock platform's and replay
    the wrong capacity.  Platforms are frozen dataclasses of plain numbers,
    so their full field dict is canonical; anything else falls back to the
    name and relies on the serialisability probe to reject leftovers.
    """
    if dataclasses.is_dataclass(platform):
        return dataclasses.asdict(platform)
    return platform.name


def _server_signature(server: ClusterServer) -> Dict[str, Any]:
    """Canonical description of one server: engines plus scheduling config."""
    return {
        "model": server.engines.cpu.model.name,
        "cpu": _platform_signature(server.engines.cpu.platform),
        "gpu": (
            _platform_signature(server.engines.gpu.platform)
            if server.engines.gpu is not None
            else None
        ),
        "batch_size": server.config.batch_size,
        "num_cores": server.config.num_cores,
        # Scaled nodes with different speed factors are different fleets; a
        # collision would replay the wrong search's capacity.
        "speed_factor": getattr(server.engines.cpu, "speed_factor", 1.0),
        "offload_threshold": server.config.offload_threshold,
        "warmup_fraction": server.config.warmup_fraction,
    }


# --------------------------------------------------------------------------- #
# Worker-side evaluation (also the serial path, via TaskContext.build)
# --------------------------------------------------------------------------- #


def _evaluator_state(
    simulator: Any,
    sla_latency_s: float,
    num_queries: int,
    max_queries: int,
    load_generator: LoadGenerator,
    accept_early: bool = False,
) -> Dict[str, Any]:
    """The state dict :func:`_evaluate_rate` consumes — defined in one place
    so the serial/replay path (seeded with the parent's simulator) and the
    pool-worker path (:func:`_build_evaluator`) can never drift apart."""
    return {
        "simulator": simulator,
        "sla_latency_s": sla_latency_s,
        "num_queries": num_queries,
        "max_queries": max_queries,
        "load_generator": load_generator,
        "accept_early": accept_early,
    }


def _build_evaluator(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Construct the simulator and stream parameters one evaluator needs.

    Runs once per pool worker (cached by context token); the serial path
    seeds the same state shape with the parent's validated simulator, so
    both paths evaluate rates through identical state.
    """
    if payload["kind"] == "fleet":
        simulator: Any = ClusterSimulator(
            payload["servers"],
            balancer=payload["balancer"],
            warmup_fraction=payload["warmup_fraction"],
            balancer_seed=payload["balancer_seed"],
            fault_plan=payload.get("fault_plan"),
            retry_policy=payload.get("retry_policy"),
            latency_stats=payload.get("latency_stats", "exact"),
        )
    else:
        simulator = ServingSimulator(
            payload["engines"],
            payload["config"],
            latency_stats=payload.get("latency_stats", "exact"),
        )
    return _evaluator_state(
        simulator,
        payload["sla_latency_s"],
        payload["num_queries"],
        payload["max_queries"],
        payload["load_generator"],
        payload.get("accept_early", False),
    )


def _evaluate_rate(state: Dict[str, Any], rate_qps: float, reject: bool = True) -> Any:
    """Run the simulator at one offered load and return its result.

    By default the SLA target arms the simulators' exact early-rejection
    exit: a run whose p95 provably cannot meet the target stops immediately
    with a :class:`~repro.serving.simulator.CertainRejection`
    (verdict-identical to the full run), while any run that meets the
    target always completes and returns the ordinary bit-identical result.
    Searches only ever report results of accepted evaluations, so early
    exits shorten discarded probe runs without changing a single reported
    number.  ``reject=False`` forces a run to completion — used when a
    search must *report* the measurement at a rejected rate (the
    unbracketed exit), where the early-exit stub has no statistics.

    With the search's opt-in ``accept_early``, the same call also arms the
    dual certain-acceptance exit, so accepted probes stop at their
    certificate and return a
    :class:`~repro.serving.simulator.CertainAcceptance` stub
    (verdict-identical again).  The search re-runs the single evaluation it
    reports through :meth:`_SearchExecution._full_result`, so reported
    results stay bit-identical to the accept-off search.
    """
    generator = state["load_generator"].with_rate(rate_qps)
    sla = state["sla_latency_s"]
    count = measurement_queries(rate_qps, sla, state["num_queries"], state["max_queries"])
    with pause_gc():  # query generation is allocation-heavy, cycle-free
        return state["simulator"].run(
            generator.generate(count),
            reject_above_sla_s=sla if reject else None,
            accept_within_sla_s=(
                sla if reject and state.get("accept_early") else None
            ),
        )


# --------------------------------------------------------------------------- #
# The unified search
# --------------------------------------------------------------------------- #


class CapacitySearch:
    """One latency-bounded capacity search over a server or a fleet.

    Build with :meth:`for_server` or :meth:`for_fleet`, then :meth:`run`.
    The parallel path (``jobs > 1``) and the warm-start replay are both
    decision-identical to a cold serial search — callers choose them purely
    on wall-clock grounds.
    """

    def __init__(
        self,
        *,
        kind: str,
        sla_latency_s: float,
        load_generator: LoadGenerator,
        num_queries: int,
        iterations: int,
        headroom: float,
        max_queries: int,
        engines: Optional[EnginePair] = None,
        config: Optional[ServingConfig] = None,
        servers: Optional[Sequence[ClusterServer]] = None,
        balancer: Union[str, LoadBalancer, None] = None,
        warmup_fraction: Optional[float] = None,
        balancer_seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        accept_early: bool = False,
        latency_stats: str = "exact",
    ) -> None:
        check_positive("sla_latency_s", sla_latency_s)
        check_positive("num_queries", num_queries)
        check_positive("iterations", iterations)
        if fault_plan is not None and fault_plan.is_empty():
            fault_plan = None  # the "no faults" sentinel, like the simulator
        if fault_plan is not None and kind != "fleet":
            raise ValueError("fault injection is only supported for fleet searches")
        self._kind = kind
        # accept_early arms the certain-acceptance exit on probe
        # evaluations.  Verdicts are identical to full runs, so the
        # bisection takes the same decisions and the reported result (one
        # re-run full evaluation) is bit-identical — which is also why the
        # flag stays *out* of the warm-start signature: both settings
        # compute the same answer and may share cache entries.
        self._accept_early = accept_early
        self._latency_stats = latency_stats
        self._sla_latency_s = sla_latency_s
        self._load_generator = load_generator
        self._num_queries = num_queries
        self._iterations = iterations
        self._headroom = headroom
        self._max_queries = max_queries
        self._engines = engines
        self._config = config
        self._servers = list(servers) if servers is not None else None
        self._balancer = balancer
        self._warmup_fraction = warmup_fraction
        self._balancer_seed = balancer_seed
        self._fault_plan = fault_plan
        self._retry_policy = retry_policy
        self._signature_memo: Any = _UNCOMPUTED
        # Fail fast on an invalid fleet/config — in the parent, not mid-run
        # inside a worker.  The validated simulator is kept and reused as
        # the serial/replay evaluator, so a serial search builds it once.
        if kind == "fleet":
            assert self._servers is not None and balancer is not None
            self._local_simulator: Any = ClusterSimulator(
                self._servers,
                balancer=balancer,
                warmup_fraction=warmup_fraction,
                balancer_seed=balancer_seed,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
                latency_stats=latency_stats,
            )
        else:
            assert engines is not None and config is not None
            self._local_simulator = ServingSimulator(
                engines, config, latency_stats=latency_stats
            )

    # ------------------------------------------------------------------ #

    @classmethod
    def for_server(
        cls,
        engines: EnginePair,
        config: ServingConfig,
        sla_latency_s: float,
        load_generator: LoadGenerator,
        *,
        num_queries: int = 800,
        iterations: int = 7,
        headroom: float = 1.3,
        max_queries: int = 8000,
        accept_early: bool = False,
        latency_stats: str = "exact",
    ) -> "CapacitySearch":
        """A single-server search (the :func:`find_max_qps` problem).

        ``accept_early`` opts probe evaluations into the certain-acceptance
        exit (same answer, less simulated work); ``latency_stats="sketch"``
        runs every evaluation with fixed-space latency statistics for
        million-query fidelity settings (approximate p95s — the measured
        capacity may differ from the exact mode's within the sketch's
        rank-error bound, so the two modes never share cache entries).
        """
        return cls(
            kind="server",
            engines=engines,
            config=config,
            sla_latency_s=sla_latency_s,
            load_generator=load_generator,
            num_queries=num_queries,
            iterations=iterations,
            headroom=headroom,
            max_queries=max_queries,
            accept_early=accept_early,
            latency_stats=latency_stats,
        )

    @classmethod
    def for_fleet(
        cls,
        servers: Sequence[ClusterServer],
        balancer: Union[str, LoadBalancer],
        sla_latency_s: float,
        load_generator: LoadGenerator,
        *,
        num_queries: int = 600,
        iterations: int = 6,
        headroom: float = 1.3,
        max_queries: int = 8000,
        warmup_fraction: Optional[float] = None,
        balancer_seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        accept_early: bool = False,
        latency_stats: str = "exact",
    ) -> "CapacitySearch":
        """A fleet search (the :func:`find_cluster_max_qps` problem).

        ``fault_plan`` / ``retry_policy`` make every candidate-rate
        evaluation run fault-injected, so the search measures capacity
        *under* the plan's crashes and stragglers.  ``accept_early`` /
        ``latency_stats`` as in :meth:`for_server` (fault-injected runs
        ignore the acceptance arming — see
        :meth:`~repro.serving.cluster.ClusterSimulator.run` — and reject
        sketch mode outright).
        """
        return cls(
            kind="fleet",
            servers=servers,
            balancer=balancer,
            sla_latency_s=sla_latency_s,
            load_generator=load_generator,
            num_queries=num_queries,
            iterations=iterations,
            headroom=headroom,
            max_queries=max_queries,
            warmup_fraction=warmup_fraction,
            balancer_seed=balancer_seed,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            accept_early=accept_early,
            latency_stats=latency_stats,
        )

    # ------------------------------------------------------------------ #

    @property
    def sla_latency_s(self) -> float:
        """The p95 target the search holds rates to."""
        return self._sla_latency_s

    def _policy_name(self) -> Optional[str]:
        if self._balancer is None:
            return None
        if isinstance(self._balancer, str):
            return self._balancer
        return self._balancer.name or type(self._balancer).__name__

    def _fleet(self) -> List[ClusterServer]:
        """The search's servers as a fleet (a single server is a fleet of one)."""
        if self._servers is not None:
            return self._servers
        assert self._engines is not None and self._config is not None
        return [ClusterServer(engines=self._engines, config=self._config)]

    def upper_bound_qps(self) -> float:
        """Optimistic analytic throughput bound bracketing the bisection."""
        if self._kind == "fleet":
            assert self._servers is not None
            return estimate_fleet_upper_bound_qps(self._servers, self._load_generator)
        assert self._engines is not None and self._config is not None
        sizes = self._load_generator.sizes
        large_fraction, mean_large = offload_size_stats(
            sizes, self._config.offload_threshold
        )
        return estimate_upper_bound_qps(
            self._engines, self._config, sizes.mean(), large_fraction, mean_large
        )

    def signature(self) -> Optional[Dict[str, Any]]:
        """Schema-versioned canonical description of this search, or None.

        Covers everything the bisection's decision tree depends on: the
        fleet shape (engines, speed factors, scheduling configs), balancing
        policy and seed, SLA, workload components and trace seed, and the
        search fidelity knobs.  Returns None when any component cannot be
        described canonically (e.g. a custom balancer instance or a size
        distribution with unserialisable state), in which case warm-start
        caching is silently skipped.  Computed once per search (the inputs
        are frozen at construction) and memoised.
        """
        if self._signature_memo is not _UNCOMPUTED:
            return self._signature_memo
        self._signature_memo = self._compute_signature()
        return self._signature_memo

    def _compute_signature(self) -> Optional[Dict[str, Any]]:
        fleet = self._fleet()
        # With a single server every balancing policy degenerates to
        # pass-through and the run is event-identical (the balancer can only
        # ever pick server 0), so policy and balancer seed are normalised
        # out: policy variants of the same one-server search share a cache
        # entry instead of recomputing identical answers.
        single = len(fleet) == 1
        try:
            signature: Dict[str, Any] = {
                "kind": "capacity-search",
                "schema": CAPACITY_SCHEMA_VERSION,
                "search": self._kind,
                "servers": [_server_signature(s) for s in fleet],
                "policy": None if single else self._policy_name(),
                "sla_latency_s": self._sla_latency_s,
                "arrival": _component_signature(self._load_generator.arrival),
                "sizes": _component_signature(self._load_generator.sizes),
                "seed": self._load_generator.seed,
                "num_queries": self._num_queries,
                "iterations": self._iterations,
                "headroom": self._headroom,
                "max_queries": self._max_queries,
                "warmup_fraction": self._warmup_fraction,
                "balancer_seed": 0 if single else self._balancer_seed,
            }
            # Folded in only when a plan is present: fault-free signatures
            # (and their digests) are byte-identical to pre-fault builds, so
            # existing cache entries stay valid without a schema bump.
            if self._fault_plan is not None:
                signature["fault"] = {
                    "plan": self._fault_plan.to_dict(),
                    "retry": (self._retry_policy or RetryPolicy()).to_dict(),
                }
            # Sketch-mode p95s are approximate, so sketch searches can land
            # on a different capacity than exact ones — they must not share
            # cache entries.  Folded in only when non-default, so exact
            # signatures (and their digests) stay byte-identical to older
            # builds.  accept_early is deliberately absent: it computes the
            # identical answer (see __init__).
            if self._latency_stats != "exact":
                signature["latency_stats"] = self._latency_stats
            json.dumps(signature, sort_keys=True)  # probe serialisability
        except (TypeError, ValueError, AttributeError):
            return None
        return signature

    # ------------------------------------------------------------------ #

    def _payload(self) -> Dict[str, Any]:
        shared = {
            "sla_latency_s": self._sla_latency_s,
            "num_queries": self._num_queries,
            "max_queries": self._max_queries,
            "load_generator": self._load_generator,
            "accept_early": self._accept_early,
            "latency_stats": self._latency_stats,
        }
        if self._kind == "fleet":
            return {
                "kind": "fleet",
                "servers": self._servers,
                "balancer": self._balancer,
                "warmup_fraction": self._warmup_fraction,
                "balancer_seed": self._balancer_seed,
                "fault_plan": self._fault_plan,
                "retry_policy": self._retry_policy,
                **shared,
            }
        return {
            "kind": "server",
            "engines": self._engines,
            "config": self._config,
            **shared,
        }

    def _context(self) -> TaskContext:
        """Evaluator context: serial/replay paths reuse the parent's validated
        simulator; pool workers build their own (deterministic) copy."""
        return TaskContext(
            _build_evaluator,
            self._payload(),
            value=_evaluator_state(
                self._local_simulator,
                self._sla_latency_s,
                self._num_queries,
                self._max_queries,
                self._load_generator,
                self._accept_early,
            ),
        )

    def default_upper_qps(self) -> float:
        """The cold search's initial bracket top (headroom × analytic bound)."""
        return self._headroom * self.upper_bound_qps()

    def convergence_width_qps(self) -> float:
        """Bracket width the cold search guarantees after its iterations.

        The cold bisection starts from ``[upper/64, upper]`` and halves the
        bracket ``iterations`` times; a hinted search uses this width as its
        early-stop tolerance, so it converges at least as tightly as the
        cold search would while evaluating fewer rates.
        """
        upper = self.default_upper_qps()
        return upper * (1.0 - 1.0 / 64.0) / (2.0 ** self._iterations)

    def run(
        self,
        jobs: int = 1,
        warm_start_cache: Union[CapacityCache, str, Path, None] = None,
        pool: Optional[WorkerPool] = None,
        bracket_hints: bool = False,
    ) -> CapacityResult:
        """Execute the search and return the best sustainable rate.

        ``jobs > 1`` keeps up to ``jobs`` speculative rate evaluations in
        flight on a worker pool — an explicitly passed ``pool``, else the
        invocation's shared pool (:func:`~repro.runtime.pool.shared_pool`),
        else a private pool closed before returning — reacting to each
        completion as it lands (never more in-flight work than the host has
        cores; inside a pool worker the search runs serially).  The returned
        result is identical to the serial search's in all cases.

        ``bracket_hints=True`` additionally lets a replay-exact cache miss
        consult near-miss entries (same fleet and workload, adjacent
        SLA/batch/policy, or a scaled homogeneous fleet size) to tighten the
        *initial bracket only*.  Hinted searches evaluate fewer rates and
        converge to the same capacity within the cold search's bracket
        tolerance (:meth:`convergence_width_qps`), but are not bit-identical
        to the cold search — which is why the tier is opt-in.
        """
        return run_capacity_searches(
            [self],
            jobs=jobs,
            warm_start_cache=warm_start_cache,
            pool=pool,
            bracket_hints=bracket_hints,
        )[0]


# --------------------------------------------------------------------------- #
# Completion-driven execution
# --------------------------------------------------------------------------- #


def _host_cores() -> int:
    """Physical parallelism available to this process (monkeypatchable)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _parallel_budget(jobs: int, pool: WorkerPool) -> int:
    """Concurrent evaluations worth keeping in flight.

    Speculative evaluations beyond the host's cores cannot run anywhere —
    they only add fork/IPC overhead and wasted work — so the budget is
    clamped by the physical core count as well as the pool width.  On a
    one-core host every search therefore degrades to the exact serial
    search, no matter how large a ``jobs`` budget the caller requested.

    Pools that span hosts (``pool.spans_hosts``, e.g. the remote worker
    fleet) are exempt from the core clamp: their workers run on *other*
    machines, so the local core count says nothing about how many
    evaluations can genuinely proceed at once.
    """
    width = min(jobs, pool.max_workers)
    if not getattr(pool, "spans_hosts", False):
        width = min(width, _host_cores())
    return max(1, width)


class _SearchExecution:
    """Live state of one capacity search inside the completion-driven driver.

    Tracks the search's decision machine (or pending replay verification),
    the results that have landed, and the futures still in flight.  The
    same object drives the serial path (inline, zero speculation) and the
    parallel path; only the scheduling around it differs.
    """

    __slots__ = (
        "search",
        "sla",
        "cache",
        "bracket_hints",
        "signature",
        "context",
        "machine",
        "replay_rate",
        "results",
        "pending",
        "evaluations",
        "cancelled",
        "result",
        "hinted",
    )

    def __init__(
        self,
        search: CapacitySearch,
        cache: Optional[CapacityCache],
        bracket_hints: bool,
    ) -> None:
        self.search = search
        self.sla = search.sla_latency_s
        self.cache = cache
        self.bracket_hints = bracket_hints
        self.signature = search.signature() if cache is not None else None
        self.context = search._context()
        self.machine: Optional[BisectionMachine] = None
        self.replay_rate: Optional[float] = None
        self.results: Dict[float, Any] = {}
        self.pending: Dict[float, Future] = {}
        self.evaluations = 0
        self.cancelled = 0
        self.result: Optional[CapacityResult] = None
        # Whether this search's answer came through the (approximate)
        # near-miss tier: such results are stored under a *tagged*
        # signature so they can never be replayed as the cold search's
        # bit-identical answer by a hints-off run.
        self.hinted = False
        if cache is not None and self.signature is not None:
            memo = cache.memo_load(self._memo_signature(hinted=False))
            if memo is not None:
                # This process already ran the identical search against this
                # cache instance: its full result replays without any
                # re-verification (it *is* the earlier result).
                self.result = dataclasses.replace(memo, evaluations=0)
                return
            hint = cache.load(self.signature)
            if hint is not None:
                # The signature pins every decision input, so the cached QPS
                # is exactly what a cold serial search would return; one
                # verifying evaluation rebuilds its deterministic result.
                self.replay_rate = hint
                return
            if bracket_hints:
                # A hints-on run may also replay a previously *hinted*
                # answer for this exact search — approximate in exactly the
                # way the caller already opted into.  These probes are not
                # the exact tier, so they do not touch its counters.
                memo = cache.memo_load(self._memo_signature(hinted=True))
                if memo is not None:
                    # Mark the answer as hint-derived: batch dedupe reads
                    # this flag to key follower results, which must never
                    # memo-replay for a hints-off run.
                    self.hinted = True
                    self.result = dataclasses.replace(memo, evaluations=0)
                    return
                hinted_entry = cache.load(self._hinted_signature(), count=False)
                if hinted_entry is not None:
                    cache.stats["hinted_replays"] += 1
                    self.replay_rate = hinted_entry
                    self.hinted = True
                    return
        self._build_machine()

    def _hinted_signature(self) -> Dict[str, Any]:
        """The tagged store key for answers found via bracket hints.

        Hinted searches converge within tolerance but are not bit-identical
        to the cold search, so their entries live under a distinct key:
        hints-off runs (which only consult the untagged signature) can
        never replay them, preserving the exact tier's guarantee.
        """
        assert self.signature is not None  # callers gate on a usable signature
        return {**self.signature, "hinted": True}

    def _memo_signature(self, hinted: bool) -> Dict[str, Any]:
        """This search's in-process memo key (see :func:`_memo_key`)."""
        assert self.signature is not None  # callers gate on a usable signature
        return _memo_key(self.signature, self.search, hinted)

    def _build_machine(self) -> None:
        # Reset on entry: a stale *hinted* replay that falls back here may
        # end up running fully cold, and a cold answer must be stored under
        # the untagged (bit-identical) keys.
        self.hinted = False
        search = self.search
        upper = search.default_upper_qps()
        if self.bracket_hints and self.cache is not None and self.signature is not None:
            hint = self.cache.near_hint(self.signature)
            if hint is not None:
                machine = BisectionMachine.hinted(
                    hint.max_qps,
                    upper,
                    search._iterations,
                    margin=_hint_margin(hint.penalty),
                    stop_width=search.convergence_width_qps(),
                )
                # A donor at or above the cold bracket top cannot tighten
                # anything; `hinted` fell back to the cold machine, and the
                # counters must say miss, not hit.
                self.hinted = machine.phase == "hint-upper"
                self.cache.count_hint(used=self.hinted)
                self.machine = machine
                return
            self.cache.count_hint(used=False)
        self.machine = BisectionMachine(upper, search._iterations)

    # ------------------------------------------------------------------ #

    def needed_rates(self, limit: int) -> List[float]:
        """Rates to keep in flight: the needed one first, speculation after."""
        if self.result is not None:
            return []
        if self.replay_rate is not None:
            return [self.replay_rate]
        assert self.machine is not None  # built whenever no replay/result short-circuits
        return speculative_rates(self.machine, limit)

    def absorb(self) -> None:
        """Advance the decision state as far as landed results allow."""
        while self.result is None:
            if self.replay_rate is not None:
                replay = self.results.get(self.replay_rate)
                if replay is None:
                    return
                if replay.acceptable(self.sla):
                    # The entry being replayed is already on disk; only the
                    # in-process memo needs populating.  With accept_early
                    # the verifying run may be a stub — _full_result re-runs
                    # it so the reported result carries full statistics.
                    self._finish(
                        self.replay_rate, self._full_result(self.replay_rate),
                        store=False,
                    )
                    return
                # A hint the simulator no longer sustains is stale (e.g. a
                # foreign file dropped into the directory): search cold.
                self.replay_rate = None
                self._build_machine()
                continue
            assert self.machine is not None  # no replay pending, so it was built
            rate = self.machine.next_rate()
            outcome = self.results.get(rate)
            if outcome is None:
                return
            self.machine.advance(outcome.acceptable(self.sla))
            if self.machine.done:
                if self.machine.result_rate is None:
                    self._finish(0.0, None)
                else:
                    self._finish(
                        self.machine.max_qps,
                        self._full_result(self.machine.result_rate),
                    )
                return

    def _full_result(self, rate: float) -> Any:
        """The complete simulation result backing ``CapacityResult.result``.

        Without ``accept_early``, accepted evaluations always ran to
        completion, so this is normally the recorded outcome.  The two
        exceptions are early-exit stubs: the unbracketed exit may report a
        *rejected* rate whose recorded outcome is a
        :class:`CertainRejection`, and with ``accept_early`` the reported
        accepted rate's outcome is a :class:`CertainAcceptance`.  Either
        way the serial contract attaches the full measurement at that rate:
        re-run that single evaluation without the early exits (a
        deterministic function of the rate, so bit-identical to what the
        exit-free search returned).
        """
        outcome = self.results[rate]
        if isinstance(outcome, (CertainRejection, CertainAcceptance)):
            outcome = _evaluate_rate(self.context.build(), rate, reject=False)
            self.results[rate] = outcome
            self.evaluations += 1
        return outcome

    def _finish(self, max_qps: float, outcome: Any, store: bool = True) -> None:
        self.result = CapacityResult(
            max_qps=max_qps,
            sla_latency_s=self.sla,
            result=outcome,
            evaluations=self.evaluations,
        )
        if self.cache is not None and self.signature is not None:
            if store and max_qps > 0:
                self.cache.store(
                    self._hinted_signature() if self.hinted else self.signature,
                    max_qps,
                )
            self.cache.memo_store(self._memo_signature(self.hinted), self.result)

    # ------------------------------------------------------------------ #

    def run_serial(self) -> None:
        """Drive this search to completion inline (the exact serial search)."""
        state = self.context.build()
        while self.result is None:
            rates = self.needed_rates(1)
            rate = rates[0]
            self.results[rate] = _evaluate_rate(state, rate)
            self.evaluations += 1
            self.absorb()


def run_capacity_searches(
    searches: Sequence[CapacitySearch],
    jobs: int = 1,
    warm_start_cache: Union[CapacityCache, str, Path, None] = None,
    pool: Optional[WorkerPool] = None,
    bracket_hints: bool = False,
) -> List[CapacityResult]:
    """Run several capacity searches concurrently over one worker pool.

    The cross-search form of :meth:`CapacitySearch.run`: every search's
    candidate evaluations are submitted into the same pool and each search's
    decision tree advances the moment one of *its* results lands, so the
    pool stays full even when a single bisection's lookahead is narrower
    than the worker budget (small fleets, tight brackets).  The in-flight
    budget is shared — needed rates of all searches first, deeper
    speculation after — and each search's outcome is exactly what
    :meth:`CapacitySearch.run` would return with the same options (searches
    are independent; with ``bracket_hints=True``, concurrent searches
    consult hints from the cache as they start, not from siblings still in
    flight).  Results are returned in input order.
    """
    searches = list(searches)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not searches:
        return []
    cache: Optional[CapacityCache] = None
    if warm_start_cache is not None:
        cache = (
            warm_start_cache
            if isinstance(warm_start_cache, CapacityCache)
            else CapacityCache(warm_start_cache)
        )

    # Dedupe identical searches within the batch by signature: fig15-style
    # grids submit e.g. the size-1 fleet once *per policy*, and schema v3
    # normalises the policy out of single-server signatures precisely
    # because those runs are event-identical.  Followers replay the
    # leader's answer after one verifying evaluation under their own
    # simulator, so each still gets a correctly-labelled result.
    leaders: Dict[str, int] = {}
    followers: Dict[int, int] = {}
    if len(searches) > 1:
        for index, search in enumerate(searches):
            signature = search.signature()
            if signature is None:
                continue
            digest = CapacityCache.digest(signature)
            if digest in leaders:
                followers[index] = leaders[digest]
            else:
                leaders[digest] = index

    with pool_scope(jobs, pool) as worker_pool:
        budget = _parallel_budget(jobs, worker_pool)
        executions = {
            index: _SearchExecution(search, cache, bracket_hints)
            for index, search in enumerate(searches)
            if index not in followers
        }
        pending_executions = [
            execution for execution in executions.values() if execution.result is None
        ]
        if budget > 1 and worker_pool.parallelism > 1 and pending_executions:
            # Pre-fill the engines' latency tables so freshly forked workers
            # inherit warm tables instead of each rebuilding them lazily.
            for execution in pending_executions:
                warm_latency_tables(
                    execution.search._fleet(),
                    getattr(execution.search._load_generator.sizes, "max_size", None),
                )
            _drive_completion(list(executions.values()), worker_pool, budget)
        else:
            for execution in pending_executions:
                execution.run_serial()

        results: List[Optional[CapacityResult]] = [None] * len(searches)
        for index, execution in executions.items():
            results[index] = execution.result
        for index, leader_index in followers.items():
            leader_execution = executions[followers[index]]
            leader_result = results[leader_index]
            assert leader_result is not None  # leaders run before followers replay
            results[index] = _replay_for_follower(
                searches[index],
                leader_result,
                leader_execution.hinted,
                cache,
                bracket_hints,
            )
    assert all(result is not None for result in results)
    return cast(List[CapacityResult], results)


def _replay_for_follower(
    search: CapacitySearch,
    leader: CapacityResult,
    leader_hinted: bool,
    cache: Optional[CapacityCache],
    bracket_hints: bool,
) -> CapacityResult:
    """A duplicate search's result, replayed from its leader's answer.

    Exactly the replay-exact tier's contract, without the disk round trip:
    one verifying evaluation through the follower's own simulator rebuilds
    the (deterministic, correctly-labelled) result at the leader's
    capacity.  An infeasible leader is infeasible for the follower too.
    The pathological case of a failed verification — possible only if the
    two searches were not actually identical — falls back to running the
    follower cold.
    """
    if leader.max_qps <= 0 or leader.result is None:
        return CapacityResult(
            max_qps=0.0,
            sla_latency_s=search.sla_latency_s,
            result=None,
            evaluations=0,
        )
    state = search._context().build()
    replay = _evaluate_rate(state, leader.max_qps)
    if replay.acceptable(search.sla_latency_s):
        evaluations = 1
        if isinstance(replay, CertainAcceptance):
            # accept_early stubbed the verifying run; the stored result
            # must carry full statistics, so re-run it exit-free.
            replay = _evaluate_rate(state, leader.max_qps, reject=False)
            evaluations = 2
        result = CapacityResult(
            max_qps=leader.max_qps,
            sla_latency_s=search.sla_latency_s,
            result=replay,
            evaluations=evaluations,
        )
        signature = search.signature()
        if cache is not None and signature is not None:
            # Keyed by the leader's hintedness: an answer derived from a
            # hinted leader must never memo-replay for a hints-off run.
            cache.memo_store(_memo_key(signature, search, leader_hinted), result)
        return result
    return _run_follower_cold(search, cache, bracket_hints)


def _run_follower_cold(
    search: CapacitySearch,
    cache: Optional[CapacityCache],
    bracket_hints: bool,
) -> CapacityResult:
    """Safety net: run a follower as its own serial search."""
    execution = _SearchExecution(search, cache, bracket_hints)
    if execution.result is None:
        execution.run_serial()
    assert execution.result is not None  # run_serial only returns with a result
    return execution.result


def _drive_completion(
    executions: List[_SearchExecution], pool: WorkerPool, budget: int
) -> None:
    """React to evaluation completions until every search concludes.

    Each cycle: absorb landed results into every machine, refill the shared
    in-flight budget breadth-first across searches (every active search's
    *needed* rate before anyone's deeper speculation), mark speculation a
    tighter bracket has invalidated as cancelled, then block until at least
    one in-flight evaluation lands.
    """
    while True:
        for execution in executions:
            execution.absorb()
        active = [e for e in executions if e.result is None]
        if not active:
            return

        # Budget accounting spans *all* executions: a search that concluded
        # with speculation still running leaves orphaned tasks occupying
        # workers, and submitting past them would oversubscribe the
        # core-clamped budget.  (Completed futures stop counting.)
        total_pending = sum(
            1
            for execution in executions
            for future in execution.pending.values()
            if not future.done()
        )
        plans = {id(e): e.needed_rates(budget) for e in active}
        for depth in range(budget):
            if total_pending >= budget:
                break
            for execution in active:
                if total_pending >= budget:
                    break
                plan = plans[id(execution)]
                if depth >= len(plan):
                    continue
                rate = plan[depth]
                if rate in execution.results or rate in execution.pending:
                    continue
                execution.pending[rate] = pool.submit(
                    _evaluate_rate, rate, context=execution.context
                )
                execution.evaluations += 1
                total_pending += 1

        # Speculation outside the machine's still-reachable decision tree
        # can never be consumed: mark it cancelled (the process task itself
        # cannot be revoked; the result is simply ignored when it lands).
        for execution in active:
            if execution.replay_rate is not None:
                continue
            reachable = set(speculative_rates(execution.machine, 4 * budget))
            for rate, future in execution.pending.items():
                if rate not in reachable and future.cancel():
                    execution.cancelled += 1

        # Wait on every in-flight future, orphans of finished searches
        # included: when orphans hold the whole budget, active searches have
        # nothing pending, and waiting only on theirs would busy-spin.
        in_flight = [
            future
            for execution in executions
            for future in execution.pending.values()
        ]
        for _ in as_completed(in_flight):
            break  # wake on the first completion, then harvest everything done
        for execution in executions:  # finished searches' orphans drain too
            landed = [
                rate for rate, future in execution.pending.items() if future.done()
            ]
            for rate in landed:
                future = execution.pending.pop(rate)
                if execution.result is not None:
                    # The search already concluded; the orphan's outcome —
                    # including a worker error — is irrelevant.
                    continue
                execution.results[rate] = future.result()
